"""Property predicates attached to pattern variables and patterns.

Two families:

* **Unary predicates** (:class:`PropertyPredicate`) constrain a single
  matched element's properties — e.g. ``exists("name")``, ``eq("country",
  "FR")``, ``gt("population", 1_000_000)``.
* **Cross-variable comparisons** (:class:`Comparison`) relate properties of
  two matched elements — e.g. *"the two persons have the same name"* (the
  trigger of a redundancy rule) or *"the two birthYear values differ"* (the
  trigger of a conflict rule).

Both are plain declarative objects (operator name + operands) rather than
callables so that rules can be serialised, printed, compared for analysis,
and generated programmatically.
"""

from __future__ import annotations

import enum
import operator
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.exceptions import InvalidPatternError


class PredicateOp(enum.Enum):
    """Operators usable in unary property predicates."""

    EXISTS = "exists"
    MISSING = "missing"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IN = "in"
    NOT_IN = "not in"
    CONTAINS = "contains"


_BINARY_EVALUATORS: dict[PredicateOp, Callable[[Any, Any], bool]] = {
    PredicateOp.EQ: operator.eq,
    PredicateOp.NE: operator.ne,
    PredicateOp.LT: operator.lt,
    PredicateOp.LE: operator.le,
    PredicateOp.GT: operator.gt,
    PredicateOp.GE: operator.ge,
}


@dataclass(frozen=True)
class PropertyPredicate:
    """A unary constraint ``<key> <op> <value>`` over an element's properties."""

    key: str
    op: PredicateOp
    value: Any = None

    def evaluate(self, properties: Mapping[str, Any]) -> bool:
        """Evaluate against a property dictionary.

        Missing keys make every operator except ``MISSING`` evaluate to
        ``False``; type errors (e.g. comparing a string with ``<`` against an
        int) also yield ``False`` rather than raising, because dirty graphs
        are exactly where such mismatches occur.
        """
        present = self.key in properties
        if self.op is PredicateOp.EXISTS:
            return present
        if self.op is PredicateOp.MISSING:
            return not present
        if not present:
            return False
        actual = properties[self.key]
        try:
            if self.op in _BINARY_EVALUATORS:
                return bool(_BINARY_EVALUATORS[self.op](actual, self.value))
            if self.op is PredicateOp.IN:
                return actual in self.value
            if self.op is PredicateOp.NOT_IN:
                return actual not in self.value
            if self.op is PredicateOp.CONTAINS:
                return self.value in actual
        except TypeError:
            return False
        raise InvalidPatternError(f"unsupported predicate operator {self.op!r}")

    def describe(self) -> str:
        if self.op is PredicateOp.EXISTS:
            return f"has({self.key})"
        if self.op is PredicateOp.MISSING:
            return f"missing({self.key})"
        return f"{self.key} {self.op.value} {self.value!r}"


# Convenience constructors — these read well in rule definitions.

def exists(key: str) -> PropertyPredicate:
    """The element has property ``key``."""
    return PropertyPredicate(key, PredicateOp.EXISTS)


def missing(key: str) -> PropertyPredicate:
    """The element lacks property ``key``."""
    return PropertyPredicate(key, PredicateOp.MISSING)


def eq(key: str, value: Any) -> PropertyPredicate:
    return PropertyPredicate(key, PredicateOp.EQ, value)


def ne(key: str, value: Any) -> PropertyPredicate:
    return PropertyPredicate(key, PredicateOp.NE, value)


def lt(key: str, value: Any) -> PropertyPredicate:
    return PropertyPredicate(key, PredicateOp.LT, value)


def le(key: str, value: Any) -> PropertyPredicate:
    return PropertyPredicate(key, PredicateOp.LE, value)


def gt(key: str, value: Any) -> PropertyPredicate:
    return PropertyPredicate(key, PredicateOp.GT, value)


def ge(key: str, value: Any) -> PropertyPredicate:
    return PropertyPredicate(key, PredicateOp.GE, value)


def _normalized_members(values) -> tuple:
    """Materialise a membership list from any iterable, dropping duplicates.

    Unhashable members (lists, dicts) are kept — they are deduplicated by a
    linear equality scan and later handled by the residual ``in`` check, so a
    rule author can write ``one_of("tags", [["a"], ["b"]])`` without a
    ``TypeError`` at index-probe time.
    """
    members: list = []
    seen: set = set()
    for value in values:
        try:
            if value in seen:
                continue
            seen.add(value)
        except TypeError:
            if any(value == kept for kept in members):
                continue
        members.append(value)
    return tuple(members)


def one_of(key: str, values) -> PropertyPredicate:
    """The element's ``key`` value is one of ``values`` (any iterable)."""
    return PropertyPredicate(key, PredicateOp.IN, _normalized_members(values))


def not_one_of(key: str, values) -> PropertyPredicate:
    """The element's ``key`` value is none of ``values`` (any iterable)."""
    return PropertyPredicate(key, PredicateOp.NOT_IN, _normalized_members(values))


class ComparisonOp(enum.Enum):
    """Operators usable in cross-variable comparisons."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


_COMPARISON_EVALUATORS: dict[ComparisonOp, Callable[[Any, Any], bool]] = {
    ComparisonOp.EQ: operator.eq,
    ComparisonOp.NE: operator.ne,
    ComparisonOp.LT: operator.lt,
    ComparisonOp.LE: operator.le,
    ComparisonOp.GT: operator.gt,
    ComparisonOp.GE: operator.ge,
}


@dataclass(frozen=True)
class Comparison:
    """A constraint relating two matched variables' properties.

    ``left`` and ``right`` are ``(variable, property key)`` pairs; ``right``
    may instead be a literal (``right_literal=True``), in which case
    ``right[1]`` is ignored and ``right_value`` holds the literal.
    """

    left: tuple[str, str]
    op: ComparisonOp
    right: tuple[str, str] | None = None
    right_value: Any = None
    right_literal: bool = False

    def variables(self) -> set[str]:
        names = {self.left[0]}
        if not self.right_literal and self.right is not None:
            names.add(self.right[0])
        return names

    def evaluate(self, lookup: Callable[[str], Mapping[str, Any]]) -> bool:
        """Evaluate given ``lookup(variable) -> properties`` for matched variables.

        Missing properties or type mismatches yield ``False``.
        """
        left_properties = lookup(self.left[0])
        if self.left[1] not in left_properties:
            return False
        left_value = left_properties[self.left[1]]
        if self.right_literal:
            right_value = self.right_value
        else:
            if self.right is None:
                raise InvalidPatternError("comparison has neither a right operand nor a literal")
            right_properties = lookup(self.right[0])
            if self.right[1] not in right_properties:
                return False
            right_value = right_properties[self.right[1]]
        try:
            return bool(_COMPARISON_EVALUATORS[self.op](left_value, right_value))
        except TypeError:
            return False

    def describe(self) -> str:
        left = f"{self.left[0]}.{self.left[1]}"
        if self.right_literal:
            right = repr(self.right_value)
        else:
            right = f"{self.right[0]}.{self.right[1]}" if self.right else "?"
        return f"{left} {self.op.value} {right}"


def same_value(left_var: str, left_key: str, right_var: str,
               right_key: str | None = None) -> Comparison:
    """``left_var.left_key == right_var.right_key`` (defaults to the same key)."""
    return Comparison((left_var, left_key), ComparisonOp.EQ,
                      (right_var, right_key or left_key))


def different_value(left_var: str, left_key: str, right_var: str,
                    right_key: str | None = None) -> Comparison:
    """``left_var.left_key != right_var.right_key`` (defaults to the same key)."""
    return Comparison((left_var, left_key), ComparisonOp.NE,
                      (right_var, right_key or left_key))


def value_is(var: str, key: str, value: Any,
             op: ComparisonOp = ComparisonOp.EQ) -> Comparison:
    """``var.key <op> literal`` as a cross-variable-style constraint."""
    return Comparison((var, key), op, right_value=value, right_literal=True)
