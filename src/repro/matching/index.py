"""Candidate index: label and neighbourhood signatures for match pruning.

Subgraph matching cost is dominated by how many data nodes are tried per
pattern variable.  The :class:`CandidateIndex` keeps, per node:

* the node-label bucket it belongs to, and
* its *neighbourhood signature* — how many outgoing / incoming edges it has
  per edge label.

A pattern variable then only needs to consider data nodes whose label matches
and whose signature dominates the variable's local requirements (e.g. a
variable with two outgoing ``actedIn`` pattern edges can only bind nodes with
at least two outgoing ``actedIn`` data edges).  The index is maintained
incrementally from the graph's change feed, which is what lets the fast
repairer keep using it across thousands of repairs without rebuilding.

This is one of the three optimisations ablated in experiment E5.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.graph.delta import ChangeKind, GraphChange
from repro.graph.property_graph import PropertyGraph
from repro.matching.pattern import Pattern, PatternNode

# Shared empty bucket so ``label_bucket`` misses allocate nothing.
_EMPTY_BUCKET: frozenset = frozenset()


class CandidateIndex:
    """Per-label node buckets plus per-node edge-label signatures."""

    def __init__(self, graph: PropertyGraph) -> None:
        self._graph = graph
        self._by_label: dict[str, set[str]] = {}
        self._out_signature: dict[str, Counter] = {}
        self._in_signature: dict[str, Counter] = {}
        # cached total degrees so wildcard (None-label) requirements never
        # re-sum the signature counters per probe
        self._out_total: dict[str, int] = {}
        self._in_total: dict[str, int] = {}
        self._attached = False
        self.rebuild()

    # ------------------------------------------------------------------
    # construction / maintenance
    # ------------------------------------------------------------------

    def rebuild(self) -> None:
        """Recompute the whole index from the graph (O(|V| + |E|))."""
        self._by_label = {}
        self._out_signature = {}
        self._in_signature = {}
        self._out_total = {}
        self._in_total = {}
        for node in self._graph.nodes():
            self._by_label.setdefault(node.label, set()).add(node.id)
            self._out_signature[node.id] = Counter()
            self._in_signature[node.id] = Counter()
            self._out_total[node.id] = 0
            self._in_total[node.id] = 0
        for edge in self._graph.edges():
            self._out_signature[edge.source][edge.label] += 1
            self._in_signature[edge.target][edge.label] += 1
            self._out_total[edge.source] += 1
            self._in_total[edge.target] += 1

    def attach(self) -> None:
        """Subscribe to the graph's change feed for incremental maintenance."""
        if not self._attached:
            self._graph.add_listener(self.apply_change)
            self._attached = True

    def detach(self) -> None:
        if self._attached:
            self._graph.remove_listener(self.apply_change)
            self._attached = False

    def apply_change(self, change: GraphChange) -> None:
        """Update the index for one elementary graph change.

        Changes that restructure more than a constant amount of state
        (node removal with incident edges, node merges) fall back to
        re-deriving the affected nodes' signatures from the graph, which the
        graph can answer in time proportional to their degree.
        """
        kind = change.kind
        if kind is ChangeKind.ADD_NODE and change.node_id is not None:
            node = self._graph.node(change.node_id)
            self._by_label.setdefault(node.label, set()).add(node.id)
            self._out_signature.setdefault(node.id, Counter())
            self._in_signature.setdefault(node.id, Counter())
            self._out_total.setdefault(node.id, 0)
            self._in_total.setdefault(node.id, 0)
        elif kind is ChangeKind.ADD_EDGE and change.edge_id is not None:
            edge = self._graph.edge(change.edge_id)
            self._out_signature.setdefault(edge.source, Counter())[edge.label] += 1
            self._in_signature.setdefault(edge.target, Counter())[edge.label] += 1
            self._out_total[edge.source] = self._out_total.get(edge.source, 0) + 1
            self._in_total[edge.target] = self._in_total.get(edge.target, 0) + 1
        elif kind is ChangeKind.REMOVE_EDGE:
            label = change.details.get("label")
            source = change.details.get("source")
            target = change.details.get("target")
            if source in self._out_signature and label is not None:
                self._decrement(self._out_signature[source], label)
                self._out_total[source] = max(0, self._out_total.get(source, 0) - 1)
            if target in self._in_signature and label is not None:
                self._decrement(self._in_signature[target], label)
                self._in_total[target] = max(0, self._in_total.get(target, 0) - 1)
        elif kind is ChangeKind.REMOVE_NODE and change.node_id is not None:
            removed_label = change.details.get("label")
            self._drop_node(change.node_id, removed_label)
            self._refresh_nodes(change.touched_nodes)
        elif kind is ChangeKind.RELABEL_NODE and change.node_id is not None:
            before = change.details.get("before")
            after = change.details.get("after")
            if before is not None:
                bucket = self._by_label.get(before)
                if bucket is not None:
                    bucket.discard(change.node_id)
                    if not bucket:
                        del self._by_label[before]
            if after is not None:
                self._by_label.setdefault(after, set()).add(change.node_id)
        elif kind is ChangeKind.RELABEL_EDGE and change.edge_id is not None:
            # Endpoint signatures change label buckets; refresh both endpoints.
            self._refresh_nodes(change.touched_nodes)
        elif kind is ChangeKind.MERGE_NODES:
            merged = change.details.get("merged")
            merged_label = change.details.get("merged_label")
            if merged is not None:
                self._drop_node(merged, merged_label)
            self._refresh_nodes(change.touched_nodes)
        # UPDATE_NODE / UPDATE_EDGE do not affect labels or signatures.

    def _drop_node(self, node_id: str, label: str | None) -> None:
        if label is not None:
            bucket = self._by_label.get(label)
            if bucket is not None:
                bucket.discard(node_id)
                if not bucket:
                    del self._by_label[label]
        else:
            for bucket in self._by_label.values():
                bucket.discard(node_id)
        self._out_signature.pop(node_id, None)
        self._in_signature.pop(node_id, None)
        self._out_total.pop(node_id, None)
        self._in_total.pop(node_id, None)

    def _refresh_nodes(self, node_ids: Iterable[str]) -> None:
        for node_id in node_ids:
            if not self._graph.has_node(node_id):
                continue
            out_counter: Counter = Counter()
            out_total = 0
            for edge in self._graph.iter_out_edges(node_id):
                out_counter[edge.label] += 1
                out_total += 1
            in_counter: Counter = Counter()
            in_total = 0
            for edge in self._graph.iter_in_edges(node_id):
                in_counter[edge.label] += 1
                in_total += 1
            self._out_signature[node_id] = out_counter
            self._in_signature[node_id] = in_counter
            self._out_total[node_id] = out_total
            self._in_total[node_id] = in_total

    @staticmethod
    def _decrement(counter: Counter, key: str) -> None:
        counter[key] -= 1
        if counter[key] <= 0:
            del counter[key]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def nodes_with_label(self, label: str | None) -> set[str]:
        """Node ids with the given label (a fresh, caller-owned set);
        ``None`` means all nodes."""
        if label is None:
            return set(self._out_signature.keys())
        return set(self._by_label.get(label, set()))

    def label_bucket(self, label: str | None):
        """Zero-copy view of the node ids with ``label`` (``None`` = all nodes).

        The returned collection is the live internal bucket: it must not be
        mutated and is invalidated by graph mutations.  Hot-path counterpart of
        :meth:`nodes_with_label`.
        """
        if label is None:
            return self._out_signature.keys()
        return self._by_label.get(label, _EMPTY_BUCKET)

    def label_count(self, label: str | None) -> int:
        if label is None:
            return len(self._out_signature)
        return len(self._by_label.get(label, ()))

    def total_degree(self, node_id: str) -> tuple[int, int]:
        """Cached (out, in) total degree of a node (0, 0 if unknown)."""
        return self._out_total.get(node_id, 0), self._in_total.get(node_id, 0)

    def signature_dominates(self, node_id: str, out_required: Counter,
                            in_required: Counter) -> bool:
        """True if the node has at least the required per-label out/in edges.

        Wildcard (``None``-label) requirements compare against the cached
        total degree instead of re-summing the signature per probe.
        """
        out_signature = self._out_signature.get(node_id)
        in_signature = self._in_signature.get(node_id)
        if out_signature is None or in_signature is None:
            return False
        for label, required in out_required.items():
            available = (self._out_total.get(node_id, 0) if label is None
                         else out_signature.get(label, 0))
            if available < required:
                return False
        for label, required in in_required.items():
            available = (self._in_total.get(node_id, 0) if label is None
                         else in_signature.get(label, 0))
            if available < required:
                return False
        return True

    def candidates(self, pattern: Pattern, variable: str,
                   apply_predicates: bool = True) -> list[str]:
        """Candidate node ids for one pattern variable.

        Filters: label bucket, neighbourhood-signature dominance over the
        variable's local pattern-edge requirements, then (optionally) the
        variable's unary property predicates.
        """
        pattern_node = pattern.node_variable(variable)
        out_required, in_required = pattern_requirements(pattern, variable)
        check_predicates = apply_predicates and pattern_node.predicates
        node = self._graph.node
        dominates = self.signature_dominates
        result = []
        for node_id in self.label_bucket(pattern_node.label):
            if not dominates(node_id, out_required, in_required):
                continue
            if check_predicates and not pattern_node.matches(node(node_id)):
                continue
            result.append(node_id)
        return result

    def candidate_count_estimate(self, pattern: Pattern, variable: str) -> int:
        """Cheap selectivity estimate (label-bucket size) used for ordering."""
        return self.label_count(pattern.node_variable(variable).label)


def pattern_requirements(pattern: Pattern, variable: str) -> tuple[Counter, Counter]:
    """The per-label outgoing/incoming edge counts a data node must have to
    possibly bind ``variable``.

    Two pattern edges need *distinct* witnessing data edges only when they
    connect different variable pairs (injectivity forces distinct endpoints)
    or when they carry edge variables (the edge-binding phase enforces
    distinctness).  Parallel variable-less pattern edges between the same pair
    may share one witness, so they contribute a single requirement — counting
    them individually over-prunes (a node with one ``r`` edge can satisfy two
    parallel variable-less ``r`` constraints).
    """
    out_groups: dict[tuple[str, str | None], int] = {}
    in_groups: dict[tuple[str, str | None], int] = {}
    for edge in pattern.edges:
        carries_variable = 1 if edge.variable is not None else 0
        if edge.source == variable:
            key = (edge.target, edge.label)
            out_groups[key] = out_groups.get(key, 0) + carries_variable
        if edge.target == variable:
            key = (edge.source, edge.label)
            in_groups[key] = in_groups.get(key, 0) + carries_variable
    out_required: Counter = Counter()
    in_required: Counter = Counter()
    for (_other, label), variable_count in out_groups.items():
        out_required[label] += max(1, variable_count)
    for (_other, label), variable_count in in_groups.items():
        in_required[label] += max(1, variable_count)
    return out_required, in_required


def naive_candidates(graph: PropertyGraph, pattern: Pattern, variable: str,
                     apply_predicates: bool = True) -> list[str]:
    """Candidates computed directly from the graph (no index).

    Used when the candidate-index optimisation is disabled (ablation E5) and
    as a correctness oracle in tests.
    """
    pattern_node: PatternNode = pattern.node_variable(variable)
    out_required, in_required = pattern_requirements(pattern, variable)
    candidates = []
    if pattern_node.label is not None:
        node_pool = graph.nodes_with_label(pattern_node.label)
    else:
        node_pool = list(graph.nodes())
    for node in node_pool:
        out_counter: Counter = Counter(edge.label for edge in graph.iter_out_edges(node.id))
        in_counter: Counter = Counter(edge.label for edge in graph.iter_in_edges(node.id))
        out_total = graph.out_degree(node.id)
        in_total = graph.in_degree(node.id)
        satisfied = True
        for label, required in out_required.items():
            available = out_total if label is None else out_counter.get(label, 0)
            if available < required:
                satisfied = False
                break
        if satisfied:
            for label, required in in_required.items():
                available = in_total if label is None else in_counter.get(label, 0)
                if available < required:
                    satisfied = False
                    break
        if not satisfied:
            continue
        if apply_predicates and not pattern_node.matches(node):
            continue
        candidates.append(node.id)
    return candidates
