"""Candidate index: label, signature, and property-value buckets for pruning.

Subgraph matching cost is dominated by how many data nodes are tried per
pattern variable.  The :class:`CandidateIndex` keeps, per node:

* the node-label bucket it belongs to,
* its *neighbourhood signature* — how many outgoing / incoming edges it has
  per edge label — and
* on demand, ``(label, key) -> value -> node ids`` **value buckets** for the
  property keys that patterns constrain with constant equality
  (predicate-pushdown: see :func:`variable_pushdowns`).

A pattern variable then only needs to consider data nodes whose label matches,
whose signature dominates the variable's local requirements (e.g. a
variable with two outgoing ``actedIn`` pattern edges can only bind nodes with
at least two outgoing ``actedIn`` data edges), and — when the variable carries
an equality constraint whose right-hand side is known — whose property value
sits in the matching bucket.  The index is maintained incrementally from the
graph's change feed, which is what lets the fast repairer keep using it
across thousands of repairs without rebuilding.

Value buckets are *complete, not exact*: a bucket is guaranteed to contain
every node whose property equals the probe value, but may contain extras
(nodes whose stored value is unhashable and therefore cannot be dict-keyed).
Callers keep their residual predicate/comparison checks, so false positives
cost a re-check, never a wrong match.

This is one of the three optimisations ablated in experiment E5.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections import Counter
from dataclasses import dataclass
from operator import itemgetter
from typing import Any, Iterable, Mapping

from repro.graph.delta import ChangeKind, GraphChange
from repro.graph.property_graph import PropertyGraph
from repro.matching.pattern import Pattern, PatternNode
from repro.matching.predicates import ComparisonOp, PredicateOp

# Shared empty bucket so ``label_bucket`` misses allocate nothing.
_EMPTY_BUCKET: frozenset = frozenset()


def _is_hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


# first element of a (value, node_id) entry — bisect key for range probes
_entry_value = itemgetter(0)

# operator name -> mirrored name, for rewriting ``a.x < b.y`` as a probe on
# ``b``'s side (``b.y > a.x``) once ``a`` is the bound variable
MIRRORED_RANGE_OP = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le"}

_RANGE_PREDICATE_OPS = {PredicateOp.LT: "lt", PredicateOp.LE: "le",
                        PredicateOp.GT: "gt", PredicateOp.GE: "ge"}
_RANGE_COMPARISON_OPS = {ComparisonOp.LT: "lt", ComparisonOp.LE: "le",
                         ComparisonOp.GT: "gt", ComparisonOp.GE: "ge"}


def _orderable_class(value: Any) -> str | None:
    """Type class under which ``value`` can live in a sorted array.

    Only real numbers (bool/int/float, excluding NaN) and strings are
    orderable classes — mixing anything else into a sorted list risks a
    ``TypeError`` mid-bisect or, worse (``Decimal`` vs ``float``), a silently
    inconsistent order.  Everything else goes to the fuzzy side pool and is
    re-checked by residual predicates.
    """
    if isinstance(value, (int, float)):
        if isinstance(value, float) and value != value:  # NaN breaks ordering
            return None
        return "num"
    if isinstance(value, str):
        return "str"
    return None


@dataclass(frozen=True)
class PushdownSpec:
    """The index-answerable constraints of one pattern variable.

    ``unary`` — ``(key, value)`` pairs from the variable's unary ``EQ``
    predicates (always applicable, including in :meth:`CandidateIndex.candidates`).
    ``literal`` — ``(key, value)`` pairs from single-variable literal ``EQ``
    comparisons (applicable as matcher-side candidate filters; kept separate
    so ``candidates()`` stays semantically identical to
    :func:`naive_candidates`).
    ``dynamic`` — ``(own key, other variable, other key)`` triples from
    cross-variable ``EQ`` comparisons: once ``other variable`` is bound, its
    property value turns the comparison into a constant equality predicate
    that a value bucket can answer.
    ``ranges`` — ``(key, op, constant)`` triples from unary ``lt/le/gt/ge``
    predicates and literal range comparisons; answered by sorted-bucket
    range probes (``op`` is one of ``"lt"/"le"/"gt"/"ge"``).
    ``members`` — ``(key, values)`` pairs from unary ``IN`` predicates;
    answered as a union of equality buckets.  ``NOT_IN`` is not pushable
    (its complement is not bucket-shaped).
    ``dynamic_ranges`` — ``(own key, op, other variable, other key)`` from
    cross-variable range comparisons, already mirrored per orientation: once
    the other variable binds, its value is the probe constant.
    """

    unary: tuple[tuple[str, Any], ...] = ()
    literal: tuple[tuple[str, Any], ...] = ()
    dynamic: tuple[tuple[str, str, str], ...] = ()
    ranges: tuple[tuple[str, str, Any], ...] = ()
    members: tuple[tuple[str, tuple], ...] = ()
    dynamic_ranges: tuple[tuple[str, str, str, str], ...] = ()


def variable_pushdowns(pattern: Pattern) -> dict[str, PushdownSpec]:
    """Per-variable index-pushdown specs of ``pattern``.

    Only node variables participate; edge-variable comparisons are left to
    the edge-binding phase.  Unhashable equality/membership constants are
    skipped (they cannot key a bucket), as are unorderable range constants
    (they cannot be bisected) — those constraints stay residual-only.
    """
    node_variables = {node.variable for node in pattern.nodes}
    unary: dict[str, list[tuple[str, Any]]] = {}
    literal: dict[str, list[tuple[str, Any]]] = {}
    dynamic: dict[str, list[tuple[str, str, str]]] = {}
    ranges: dict[str, list[tuple[str, str, Any]]] = {}
    members: dict[str, list[tuple[str, tuple]]] = {}
    dynamic_ranges: dict[str, list[tuple[str, str, str, str]]] = {}
    for node in pattern.nodes:
        for predicate in node.predicates:
            if predicate.op is PredicateOp.EQ and _is_hashable(predicate.value):
                unary.setdefault(node.variable, []).append(
                    (predicate.key, predicate.value))
            elif predicate.op in _RANGE_PREDICATE_OPS:
                if _orderable_class(predicate.value) is not None:
                    ranges.setdefault(node.variable, []).append(
                        (predicate.key, _RANGE_PREDICATE_OPS[predicate.op],
                         predicate.value))
            elif predicate.op is PredicateOp.IN:
                try:
                    values = tuple(predicate.value)
                except TypeError:
                    continue
                if values and all(_is_hashable(value) for value in values):
                    members.setdefault(node.variable, []).append(
                        (predicate.key, values))
    for comparison in pattern.comparisons:
        left_var, left_key = comparison.left
        if left_var not in node_variables:
            continue
        if comparison.right_literal:
            if comparison.op is ComparisonOp.EQ:
                if _is_hashable(comparison.right_value):
                    literal.setdefault(left_var, []).append(
                        (left_key, comparison.right_value))
            elif comparison.op in _RANGE_COMPARISON_OPS:
                if _orderable_class(comparison.right_value) is not None:
                    ranges.setdefault(left_var, []).append(
                        (left_key, _RANGE_COMPARISON_OPS[comparison.op],
                         comparison.right_value))
            continue
        if comparison.right is None:
            continue
        right_var, right_key = comparison.right
        if right_var not in node_variables or right_var == left_var:
            continue
        if comparison.op is ComparisonOp.EQ:
            dynamic.setdefault(left_var, []).append((left_key, right_var, right_key))
            dynamic.setdefault(right_var, []).append((right_key, left_var, left_key))
        elif comparison.op in _RANGE_COMPARISON_OPS:
            op = _RANGE_COMPARISON_OPS[comparison.op]
            dynamic_ranges.setdefault(left_var, []).append(
                (left_key, op, right_var, right_key))
            dynamic_ranges.setdefault(right_var, []).append(
                (right_key, MIRRORED_RANGE_OP[op], left_var, left_key))
    specs: dict[str, PushdownSpec] = {}
    for variable in (set(unary) | set(literal) | set(dynamic)
                     | set(ranges) | set(members) | set(dynamic_ranges)):
        specs[variable] = PushdownSpec(
            unary=tuple(unary.get(variable, ())),
            literal=tuple(literal.get(variable, ())),
            dynamic=tuple(dynamic.get(variable, ())),
            ranges=tuple(ranges.get(variable, ())),
            members=tuple(members.get(variable, ())),
            dynamic_ranges=tuple(dynamic_ranges.get(variable, ())),
        )
    return specs


class _ValueIndex:
    """One ``(label, key)`` value index: hashable values bucketed by equality,
    unhashable values pooled (they are re-checked by residual predicates).

    Range support is opt-in (:meth:`enable_sorted`): once enabled, hashable
    entries are additionally kept in bisect-ordered ``(value, node_id)``
    arrays — one per orderable type class (numbers, strings) — so ``lt/le/
    gt/ge`` probes become O(log n) slices.  Hashable-but-unorderable values
    (tuples, ``None``, NaN floats, exotic numerics like ``Decimal``) live in
    the ``fuzzy`` side pool, which every range probe includes; residual
    predicate checks reject the extras, so probes stay complete, never wrong.
    """

    __slots__ = ("values", "unhashable", "total", "sorted_enabled",
                 "numbers", "strings", "fuzzy")

    def __init__(self) -> None:
        self.values: dict[Any, set[str]] = {}
        self.unhashable: set[str] = set()
        self.total = 0  # entries across equality buckets (distinct = len(values))
        self.sorted_enabled = False
        self.numbers: list[tuple[Any, str]] = []
        self.strings: list[tuple[str, str]] = []
        self.fuzzy: set[str] = set()

    def add(self, value: Any, node_id: str) -> None:
        try:
            bucket = self.values.get(value)
        except TypeError:
            self.unhashable.add(node_id)
            return
        if bucket is None:
            bucket = self.values[value] = set()
        before = len(bucket)
        bucket.add(node_id)
        if len(bucket) != before:
            self.total += 1
            if self.sorted_enabled:
                self._sorted_add(value, node_id)

    def discard(self, value: Any, node_id: str) -> None:
        try:
            bucket = self.values.get(value)
        except TypeError:
            self.unhashable.discard(node_id)
            return
        if bucket is not None and node_id in bucket:
            bucket.discard(node_id)
            self.total -= 1
            if not bucket:
                del self.values[value]
            if self.sorted_enabled:
                self._sorted_discard(value, node_id)

    # -- sorted arrays -------------------------------------------------

    def enable_sorted(self) -> None:
        """Build the sorted arrays from the current equality buckets
        (idempotent; afterwards add/discard maintain them incrementally)."""
        if self.sorted_enabled:
            return
        self.sorted_enabled = True
        numbers: list[tuple[Any, str]] = []
        strings: list[tuple[str, str]] = []
        fuzzy: set[str] = set()
        for value, bucket in self.values.items():
            type_class = _orderable_class(value)
            if type_class is None:
                fuzzy.update(bucket)
            elif type_class == "num":
                numbers.extend((value, node_id) for node_id in bucket)
            else:
                strings.extend((value, node_id) for node_id in bucket)
        numbers.sort()
        strings.sort()
        self.numbers = numbers
        self.strings = strings
        self.fuzzy = fuzzy

    def _sorted_add(self, value: Any, node_id: str) -> None:
        type_class = _orderable_class(value)
        if type_class is None:
            self.fuzzy.add(node_id)
        elif type_class == "num":
            insort(self.numbers, (value, node_id))
        else:
            insort(self.strings, (value, node_id))

    def _sorted_discard(self, value: Any, node_id: str) -> None:
        type_class = _orderable_class(value)
        if type_class is None:
            self.fuzzy.discard(node_id)
            return
        array = self.numbers if type_class == "num" else self.strings
        entry = (value, node_id)
        position = bisect_left(array, entry)
        if position < len(array) and array[position] == entry:
            del array[position]

    def range_ids(self, op: str, constant: Any) -> set[str] | None:
        """Node ids whose value may satisfy ``value <op> constant``.

        Returns ``None`` when unanswerable (sorting not enabled, or the
        constant is not orderable).  Otherwise the set is complete for the
        comparison: the bisected slice of the constant's own type class plus
        the fuzzy and unhashable side pools.  Values in the *other* type
        class are correctly absent — comparing them against the constant
        would raise ``TypeError``, which residual checks treat as ``False``.
        """
        if not self.sorted_enabled:
            return None
        type_class = _orderable_class(constant)
        if type_class is None:
            return None
        array = self.numbers if type_class == "num" else self.strings
        if op == "lt":
            selected = array[:bisect_left(array, constant, key=_entry_value)]
        elif op == "le":
            selected = array[:bisect_right(array, constant, key=_entry_value)]
        elif op == "gt":
            selected = array[bisect_right(array, constant, key=_entry_value):]
        else:  # "ge"
            selected = array[bisect_left(array, constant, key=_entry_value):]
        result = {node_id for _value, node_id in selected}
        result.update(self.fuzzy)
        result.update(self.unhashable)
        return result

    def member_ids(self, values: Iterable[Any]) -> set[str] | None:
        """Union of the equality buckets for ``values`` plus the unhashable
        pool, or ``None`` when any member cannot key a bucket."""
        result = set(self.unhashable)
        for value in values:
            try:
                bucket = self.values.get(value)
            except TypeError:
                return None
            if bucket:
                result.update(bucket)
        return result

    def equal_to(self, other: "_ValueIndex") -> bool:
        return self.values == other.values and self.unhashable == other.unhashable

    def sorted_equal_to(self, other: "_ValueIndex") -> bool:
        """Compare the sorted-array views (both sides must have them built)."""
        return (self.numbers == other.numbers
                and self.strings == other.strings
                and self.fuzzy == other.fuzzy)


class CandidateIndex:
    """Per-label node buckets plus per-node edge-label signatures."""

    def __init__(self, graph: PropertyGraph) -> None:
        self._graph = graph
        self._by_label: dict[str, set[str]] = {}
        self._out_signature: dict[str, Counter] = {}
        self._in_signature: dict[str, Counter] = {}
        # cached total degrees so wildcard (None-label) requirements never
        # re-sum the signature counters per probe
        self._out_total: dict[str, int] = {}
        self._in_total: dict[str, int] = {}
        # value buckets, registered lazily per (label, key) the patterns
        # constrain with constant equality; _value_keys_by_label is the
        # maintenance fast path (which keys matter for a given node label)
        self._value_indexes: dict[tuple[str | None, str], _ValueIndex] = {}
        self._value_keys_by_label: dict[str | None, set[str]] = {}
        # pairs whose value index must keep sorted arrays (range probes)
        self._sorted_pairs: set[tuple[str | None, str]] = set()
        # per-pattern pushdown specs (strong pattern ref keeps id() stable)
        self._pushdown_cache: dict[int, tuple[Pattern, dict[str, PushdownSpec]]] = {}
        self._attached = False
        # bumped on every mutation; the cost planner uses it to skip
        # re-estimating plans while the graph is unchanged
        self.version = 0
        self.rebuild()

    # ------------------------------------------------------------------
    # construction / maintenance
    # ------------------------------------------------------------------

    def rebuild(self) -> None:
        """Recompute the whole index from the graph (O(|V| + |E|))."""
        self.version += 1
        self._by_label = {}
        self._out_signature = {}
        self._in_signature = {}
        self._out_total = {}
        self._in_total = {}
        for node in self._graph.nodes():
            self._by_label.setdefault(node.label, set()).add(node.id)
            self._out_signature[node.id] = Counter()
            self._in_signature[node.id] = Counter()
            self._out_total[node.id] = 0
            self._in_total[node.id] = 0
        for edge in self._graph.edges():
            self._out_signature[edge.source][edge.label] += 1
            self._in_signature[edge.target][edge.label] += 1
            self._out_total[edge.source] += 1
            self._in_total[edge.target] += 1
        for (label, key) in list(self._value_indexes):
            rebuilt = self._build_value_index(label, key)
            if (label, key) in self._sorted_pairs:
                rebuilt.enable_sorted()
            self._value_indexes[(label, key)] = rebuilt

    def attach(self) -> None:
        """Subscribe to the graph's change feed for incremental maintenance."""
        if not self._attached:
            self._graph.add_listener(self.apply_change)
            self._attached = True

    def detach(self) -> None:
        if self._attached:
            self._graph.remove_listener(self.apply_change)
            self._attached = False

    def apply_change(self, change: GraphChange) -> None:
        """Update the index for one elementary graph change.

        Changes that restructure more than a constant amount of state
        (node removal with incident edges, node merges) fall back to
        re-deriving the affected nodes' signatures from the graph, which the
        graph can answer in time proportional to their degree.
        """
        self.version += 1
        kind = change.kind
        if kind is ChangeKind.ADD_NODE and change.node_id is not None:
            node = self._graph.node(change.node_id)
            self._by_label.setdefault(node.label, set()).add(node.id)
            self._out_signature.setdefault(node.id, Counter())
            self._in_signature.setdefault(node.id, Counter())
            self._out_total.setdefault(node.id, 0)
            self._in_total.setdefault(node.id, 0)
            self._value_insert(node.label, node.properties, node.id)
        elif kind is ChangeKind.ADD_EDGE and change.edge_id is not None:
            edge = self._graph.edge(change.edge_id)
            self._out_signature.setdefault(edge.source, Counter())[edge.label] += 1
            self._in_signature.setdefault(edge.target, Counter())[edge.label] += 1
            self._out_total[edge.source] = self._out_total.get(edge.source, 0) + 1
            self._in_total[edge.target] = self._in_total.get(edge.target, 0) + 1
        elif kind is ChangeKind.REMOVE_EDGE:
            label = change.details.get("label")
            source = change.details.get("source")
            target = change.details.get("target")
            if source in self._out_signature and label is not None:
                self._decrement(self._out_signature[source], label)
                self._out_total[source] = max(0, self._out_total.get(source, 0) - 1)
            if target in self._in_signature and label is not None:
                self._decrement(self._in_signature[target], label)
                self._in_total[target] = max(0, self._in_total.get(target, 0) - 1)
        elif kind is ChangeKind.REMOVE_NODE and change.node_id is not None:
            removed_label = change.details.get("label")
            self._drop_node(change.node_id, removed_label)
            self._value_discard(removed_label, change.details.get("properties"),
                                change.node_id)
            self._refresh_nodes(change.touched_nodes)
        elif kind is ChangeKind.RELABEL_NODE and change.node_id is not None:
            before = change.details.get("before")
            after = change.details.get("after")
            if before is not None:
                bucket = self._by_label.get(before)
                if bucket is not None:
                    bucket.discard(change.node_id)
                    if not bucket:
                        del self._by_label[before]
            if after is not None:
                self._by_label.setdefault(after, set()).add(change.node_id)
            # Value buckets are label-scoped: move the node's entries from the
            # old label's indexes to the new label's (the None-label indexes
            # are unaffected — the node's values did not change).
            properties = self._graph.node(change.node_id).properties
            for key in self._value_keys_by_label.get(before, ()):
                if key in properties:
                    self._value_indexes[(before, key)].discard(properties[key],
                                                               change.node_id)
            for key in self._value_keys_by_label.get(after, ()):
                if key in properties:
                    self._value_indexes[(after, key)].add(properties[key],
                                                          change.node_id)
        elif kind is ChangeKind.UPDATE_NODE and change.node_id is not None:
            before = change.details.get("before") or {}
            after = change.details.get("after") or {}
            label = self._graph.node(change.node_id).label
            for scope in (label, None):
                for key in self._value_keys_by_label.get(scope, ()):
                    index = self._value_indexes[(scope, key)]
                    if key in before:
                        index.discard(before[key], change.node_id)
                    if key in after:
                        index.add(after[key], change.node_id)
        elif kind is ChangeKind.RELABEL_EDGE and change.edge_id is not None:
            # Endpoint signatures change label buckets; refresh both endpoints.
            self._refresh_nodes(change.touched_nodes)
        elif kind is ChangeKind.MERGE_NODES:
            merged = change.details.get("merged")
            merged_label = change.details.get("merged_label")
            if merged is not None:
                self._drop_node(merged, merged_label)
                self._value_discard(merged_label,
                                    change.details.get("merged_properties"),
                                    merged)
            keep_id = change.node_id
            if keep_id is not None and self._graph.has_node(keep_id):
                keep_label = self._graph.node(keep_id).label
                self._value_discard(keep_label,
                                    change.details.get("keep_properties_before"),
                                    keep_id)
                self._value_insert(keep_label,
                                   change.details.get("keep_properties_after") or {},
                                   keep_id)
            self._refresh_nodes(change.touched_nodes)
        # UPDATE_EDGE does not affect labels, signatures, or value buckets.

    def _drop_node(self, node_id: str, label: str | None) -> None:
        if label is not None:
            bucket = self._by_label.get(label)
            if bucket is not None:
                bucket.discard(node_id)
                if not bucket:
                    del self._by_label[label]
        else:
            for bucket in self._by_label.values():
                bucket.discard(node_id)
        self._out_signature.pop(node_id, None)
        self._in_signature.pop(node_id, None)
        self._out_total.pop(node_id, None)
        self._in_total.pop(node_id, None)

    def _refresh_nodes(self, node_ids: Iterable[str]) -> None:
        for node_id in node_ids:
            if not self._graph.has_node(node_id):
                continue
            out_counter: Counter = Counter()
            out_total = 0
            for edge in self._graph.iter_out_edges(node_id):
                out_counter[edge.label] += 1
                out_total += 1
            in_counter: Counter = Counter()
            in_total = 0
            for edge in self._graph.iter_in_edges(node_id):
                in_counter[edge.label] += 1
                in_total += 1
            self._out_signature[node_id] = out_counter
            self._in_signature[node_id] = in_counter
            self._out_total[node_id] = out_total
            self._in_total[node_id] = in_total

    @staticmethod
    def _decrement(counter: Counter, key: str) -> None:
        counter[key] -= 1
        if counter[key] <= 0:
            del counter[key]

    # ------------------------------------------------------------------
    # value buckets
    # ------------------------------------------------------------------

    def _value_insert(self, label: str | None, properties: Mapping[str, Any],
                      node_id: str) -> None:
        """Insert one node's values into every registered index covering it."""
        for scope in (label, None):
            for key in self._value_keys_by_label.get(scope, ()):
                if key in properties:
                    self._value_indexes[(scope, key)].add(properties[key], node_id)

    def _value_discard(self, label: str | None,
                       properties: Mapping[str, Any] | None,
                       node_id: str) -> None:
        """Remove one node's values from every registered index covering it."""
        if properties is None:
            properties = {}
        for scope in (label, None):
            for key in self._value_keys_by_label.get(scope, ()):
                if key in properties:
                    self._value_indexes[(scope, key)].discard(properties[key],
                                                              node_id)
                else:
                    # no value recorded — make sure no stale entry survives
                    self._value_indexes[(scope, key)].unhashable.discard(node_id)

    def _build_value_index(self, label: str | None, key: str) -> _ValueIndex:
        index = _ValueIndex()
        graph = self._graph
        if label is None:
            pool = self._out_signature.keys()
        else:
            pool = self._by_label.get(label, _EMPTY_BUCKET)
        for node_id in pool:
            properties = graph.node(node_id).properties
            if key in properties:
                index.add(properties[key], node_id)
        return index

    def ensure_value_index(self, label: str | None, key: str) -> None:
        """Register (and build, once) the value index for ``(label, key)``.

        Registration is O(label bucket); afterwards the index is maintained
        incrementally with every other bucket.  ``label=None`` indexes all
        nodes regardless of label (for label-free pattern variables).
        """
        pair = (label, key)
        if pair in self._value_indexes:
            return
        self._value_indexes[pair] = self._build_value_index(label, key)
        self._value_keys_by_label.setdefault(label, set()).add(key)

    def ensure_sorted_index(self, label: str | None, key: str) -> None:
        """Register ``(label, key)`` with range-probe support.

        Upgrades an existing equality-only index in place; the sorted arrays
        survive :meth:`rebuild` (the pair is remembered).
        """
        self.ensure_value_index(label, key)
        pair = (label, key)
        if pair not in self._sorted_pairs:
            self._sorted_pairs.add(pair)
            self._value_indexes[pair].enable_sorted()

    def range_bucket(self, label: str | None, key: str, op: str, value: Any):
        """Node ids with ``label`` whose ``key`` property may satisfy
        ``property <op> value`` (``op`` in ``"lt"/"le"/"gt"/"ge"``).

        Returns ``None`` when unanswerable (pair not registered for sorting,
        or ``value`` unorderable — including NaN); otherwise a complete set
        (side-pool extras included, rejected by residual checks).  The
        returned set is fresh and caller-owned.
        """
        index = self._value_indexes.get((label, key))
        if index is None:
            return None
        return index.range_ids(op, value)

    def membership_bucket(self, label: str | None, key: str, values: Iterable[Any]):
        """Node ids with ``label`` whose ``key`` property may be in ``values``
        (union of equality buckets plus the unhashable pool), or ``None``
        when unanswerable.  The returned set is fresh and caller-owned."""
        index = self._value_indexes.get((label, key))
        if index is None:
            return None
        return index.member_ids(values)

    def value_stats(self, label: str | None, key: str) -> tuple[int, int] | None:
        """``(total entries, distinct values)`` of a registered value index,
        or ``None`` — the planner's average-bucket-size statistic for
        dynamic (bind-time) equality probes."""
        index = self._value_indexes.get((label, key))
        if index is None:
            return None
        return (index.total + len(index.unhashable),
                len(index.values) + (1 if index.unhashable else 0))

    def value_bucket(self, label: str | None, key: str, value: Any):
        """Node ids with ``label`` whose ``key`` property equals ``value``.

        Returns ``None`` when the probe cannot be answered (the pair was never
        registered, or ``value`` is unhashable) — callers must then fall back
        to their unfiltered pool.  Otherwise the returned set is **complete**
        for the equality (it may include unhashable-valued extras that the
        caller's residual checks reject) and must be treated as read-only: it
        may be a live internal bucket.
        """
        index = self._value_indexes.get((label, key))
        if index is None:
            return None
        try:
            exact = index.values.get(value)
        except TypeError:
            return None
        fuzzy = index.unhashable
        if not fuzzy:
            return exact if exact is not None else _EMPTY_BUCKET
        if exact is None:
            return fuzzy
        return exact | fuzzy

    def pushdowns(self, pattern: Pattern) -> dict[str, PushdownSpec]:
        """The pattern's constant-equality pushdown specs, cached per pattern.

        First use registers the value indexes every spec can probe, so the
        matcher's hot path never pays a lazy build mid-search.

        Lifetime contract: like the matcher's per-pattern search profiles,
        cache entries hold a strong pattern reference and registered value
        indexes are maintained for the index's lifetime.  An index is
        expected to serve a fixed rule set (sessions bind one per graph);
        callers streaming unbounded ad-hoc patterns through one index should
        rebuild it periodically instead.
        """
        cached = self._pushdown_cache.get(id(pattern))
        if cached is not None and cached[0] is pattern:
            return cached[1]
        specs = variable_pushdowns(pattern)
        for variable, spec in specs.items():
            label = pattern.node_variable(variable).label
            for key, _value in spec.unary:
                self.ensure_value_index(label, key)
            for key, _value in spec.literal:
                self.ensure_value_index(label, key)
            for own_key, _other_var, _other_key in spec.dynamic:
                self.ensure_value_index(label, own_key)
            for key, _values in spec.members:
                self.ensure_value_index(label, key)
            for key, _op, _value in spec.ranges:
                self.ensure_sorted_index(label, key)
            for own_key, _op, _other_var, _other_key in spec.dynamic_ranges:
                self.ensure_sorted_index(label, own_key)
        self._pushdown_cache[id(pattern)] = (pattern, specs)
        return specs

    def check_value_integrity(self) -> bool:
        """Verify every registered value index exactly matches a rebuild from
        the graph (test/debug helper; O(registered pairs × label buckets))."""
        for (label, key), index in self._value_indexes.items():
            if not index.equal_to(self._build_value_index(label, key)):
                return False
        return True

    def check_sorted_integrity(self) -> bool:
        """Verify every sorted pair's arrays and side pool exactly match a
        rebuild from the graph (test/debug helper, mirror of
        :meth:`check_value_integrity` for the range layer)."""
        for pair in self._sorted_pairs:
            index = self._value_indexes[pair]
            if not index.sorted_enabled:
                return False
            rebuilt = self._build_value_index(*pair)
            rebuilt.enable_sorted()
            if not index.sorted_equal_to(rebuilt):
                return False
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def nodes_with_label(self, label: str | None) -> set[str]:
        """Node ids with the given label (a fresh, caller-owned set);
        ``None`` means all nodes."""
        if label is None:
            return set(self._out_signature.keys())
        return set(self._by_label.get(label, set()))

    def label_bucket(self, label: str | None):
        """Zero-copy view of the node ids with ``label`` (``None`` = all nodes).

        The returned collection is the live internal bucket: it must not be
        mutated and is invalidated by graph mutations.  Hot-path counterpart of
        :meth:`nodes_with_label`.
        """
        if label is None:
            return self._out_signature.keys()
        return self._by_label.get(label, _EMPTY_BUCKET)

    def label_count(self, label: str | None) -> int:
        if label is None:
            return len(self._out_signature)
        return len(self._by_label.get(label, ()))

    def total_degree(self, node_id: str) -> tuple[int, int]:
        """Cached (out, in) total degree of a node (0, 0 if unknown)."""
        return self._out_total.get(node_id, 0), self._in_total.get(node_id, 0)

    def signature_dominates(self, node_id: str, out_required: Counter,
                            in_required: Counter) -> bool:
        """True if the node has at least the required per-label out/in edges.

        Wildcard (``None``-label) requirements compare against the cached
        total degree instead of re-summing the signature per probe.
        """
        out_signature = self._out_signature.get(node_id)
        in_signature = self._in_signature.get(node_id)
        if out_signature is None or in_signature is None:
            return False
        for label, required in out_required.items():
            available = (self._out_total.get(node_id, 0) if label is None
                         else out_signature.get(label, 0))
            if available < required:
                return False
        for label, required in in_required.items():
            available = (self._in_total.get(node_id, 0) if label is None
                         else in_signature.get(label, 0))
            if available < required:
                return False
        return True

    def candidates(self, pattern: Pattern, variable: str,
                   apply_predicates: bool = True, stats=None,
                   use_value_buckets: bool = True) -> list[str]:
        """Candidate node ids for one pattern variable.

        Filters: label bucket, neighbourhood-signature dominance over the
        variable's local pattern-edge requirements, then (optionally) the
        variable's unary property predicates.  When the variable carries a
        constant ``EQ`` predicate and ``use_value_buckets`` is on, the
        smallest matching value bucket replaces the label-bucket scan — the
        result set is identical (value buckets are complete and the residual
        predicate check still runs), only the iteration shrinks.

        ``stats`` (a :class:`~repro.matching.vf2.MatchingStats`) receives the
        prune counters: label-bucket size, value-bucket size actually scanned,
        and predicate survivors.
        """
        pattern_node = pattern.node_variable(variable)
        out_required, in_required = pattern_requirements(pattern, variable)
        check_predicates = apply_predicates and pattern_node.predicates
        label = pattern_node.label
        label_pool = self.label_bucket(label)
        pool = label_pool
        if stats is not None:
            stats.label_bucket_candidates += len(label_pool)
        if use_value_buckets and check_predicates:
            spec = self.pushdowns(pattern).get(variable)
            if spec is not None:
                pool_is_range = False
                for key, value in spec.unary:
                    bucket = self.value_bucket(label, key, value)
                    if bucket is not None and len(bucket) < len(pool):
                        pool = bucket
                for key, values in spec.members:
                    bucket = self.membership_bucket(label, key, values)
                    if bucket is not None and len(bucket) < len(pool):
                        pool = bucket
                        pool_is_range = True
                for key, op, value in spec.ranges:
                    bucket = self.range_bucket(label, key, op, value)
                    if bucket is not None and len(bucket) < len(pool):
                        pool = bucket
                        pool_is_range = True
                if pool is not label_pool and stats is not None:
                    if pool_is_range:
                        stats.range_bucket_candidates += len(pool)
                    else:
                        stats.value_bucket_candidates += len(pool)
        node = self._graph.node
        dominates = self.signature_dominates
        result = []
        for node_id in pool:
            if not dominates(node_id, out_required, in_required):
                continue
            if check_predicates and not pattern_node.matches(node(node_id)):
                continue
            result.append(node_id)
        if stats is not None:
            stats.predicate_survivors += len(result)
        return result

    def candidate_count_estimate(self, pattern: Pattern, variable: str) -> int:
        """Cheap selectivity estimate (label-bucket size) used for ordering."""
        return self.label_count(pattern.node_variable(variable).label)

    def estimated_candidates(self, pattern: Pattern, variable: str,
                             bound: Iterable[str] = ()) -> int:
        """Live cardinality estimate for one variable: the smallest bucket
        any of its pushdowns can answer right now.

        ``bound`` is the set of variables already bound when this one is
        enumerated — dynamic (cross-variable) pushdowns only apply when their
        other side is in it, in which case the average equality-bucket size
        (total entries / distinct values) stands in for the unknown probe.
        This is the cost planner's per-variable statistic; it never touches
        actual candidates, so it is O(#pushdowns) dictionary lookups plus
        O(log n) bisects.
        """
        pattern_node = pattern.node_variable(variable)
        label = pattern_node.label
        estimate = self.label_count(label)
        spec = self.pushdowns(pattern).get(variable)
        if spec is None:
            return estimate
        for key, value in spec.unary:
            bucket = self.value_bucket(label, key, value)
            if bucket is not None and len(bucket) < estimate:
                estimate = len(bucket)
        for key, value in spec.literal:
            bucket = self.value_bucket(label, key, value)
            if bucket is not None and len(bucket) < estimate:
                estimate = len(bucket)
        for key, values in spec.members:
            bucket = self.membership_bucket(label, key, values)
            if bucket is not None and len(bucket) < estimate:
                estimate = len(bucket)
        for key, op, value in spec.ranges:
            bucket = self.range_bucket(label, key, op, value)
            if bucket is not None and len(bucket) < estimate:
                estimate = len(bucket)
        bound_set = bound if isinstance(bound, (set, frozenset)) else set(bound)
        for own_key, other_var, _other_key in spec.dynamic:
            if other_var not in bound_set:
                continue
            stats = self.value_stats(label, own_key)
            if stats is None:
                continue
            total, distinct = stats
            average = total // distinct + 1 if distinct else 0
            if average < estimate:
                estimate = average
        return estimate


def pattern_requirements(pattern: Pattern, variable: str) -> tuple[Counter, Counter]:
    """The per-label outgoing/incoming edge counts a data node must have to
    possibly bind ``variable``.

    Two pattern edges need *distinct* witnessing data edges only when they
    connect different variable pairs (injectivity forces distinct endpoints)
    or when they carry edge variables (the edge-binding phase enforces
    distinctness).  Parallel variable-less pattern edges between the same pair
    may share one witness, so they contribute a single requirement — counting
    them individually over-prunes (a node with one ``r`` edge can satisfy two
    parallel variable-less ``r`` constraints).
    """
    out_groups: dict[tuple[str, str | None], int] = {}
    in_groups: dict[tuple[str, str | None], int] = {}
    for edge in pattern.edges:
        carries_variable = 1 if edge.variable is not None else 0
        if edge.source == variable:
            key = (edge.target, edge.label)
            out_groups[key] = out_groups.get(key, 0) + carries_variable
        if edge.target == variable:
            key = (edge.source, edge.label)
            in_groups[key] = in_groups.get(key, 0) + carries_variable
    out_required: Counter = Counter()
    in_required: Counter = Counter()
    for (_other, label), variable_count in out_groups.items():
        out_required[label] += max(1, variable_count)
    for (_other, label), variable_count in in_groups.items():
        in_required[label] += max(1, variable_count)
    return out_required, in_required


def naive_candidates(graph: PropertyGraph, pattern: Pattern, variable: str,
                     apply_predicates: bool = True) -> list[str]:
    """Candidates computed directly from the graph (no index).

    Used when the candidate-index optimisation is disabled (ablation E5) and
    as a correctness oracle in tests.
    """
    pattern_node: PatternNode = pattern.node_variable(variable)
    out_required, in_required = pattern_requirements(pattern, variable)
    candidates = []
    if pattern_node.label is not None:
        node_pool = graph.nodes_with_label(pattern_node.label)
    else:
        node_pool = list(graph.nodes())
    for node in node_pool:
        out_counter: Counter = Counter(edge.label for edge in graph.iter_out_edges(node.id))
        in_counter: Counter = Counter(edge.label for edge in graph.iter_in_edges(node.id))
        out_total = graph.out_degree(node.id)
        in_total = graph.in_degree(node.id)
        satisfied = True
        for label, required in out_required.items():
            available = out_total if label is None else out_counter.get(label, 0)
            if available < required:
                satisfied = False
                break
        if satisfied:
            for label, required in in_required.items():
                available = in_total if label is None else in_counter.get(label, 0)
                if available < required:
                    satisfied = False
                    break
        if not satisfied:
            continue
        if apply_predicates and not pattern_node.matches(node):
            continue
        candidates.append(node.id)
    return candidates
