"""Pattern decomposition: pivot selection and search-order planning.

The optimised matcher does not explore pattern variables in declaration
order.  It picks a *pivot* (the most selective, most constrained variable),
then grows a connected search order outward from the pivot, and groups the
pattern edges into *star units* rooted at already-bound variables.  This
mirrors the decomposition-based matching strategy of the paper's efficient
algorithm:

* the pivot minimises the initial candidate fan-out;
* a connected order means every subsequent variable's candidates can be
  derived from the neighbourhood of an already-bound node instead of from a
  whole label bucket;
* star units are the re-usable pieces for incremental matching: a changed
  data node only needs to be tried as the centre or a leaf of the stars it
  could participate in.

This module is purely combinatorial (no graph access beyond optional
selectivity statistics), so it is cheap to run per pattern and its output is
cached by the matcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.matching.pattern import Pattern, PatternEdge


@dataclass(frozen=True)
class StarUnit:
    """A star: one centre variable plus the pattern edges incident to it that
    connect to already-bound variables or new leaves."""

    center: str
    edges: tuple[PatternEdge, ...]

    @property
    def leaves(self) -> tuple[str, ...]:
        seen = []
        for edge in self.edges:
            leaf = edge.target if edge.source == self.center else edge.source
            if leaf not in seen:
                seen.append(leaf)
        return tuple(seen)


@dataclass
class SearchPlan:
    """The output of decomposition: a variable order plus per-step join edges.

    ``order[i]`` is the i-th variable to bind; ``join_edges[i]`` are the
    pattern edges connecting it to variables bound earlier (empty for the
    pivot), which the matcher uses to derive candidates from neighbourhoods.
    ``stars`` is the star-unit cover used by the incremental matcher.
    """

    pattern: Pattern
    order: list[str] = field(default_factory=list)
    join_edges: list[list[PatternEdge]] = field(default_factory=list)
    stars: list[StarUnit] = field(default_factory=list)

    @property
    def pivot(self) -> str:
        return self.order[0]

    def position(self, variable: str) -> int:
        return self.order.index(variable)


def default_selectivity(pattern: Pattern, variable: str) -> float:
    """Structural selectivity estimate used when no index statistics are given.

    More incident pattern edges, more predicates, and a concrete label all
    make a variable more selective (lower score = more selective = better
    pivot).
    """
    node = pattern.node_variable(variable)
    score = 100.0
    score -= 10.0 * len(pattern.edges_touching(variable))
    score -= 5.0 * len(node.predicates)
    if node.label is not None:
        score -= 20.0
    return score


def choose_pivot(pattern: Pattern,
                 selectivity: Callable[[Pattern, str], float] | None = None) -> str:
    """The variable with the lowest selectivity score (ties: declaration order)."""
    scorer = selectivity or default_selectivity
    best_variable = pattern.variables[0]
    best_score = scorer(pattern, best_variable)
    for variable in pattern.variables[1:]:
        score = scorer(pattern, variable)
        if score < best_score:
            best_variable, best_score = variable, score
    return best_variable


def build_search_plan(pattern: Pattern,
                      selectivity: Callable[[Pattern, str], float] | None = None,
                      pivot: str | None = None) -> SearchPlan:
    """Compute a connected search order and star cover for ``pattern``.

    Starting from the pivot, repeatedly pick the unbound variable with the
    most join edges into the bound set (ties broken by selectivity), so each
    step is as constrained as possible.
    """
    scorer = selectivity or default_selectivity
    start = pivot or choose_pivot(pattern, scorer)
    plan = SearchPlan(pattern=pattern)

    bound: list[str] = [start]
    plan.order.append(start)
    plan.join_edges.append([])

    remaining = [variable for variable in pattern.variables if variable != start]
    while remaining:
        best_variable = None
        best_joins: list[PatternEdge] = []
        best_rank: tuple[float, float] | None = None
        for variable in remaining:
            joins = [edge for edge in pattern.edges_touching(variable)
                     if (edge.source in bound or edge.target in bound)
                     and (edge.source == variable or edge.target == variable)
                     and not (edge.source in bound and edge.target in bound
                              and edge.source != variable and edge.target != variable)]
            # rank: prefer many joins, then low selectivity score
            rank = (-float(len(joins)), scorer(pattern, variable))
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_variable = variable
                best_joins = joins
        assert best_variable is not None
        plan.order.append(best_variable)
        plan.join_edges.append(best_joins)
        bound.append(best_variable)
        remaining.remove(best_variable)

    plan.stars = decompose_into_stars(pattern, plan.order)
    return plan


def decompose_into_stars(pattern: Pattern, order: list[str] | None = None) -> list[StarUnit]:
    """Cover all pattern edges with stars centred on the ordered variables.

    Each pattern edge is assigned to the star of whichever of its endpoints
    comes *first* in the order (the earlier-bound endpoint is the natural
    join anchor).  Variables with no assigned edges contribute no star.
    """
    variable_order = order or list(pattern.variables)
    position = {variable: index for index, variable in enumerate(variable_order)}
    per_center: dict[str, list[PatternEdge]] = {}
    for edge in pattern.edges:
        center = edge.source if position[edge.source] <= position[edge.target] else edge.target
        per_center.setdefault(center, []).append(edge)
    stars = []
    for variable in variable_order:
        edges = per_center.get(variable)
        if edges:
            stars.append(StarUnit(center=variable, edges=tuple(edges)))
    return stars


def plan_connected_order(pattern: Pattern, seeded,
                         estimate: Callable[[str, set], int],
                         ) -> tuple[list[str], dict[str, int]]:
    """Greedy connected variable order driven by live candidate estimates.

    This is the cost-based counterpart of :func:`build_search_plan`'s
    ordering: instead of a static structural score it consults
    ``estimate(variable, bound)`` — live bucket cardinalities from the
    candidate index — and it starts from the ``seeded`` variables (already
    bound when a seeded incremental search begins) so every later variable
    joins into the bound set whenever the pattern allows it.

    Ranking for each next pick: most join edges into the bound set first
    (connectivity beats cardinality — a joined variable enumerates a
    neighbourhood, not a bucket), then the smaller live estimate, then
    declaration order for determinism.  With no seeds the first pick has
    zero joins everywhere, so it degenerates to the min-estimate pivot.

    Returns ``(order, estimates)`` where ``estimates`` records the estimate
    each non-seeded variable was chosen under — the baseline the planner's
    drift check compares against.
    """
    positions = pattern.variable_positions()
    order = [variable for variable in pattern.variables if variable in seeded]
    bound = set(order)
    estimates: dict[str, int] = {}
    remaining = [variable for variable in pattern.variables
                 if variable not in bound]
    while remaining:
        best_variable = None
        best_rank: tuple[int, int, int] | None = None
        for variable in remaining:
            joins = 0
            for edge in pattern.edges_touching(variable):
                other = edge.target if edge.source == variable else edge.source
                if other in bound:
                    joins += 1
            rank = (-joins, estimate(variable, bound), positions[variable])
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_variable = variable
        assert best_variable is not None and best_rank is not None
        order.append(best_variable)
        estimates[best_variable] = best_rank[1]
        bound.add(best_variable)
        remaining.remove(best_variable)
    return order, estimates


def variables_compatible_with_label(pattern: Pattern, label: str) -> list[str]:
    """Pattern variables a data node with ``label`` could possibly bind.

    Used by the incremental matcher to decide which seeded searches to run
    for a touched node.
    """
    compatible = []
    for node in pattern.nodes:
        if node.label is None or node.label == label:
            compatible.append(node.variable)
    return compatible
