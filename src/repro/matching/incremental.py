"""Incremental match maintenance under graph deltas.

The key optimisation of the fast repair algorithm: after a repair mutates the
graph, we do not re-enumerate all matches of all rule patterns.  Instead:

1. **Invalidation** — existing matches that bind a removed element, or whose
   bound elements were touched by the delta, are re-verified; invalid ones
   are dropped.  The store keeps an **inverted element→match index** (node id
   and edge id → match keys), so only the matches actually overlapping the
   delta are visited — O(matches touching the delta), not O(all stored
   matches).
2. **Discovery** — a match that exists after the delta but not before must
   bind at least one *changed* element.  Seeded backtracking searches are
   therefore derived per change kind: an added/updated/relabelled data edge
   pins **both** endpoint variables of every label-compatible pattern edge
   (the new match must use the changed edge as witness or edge binding, so
   its endpoints are fixed), an added/updated/relabelled node is pinned at
   every label-compatible variable, and node merges conservatively seed the
   whole touched region.  Removals are purely subtractive for this
   existential-positive pattern language and trigger no discovery.  The union
   of the searches, deduplicated by match key, is exactly the set of new
   matches.

The correctness argument is the standard locality argument for connected
patterns: every new match binds a changed element, every changed element's
possible positions in a match are enumerated, and seeded search is complete
for a fixed seed.

One :class:`~repro.matching.vf2.VF2Matcher` instance is shared across the
initial enumeration and every seeded search, so per-pattern search plans are
compiled once and :class:`~repro.matching.vf2.MatchingStats` accumulate for
the whole maintenance lifetime (surfaced in the repair report).  The shared
engine also means every seeded discovery search goes through the same
predicate-pushdown candidate derivation as full enumeration: value buckets
registered at :meth:`IncrementalMatcher.register` time keep pruning
constant-equality failures out of the thousands of seeded searches a repair
run performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.graph.delta import ChangeKind, GraphDelta
from repro.graph.property_graph import PropertyGraph
from repro.matching.decomposition import variables_compatible_with_label
from repro.matching.index import CandidateIndex, pattern_requirements
from repro.matching.pattern import Match, Pattern
from repro.matching.vf2 import MatchingStats, VF2Matcher

# Change kinds whose discovery seeds pin a (changed) data edge's endpoints to
# the endpoint variables of compatible pattern edges, versus kinds that seed
# one changed node at every compatible variable.
_EDGE_SEED_KINDS = frozenset({ChangeKind.ADD_EDGE, ChangeKind.UPDATE_EDGE,
                              ChangeKind.RELABEL_EDGE})
_NODE_SEED_KINDS = frozenset({ChangeKind.ADD_NODE, ChangeKind.UPDATE_NODE,
                              ChangeKind.RELABEL_NODE})


@dataclass
class MatchStore:
    """The current set of matches of one pattern, keyed by match identity.

    Alongside the primary ``matches`` dict the store maintains an inverted
    index from bound element ids to match keys, so that delta-driven
    invalidation can jump straight to the matches overlapping a changed
    region instead of scanning the whole store.
    """

    pattern: Pattern
    matches: dict[tuple, Match] = field(default_factory=dict)
    _by_node: dict[str, set[tuple]] = field(default_factory=dict, repr=False)
    _by_edge: dict[str, set[tuple]] = field(default_factory=dict, repr=False)

    def add(self, match: Match) -> bool:
        """Insert a match; returns True if it was not already present."""
        key = match.key()
        if key in self.matches:
            return False
        self.matches[key] = match
        for node_id in match.node_bindings.values():
            self._by_node.setdefault(node_id, set()).add(key)
        for edge_id in match.edge_bindings.values():
            self._by_edge.setdefault(edge_id, set()).add(key)
        return True

    def discard(self, match: Match) -> None:
        key = match.key()
        if self.matches.pop(key, None) is None:
            return
        for node_id in match.node_bindings.values():
            bucket = self._by_node.get(node_id)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_node[node_id]
        for edge_id in match.edge_bindings.values():
            bucket = self._by_edge.get(edge_id)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_edge[edge_id]

    def matches_touching(self, node_ids: Iterable[str] = (),
                         edge_ids: Iterable[str] = ()) -> list[Match]:
        """Stored matches binding any of the given element ids.

        Cost is proportional to the number of overlapping matches (plus one
        index probe per queried id), independent of the store size.  Results
        are ordered by match key so downstream iteration (violation queueing)
        stays deterministic across processes.
        """
        keys: set[tuple] = set()
        by_node = self._by_node
        for node_id in node_ids:
            bucket = by_node.get(node_id)
            if bucket:
                keys.update(bucket)
        by_edge = self._by_edge
        for edge_id in edge_ids:
            bucket = by_edge.get(edge_id)
            if bucket:
                keys.update(bucket)
        matches = self.matches
        return [matches[key] for key in sorted(keys)]

    def check_integrity(self) -> bool:
        """Verify the inverted index exactly mirrors the stored matches
        (test/debug helper; O(store size))."""
        expected_nodes: dict[str, set[tuple]] = {}
        expected_edges: dict[str, set[tuple]] = {}
        for key, match in self.matches.items():
            for node_id in match.node_bindings.values():
                expected_nodes.setdefault(node_id, set()).add(key)
            for edge_id in match.edge_bindings.values():
                expected_edges.setdefault(edge_id, set()).add(key)
        return expected_nodes == self._by_node and expected_edges == self._by_edge

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self) -> Iterator[Match]:
        return iter(list(self.matches.values()))

    def all(self) -> list[Match]:
        return list(self.matches.values())


@dataclass
class IncrementalUpdate:
    """The outcome of applying one delta to a match store.

    ``invalidation_checked`` counts the stored matches re-verified during
    invalidation — with the inverted index this is the number of matches
    overlapping the delta, which the O(delta) regression tests assert on.
    """

    invalidated: list[Match] = field(default_factory=list)
    discovered: list[Match] = field(default_factory=list)
    seeded_searches: int = 0
    invalidation_checked: int = 0


class IncrementalMatcher:
    """Maintains :class:`MatchStore` objects for a set of patterns under deltas."""

    def __init__(self, graph: PropertyGraph, candidate_index: CandidateIndex | None = None,
                 use_decomposition: bool = True, use_cost_planner: bool = True) -> None:
        self.graph = graph
        self.candidate_index = candidate_index
        self.use_decomposition = use_decomposition
        self.use_cost_planner = use_cost_planner
        self._stores: dict[str, MatchStore] = {}
        # pre-filtered registration-time subset: stores whose rule has
        # incompleteness semantics, so the subtractive-delta recheck never
        # iterates (or even label-checks) the other stores
        self._incompleteness_stores: dict[str, MatchStore] = {}
        self._engine = VF2Matcher(graph=graph, candidate_index=candidate_index,
                                  use_decomposition=use_decomposition,
                                  use_cost_planner=use_cost_planner)
        # cached pattern_requirements per (pattern, variable) for seed pruning;
        # the value keeps a strong reference to the pattern so the id() key
        # can never be recycled while the entry is alive
        self._requirements: dict[tuple[int, str], tuple] = {}

    @property
    def stats(self) -> MatchingStats:
        """Accumulated matching statistics of every search this maintainer ran."""
        return self._engine.stats

    # ------------------------------------------------------------------
    # registration and initial enumeration
    # ------------------------------------------------------------------

    def register(self, pattern: Pattern, enumerate_now: bool = True,
                 limit: int | None = None, incompleteness: bool = False) -> MatchStore:
        """Register a pattern and (by default) enumerate its initial matches.

        ``incompleteness=True`` marks the pattern as the evidence of an
        incompleteness-semantics rule: its store is additionally kept in a
        pre-filtered list (:meth:`incompleteness_stores`) that the repairers'
        post-delta recheck iterates instead of scanning every store.

        Registration pre-warms the candidate index's value buckets for the
        pattern's constant-equality pushdowns, so neither the initial
        enumeration nor the first seeded discovery pays a lazy bucket build
        mid-search.
        """
        if self.candidate_index is not None:
            self.candidate_index.pushdowns(pattern)
        store = MatchStore(pattern=pattern)
        self._stores[pattern.name] = store
        if incompleteness:
            self._incompleteness_stores[pattern.name] = store
        else:
            self._incompleteness_stores.pop(pattern.name, None)
        if enumerate_now:
            for match in self._engine.iter_matches(pattern, limit=limit):
                store.add(match)
        return store

    def store(self, pattern_name: str) -> MatchStore:
        return self._stores[pattern_name]

    def stores(self) -> list[MatchStore]:
        return list(self._stores.values())

    def incompleteness_stores(self) -> list[MatchStore]:
        """Only the stores registered with ``incompleteness=True`` (the
        subtractive-delta recheck set)."""
        return list(self._incompleteness_stores.values())

    def total_matches(self) -> int:
        return sum(len(store) for store in self._stores.values())

    # ------------------------------------------------------------------
    # delta application
    # ------------------------------------------------------------------

    def apply_delta(self, delta: GraphDelta,
                    patterns: Iterable[str] | None = None) -> dict[str, IncrementalUpdate]:
        """Update every registered (or named) pattern's store for ``delta``.

        Returns a per-pattern :class:`IncrementalUpdate` describing which
        matches were invalidated and which were newly discovered.
        """
        if not delta:
            return {}
        self._engine.stats.maintenance_passes += 1
        target_stores = ([self._stores[name] for name in patterns]
                         if patterns is not None else list(self._stores.values()))
        updates: dict[str, IncrementalUpdate] = {}
        for store in target_stores:
            updates[store.pattern.name] = self._update_store(store, delta)
        return updates

    def _update_store(self, store: MatchStore, delta: GraphDelta) -> IncrementalUpdate:
        update = IncrementalUpdate()
        removed_nodes = delta.removed_node_ids
        removed_edges = delta.removed_edge_ids
        touched = delta.touched_nodes

        # 1. Invalidation: re-verify only the matches overlapping the affected
        #    region, found through the store's inverted element→match index.
        overlapping = store.matches_touching(node_ids=removed_nodes | touched,
                                             edge_ids=removed_edges)
        update.invalidation_checked = len(overlapping)
        for match in overlapping:
            if not match.is_valid(self.graph):
                store.discard(match)
                update.invalidated.append(match)

        # 2. Discovery: delta-driven seeded searches.  A match that exists
        #    after the delta but not before must bind a changed element, so
        #    the seeds are derived per change kind:
        #
        #    * added / relabelled / updated *edges* pin BOTH endpoint
        #      variables of every label-compatible pattern edge (the new match
        #      must use the changed edge as a witness, or bind it as an edge
        #      variable — either way its endpoints are fixed);
        #    * added / relabelled / updated *nodes* seed that node at every
        #      compatible variable (only its own state changed);
        #    * node merges fall back to the conservative touched-node region
        #      (they restructure incidence non-locally).
        #
        #    Removals are purely subtractive for the existential-positive
        #    pattern language and need no discovery at all.
        if delta.has_additive_effect:
            self._discover(store, delta, update)
        return update

    def _discover(self, store: MatchStore, delta: GraphDelta,
                  update: IncrementalUpdate) -> None:
        graph = self.graph
        pattern = store.pattern
        seed_nodes: set[str] = set()
        edge_seeds: set[tuple[str, str, str]] = set()
        for change in delta.changes:
            kind = change.kind
            if kind in _EDGE_SEED_KINDS:
                if change.edge_id is not None and graph.has_edge(change.edge_id):
                    edge = graph.edge(change.edge_id)
                    edge_seeds.add((edge.source, edge.target, edge.label))
            elif kind in _NODE_SEED_KINDS:
                if change.node_id is not None:
                    seed_nodes.add(change.node_id)
            elif kind is ChangeKind.MERGE_NODES:
                if change.node_id is not None:
                    seed_nodes.add(change.node_id)
                seed_nodes.update(change.touched_nodes)

        engine = self._engine
        launched: set[tuple] = set()

        def run_search(seed: dict[str, str]) -> None:
            key = tuple(sorted(seed.items()))
            if key in launched:
                return
            launched.add(key)
            update.seeded_searches += 1
            for match in engine.iter_matches(pattern, seed=seed):
                if store.add(match):
                    update.discovered.append(match)

        for node_id in sorted(node_id for node_id in seed_nodes
                              if graph.has_node(node_id)):
            node = graph.node(node_id)
            for variable in variables_compatible_with_label(pattern, node.label):
                if self._seed_viable(pattern, variable, node_id, node):
                    run_search({variable: node_id})

        for source_id, target_id, label in sorted(edge_seeds):
            if not (graph.has_node(source_id) and graph.has_node(target_id)):
                continue
            source_node = graph.node(source_id)
            target_node = graph.node(target_id)
            for pattern_edge in pattern.edges:
                if pattern_edge.label is not None and pattern_edge.label != label:
                    continue
                if pattern_edge.source == pattern_edge.target:
                    # self-loop pattern edge needs a self-loop witness
                    if source_id == target_id and self._seed_viable(
                            pattern, pattern_edge.source, source_id, source_node):
                        run_search({pattern_edge.source: source_id})
                    continue
                if source_id == target_id:
                    continue  # injectivity: distinct variables, distinct nodes
                if not self._seed_viable(pattern, pattern_edge.source,
                                         source_id, source_node):
                    continue
                if not self._seed_viable(pattern, pattern_edge.target,
                                         target_id, target_node):
                    continue
                run_search({pattern_edge.source: source_id,
                            pattern_edge.target: target_id})

    def _seed_viable(self, pattern: Pattern, variable: str, node_id: str, node) -> bool:
        """Cheap pre-filter for seeded searches: the seed node must pass the
        variable's label/unary predicates and, when a candidate index is
        available, its neighbourhood signature must dominate the variable's
        pattern-edge requirements."""
        if not pattern.node_variable(variable).matches(node):
            return False
        index = self.candidate_index
        if index is None:
            return True
        key = (id(pattern), variable)
        cached = self._requirements.get(key)
        if cached is None or cached[0] is not pattern:
            cached = (pattern, pattern_requirements(pattern, variable))
            self._requirements[key] = cached
        return index.signature_dominates(node_id, *cached[1])

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def recompute(self, pattern_name: str) -> MatchStore:
        """Throw away and fully re-enumerate one pattern's matches (used in tests
        as the oracle the incremental path is compared against)."""
        store = self._stores[pattern_name]
        fresh = MatchStore(pattern=store.pattern)
        for match in self._engine.iter_matches(store.pattern):
            fresh.add(match)
        self._stores[pattern_name] = fresh
        if pattern_name in self._incompleteness_stores:
            self._incompleteness_stores[pattern_name] = fresh
        return fresh
