"""Incremental match maintenance under graph deltas.

The key optimisation of the fast repair algorithm: after a repair mutates the
graph, we do not re-enumerate all matches of all rule patterns.  Instead:

1. **Invalidation** — existing matches that bind a removed element, or whose
   bound elements were touched by the delta, are re-verified; invalid ones
   are dropped.
2. **Discovery** — new matches can only involve elements in the *affected
   region* (the touched nodes of the delta and, for patterns with radius
   > 1, their neighbourhood).  For every touched node that survives in the
   graph and every pattern variable whose label is compatible, a seeded
   backtracking search is run with that variable pinned to that node.  The
   union over touched nodes, deduplicated by match key, is exactly the set of
   new matches that overlap the affected region.

The correctness argument is the standard locality argument for connected
patterns: a match that exists after the delta but not before must bind at
least one element whose existence, label, properties, or incidence changed —
i.e. a touched node or an edge incident to one — and the seeded searches
cover all such bindings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.graph.delta import GraphDelta
from repro.graph.property_graph import PropertyGraph
from repro.matching.decomposition import variables_compatible_with_label
from repro.matching.index import CandidateIndex
from repro.matching.pattern import Match, Pattern
from repro.matching.vf2 import VF2Matcher


@dataclass
class MatchStore:
    """The current set of matches of one pattern, keyed by match identity."""

    pattern: Pattern
    matches: dict[tuple, Match] = field(default_factory=dict)

    def add(self, match: Match) -> bool:
        """Insert a match; returns True if it was not already present."""
        key = match.key()
        if key in self.matches:
            return False
        self.matches[key] = match
        return True

    def discard(self, match: Match) -> None:
        self.matches.pop(match.key(), None)

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self):
        return iter(list(self.matches.values()))

    def all(self) -> list[Match]:
        return list(self.matches.values())


@dataclass
class IncrementalUpdate:
    """The outcome of applying one delta to a match store."""

    invalidated: list[Match] = field(default_factory=list)
    discovered: list[Match] = field(default_factory=list)
    seeded_searches: int = 0


class IncrementalMatcher:
    """Maintains :class:`MatchStore` objects for a set of patterns under deltas."""

    def __init__(self, graph: PropertyGraph, candidate_index: CandidateIndex | None = None,
                 use_decomposition: bool = True) -> None:
        self.graph = graph
        self.candidate_index = candidate_index
        self.use_decomposition = use_decomposition
        self._stores: dict[str, MatchStore] = {}

    # ------------------------------------------------------------------
    # registration and initial enumeration
    # ------------------------------------------------------------------

    def register(self, pattern: Pattern, enumerate_now: bool = True,
                 limit: int | None = None) -> MatchStore:
        """Register a pattern and (by default) enumerate its initial matches."""
        store = MatchStore(pattern=pattern)
        self._stores[pattern.name] = store
        if enumerate_now:
            matcher = self._matcher()
            for match in matcher.iter_matches(pattern, limit=limit):
                store.add(match)
        return store

    def store(self, pattern_name: str) -> MatchStore:
        return self._stores[pattern_name]

    def stores(self) -> list[MatchStore]:
        return list(self._stores.values())

    def total_matches(self) -> int:
        return sum(len(store) for store in self._stores.values())

    # ------------------------------------------------------------------
    # delta application
    # ------------------------------------------------------------------

    def apply_delta(self, delta: GraphDelta,
                    patterns: Iterable[str] | None = None) -> dict[str, IncrementalUpdate]:
        """Update every registered (or named) pattern's store for ``delta``.

        Returns a per-pattern :class:`IncrementalUpdate` describing which
        matches were invalidated and which were newly discovered.
        """
        if not delta:
            return {}
        target_stores = ([self._stores[name] for name in patterns]
                         if patterns is not None else list(self._stores.values()))
        updates: dict[str, IncrementalUpdate] = {}
        for store in target_stores:
            updates[store.pattern.name] = self._update_store(store, delta)
        return updates

    def _update_store(self, store: MatchStore, delta: GraphDelta) -> IncrementalUpdate:
        update = IncrementalUpdate()
        removed_nodes = delta.removed_node_ids
        removed_edges = delta.removed_edge_ids
        touched = delta.touched_nodes

        # 1. Invalidation: re-verify matches overlapping the affected region.
        for match in list(store.all()):
            overlaps = (match.touches(node_ids=removed_nodes | touched,
                                      edge_ids=removed_edges))
            if not overlaps:
                continue
            if not match.is_valid(self.graph):
                store.discard(match)
                update.invalidated.append(match)

        # 2. Discovery: seeded searches from surviving touched nodes.
        if delta.has_additive_effect:
            affected_nodes = {node_id for node_id in touched if self.graph.has_node(node_id)}
            affected_nodes.update(node_id for node_id in delta.added_node_ids
                                  if self.graph.has_node(node_id))
            matcher = self._matcher()
            for node_id in sorted(affected_nodes):
                node_label = self.graph.node(node_id).label
                for variable in variables_compatible_with_label(store.pattern, node_label):
                    update.seeded_searches += 1
                    for match in matcher.iter_matches(store.pattern,
                                                      seed={variable: node_id}):
                        if store.add(match):
                            update.discovered.append(match)
        return update

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _matcher(self) -> VF2Matcher:
        return VF2Matcher(graph=self.graph, candidate_index=self.candidate_index,
                          use_decomposition=self.use_decomposition)

    def recompute(self, pattern_name: str) -> MatchStore:
        """Throw away and fully re-enumerate one pattern's matches (used in tests
        as the oracle the incremental path is compared against)."""
        store = self._stores[pattern_name]
        fresh = MatchStore(pattern=store.pattern)
        matcher = self._matcher()
        for match in matcher.iter_matches(store.pattern):
            fresh.add(match)
        self._stores[pattern_name] = fresh
        return fresh
