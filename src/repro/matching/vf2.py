"""Backtracking subgraph-isomorphism search (VF2-style).

The matcher binds pattern variables to data nodes one at a time following a
connected search order (see :mod:`repro.matching.decomposition`), deriving
each variable's candidates from the neighbourhood of already-bound nodes
whenever the pattern connects them — the join-at-a-time strategy that keeps
the search local.  Injectivity, labels, unary predicates, and cross-variable
comparisons are enforced during the search; edge variables are bound in a
final phase that requires distinct data edges for distinct edge variables
(needed for duplicate-parallel-edge redundancy patterns).

Two knobs matter for the experiments:

* ``candidate_index`` — with an index, root candidates come from label
  buckets with signature pruning; without it, from a full graph scan
  (ablation E5 / figure E7).
* ``use_decomposition`` — with decomposition, the search order starts at the
  most selective pivot; without it, declaration order is used.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.exceptions import MatchingError, MatchTimeout
from repro.graph.property_graph import PropertyGraph
from repro.matching.decomposition import build_search_plan
from repro.matching.index import CandidateIndex, naive_candidates
from repro.matching.pattern import Match, Pattern, PatternEdge


@dataclass
class MatchingStats:
    """Counters describing one matching run (used by benchmarks and tests)."""

    nodes_tried: int = 0
    backtracks: int = 0
    matches_found: int = 0
    elapsed_seconds: float = 0.0

    def merge(self, other: "MatchingStats") -> None:
        self.nodes_tried += other.nodes_tried
        self.backtracks += other.backtracks
        self.matches_found += other.matches_found
        self.elapsed_seconds += other.elapsed_seconds


@dataclass
class VF2Matcher:
    """Backtracking matcher over one :class:`PropertyGraph`.

    Parameters
    ----------
    graph:
        The data graph.
    candidate_index:
        Optional :class:`CandidateIndex`; when absent, root candidates are
        computed by scanning the graph.
    use_decomposition:
        Use pivot selection + connected ordering (True) or declaration order
        (False).
    time_budget:
        Optional wall-clock budget in seconds; exceeding it raises
        :class:`MatchTimeout`.
    """

    graph: PropertyGraph
    candidate_index: CandidateIndex | None = None
    use_decomposition: bool = True
    time_budget: float | None = None
    stats: MatchingStats = field(default_factory=MatchingStats)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def find_matches(self, pattern: Pattern, seed: Mapping[str, str] | None = None,
                     limit: int | None = None) -> list[Match]:
        """All matches of ``pattern`` (optionally at most ``limit``), optionally
        pre-binding the variables in ``seed`` (variable -> node id)."""
        return list(self.iter_matches(pattern, seed=seed, limit=limit))

    def find_one(self, pattern: Pattern, seed: Mapping[str, str] | None = None) -> Match | None:
        """The first match found, or ``None``."""
        for match in self.iter_matches(pattern, seed=seed, limit=1):
            return match
        return None

    def exists(self, pattern: Pattern, seed: Mapping[str, str] | None = None) -> bool:
        """Whether at least one match exists (short-circuits)."""
        return self.find_one(pattern, seed=seed) is not None

    def count(self, pattern: Pattern, seed: Mapping[str, str] | None = None,
              limit: int | None = None) -> int:
        """Number of matches (up to ``limit`` if given)."""
        return sum(1 for _ in self.iter_matches(pattern, seed=seed, limit=limit))

    def iter_matches(self, pattern: Pattern, seed: Mapping[str, str] | None = None,
                     limit: int | None = None) -> Iterator[Match]:
        """Lazily yield matches."""
        started = time.perf_counter()
        deadline = started + self.time_budget if self.time_budget is not None else None

        order = self._variable_order(pattern, seed)
        assignment: dict[str, str] = {}
        used_nodes: set[str] = set()

        if seed:
            for variable, node_id in seed.items():
                if not pattern.has_variable(variable):
                    raise MatchingError(f"seed variable {variable!r} is not in the pattern")
                if not self.graph.has_node(node_id):
                    return
                if node_id in used_nodes:
                    return
                if not pattern.node_variable(variable).matches(self.graph.node(node_id)):
                    return
                assignment[variable] = node_id
                used_nodes.add(node_id)
            # Seeded variables must also satisfy pattern edges among themselves.
            if not self._seed_edges_consistent(pattern, assignment):
                return

        emitted = 0
        for match in self._backtrack(pattern, order, 0, assignment, used_nodes, deadline):
            yield match
            emitted += 1
            self.stats.matches_found += 1
            if limit is not None and emitted >= limit:
                break
        self.stats.elapsed_seconds += time.perf_counter() - started

    # ------------------------------------------------------------------
    # search internals
    # ------------------------------------------------------------------

    def _variable_order(self, pattern: Pattern, seed: Mapping[str, str] | None) -> list[str]:
        if self.use_decomposition:
            selectivity = None
            if self.candidate_index is not None:
                def selectivity(p: Pattern, variable: str) -> float:  # noqa: ANN001
                    label_count = self.candidate_index.candidate_count_estimate(p, variable)
                    # fewer candidates and more constraints first
                    return label_count - 5.0 * len(p.edges_touching(variable))
            order = build_search_plan(pattern, selectivity=selectivity).order
        else:
            order = list(pattern.variables)
        if seed:
            seeded = [variable for variable in order if variable in seed]
            rest = [variable for variable in order if variable not in seed]
            order = seeded + rest
        return order

    def _seed_edges_consistent(self, pattern: Pattern, assignment: dict[str, str]) -> bool:
        for edge in pattern.edges:
            if edge.source in assignment and edge.target in assignment:
                witnesses = self.graph.edges_between(assignment[edge.source],
                                                     assignment[edge.target], edge.label)
                if not any(edge.matches(candidate) for candidate in witnesses):
                    return False
        return True

    def _backtrack(self, pattern: Pattern, order: list[str], depth: int,
                   assignment: dict[str, str], used_nodes: set[str],
                   deadline: float | None) -> Iterator[Match]:
        # Skip over already-seeded variables at the front of the order.
        while depth < len(order) and order[depth] in assignment:
            depth += 1
        if deadline is not None and time.perf_counter() > deadline:
            raise MatchTimeout(self.time_budget or 0.0)
        if depth == len(order):
            yield from self._bind_edge_variables(pattern, assignment)
            return

        variable = order[depth]
        for node_id in self._candidates_for(pattern, variable, assignment):
            if node_id in used_nodes:
                continue
            self.stats.nodes_tried += 1
            node = self.graph.node(node_id)
            if not pattern.node_variable(variable).matches(node):
                continue
            if not self._edges_to_bound_satisfied(pattern, variable, node_id, assignment):
                continue
            assignment[variable] = node_id
            used_nodes.add(node_id)
            if self._node_comparisons_satisfiable(pattern, assignment):
                yield from self._backtrack(pattern, order, depth + 1, assignment,
                                           used_nodes, deadline)
            else:
                self.stats.backtracks += 1
            del assignment[variable]
            used_nodes.discard(node_id)

    def _candidates_for(self, pattern: Pattern, variable: str,
                        assignment: dict[str, str]) -> list[str]:
        """Candidates for ``variable`` given the current partial assignment.

        If the variable is connected by pattern edges to bound variables, the
        candidates are the intersection of the corresponding data
        neighbourhoods; otherwise fall back to the index / full scan.
        """
        join_candidate_sets: list[set[str]] = []
        for edge in pattern.edges_touching(variable):
            other = edge.target if edge.source == variable else edge.source
            if other not in assignment or other == variable:
                continue
            bound_id = assignment[other]
            if not self.graph.has_node(bound_id):
                return []
            if edge.source == variable:
                # variable -[label]-> bound : candidates are sources of in-edges of bound
                witnesses = self.graph.in_edges(bound_id)
                candidates = {witness.source for witness in witnesses
                              if (edge.label is None or witness.label == edge.label)
                              and edge.matches(witness)}
            else:
                witnesses = self.graph.out_edges(bound_id)
                candidates = {witness.target for witness in witnesses
                              if (edge.label is None or witness.label == edge.label)
                              and edge.matches(witness)}
            join_candidate_sets.append(candidates)

        if join_candidate_sets:
            candidates = set.intersection(*join_candidate_sets)
            return sorted(candidates)

        if self.candidate_index is not None:
            return sorted(self.candidate_index.candidates(pattern, variable))
        return sorted(naive_candidates(self.graph, pattern, variable))

    def _edges_to_bound_satisfied(self, pattern: Pattern, variable: str, node_id: str,
                                  assignment: dict[str, str]) -> bool:
        """Every pattern edge between ``variable`` and bound variables must be witnessed."""
        for edge in pattern.edges_touching(variable):
            other = edge.target if edge.source == variable else edge.source
            if other == variable:
                # self-loop pattern edge
                witnesses = self.graph.edges_between(node_id, node_id, edge.label)
                if not any(edge.matches(candidate) for candidate in witnesses):
                    return False
                continue
            if other not in assignment:
                continue
            if edge.source == variable:
                source_id, target_id = node_id, assignment[other]
            else:
                source_id, target_id = assignment[other], node_id
            witnesses = self.graph.edges_between(source_id, target_id, edge.label)
            if not any(edge.matches(candidate) for candidate in witnesses):
                return False
        return True

    def _node_comparisons_satisfiable(self, pattern: Pattern,
                                      assignment: dict[str, str]) -> bool:
        """Early-prune on comparisons whose variables are all bound node variables."""
        if not pattern.comparisons:
            return True
        edge_variables = set(pattern.edge_variables)
        for comparison in pattern.comparisons:
            variables = comparison.variables()
            if variables & edge_variables:
                continue  # involves an edge variable, checked after edge binding
            if not variables.issubset(assignment.keys()):
                continue  # not fully bound yet

            def lookup(variable: str) -> Mapping[str, object]:
                node_id = assignment.get(variable)
                if node_id is not None and self.graph.has_node(node_id):
                    return self.graph.node(node_id).properties
                return {}

            if not comparison.evaluate(lookup):
                return False
        return True

    def _bind_edge_variables(self, pattern: Pattern,
                             assignment: dict[str, str]) -> Iterator[Match]:
        """Enumerate bindings of edge variables to distinct witnessing edges,
        evaluate the full comparison set, and yield one match per valid binding."""
        edge_constraints: list[PatternEdge] = [edge for edge in pattern.edges
                                               if edge.variable is not None]
        if not edge_constraints:
            match = Match(pattern=pattern, node_bindings=dict(assignment))
            if match.satisfies_comparisons(self.graph):
                yield match
            return

        def witnesses_for(edge: PatternEdge) -> list[str]:
            found = self.graph.edges_between(assignment[edge.source],
                                             assignment[edge.target], edge.label)
            return [candidate.id for candidate in found if edge.matches(candidate)]

        def backtrack_edges(index: int, bindings: dict[str, str],
                            used_edges: set[str]) -> Iterator[dict[str, str]]:
            if index == len(edge_constraints):
                yield dict(bindings)
                return
            edge = edge_constraints[index]
            for edge_id in witnesses_for(edge):
                if edge_id in used_edges:
                    continue
                bindings[edge.variable] = edge_id  # type: ignore[index]
                used_edges.add(edge_id)
                yield from backtrack_edges(index + 1, bindings, used_edges)
                del bindings[edge.variable]  # type: ignore[arg-type]
                used_edges.discard(edge_id)

        for edge_bindings in backtrack_edges(0, {}, set()):
            match = Match(pattern=pattern, node_bindings=dict(assignment),
                          edge_bindings=edge_bindings)
            if match.satisfies_comparisons(self.graph):
                yield match
