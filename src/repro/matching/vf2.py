"""Backtracking subgraph-isomorphism search (VF2-style).

The matcher binds pattern variables to data nodes one at a time following a
connected search order (see :mod:`repro.matching.decomposition`), deriving
each variable's candidates from the neighbourhood of already-bound nodes
whenever the pattern connects them — the join-at-a-time strategy that keeps
the search local.  Injectivity, labels, unary predicates, and cross-variable
comparisons are enforced during the search; edge variables are bound in a
final phase that requires distinct data edges for distinct edge variables
(needed for duplicate-parallel-edge redundancy patterns).

Hot-path design (this is the inner loop of every repair run):

* per-pattern search state — the variable order, the edges-touching map, and
  the node-only comparison list — is compiled once per matcher instance and
  cached, so seeded searches repeated thousands of times during incremental
  maintenance pay none of it again;
* join candidates are derived by iterating the *smallest* adjacency list of
  the bound neighbours and letting the constraint check filter the rest,
  instead of materialising and intersecting full witness sets;
* candidate order comes from the graph's insertion-ordered adjacency (a
  deterministic tie-break established when the edge was created), so no
  per-backtrack-step ``sorted()`` is needed;
* constant equality predicates are **pushed down into the candidate index**:
  the compiled profile records each variable's pushdown spec
  (:func:`~repro.matching.index.variable_pushdowns` — unary ``EQ``
  predicates, literal ``EQ`` comparisons, and cross-variable ``EQ``
  comparisons whose other side is already bound), and candidate derivation
  intersects the matching ``(label, key, value)`` buckets with the adjacency
  or label pool, so the search never *visits* a node that fails a constant
  predicate (``nodes_tried`` counts post-pushdown candidates only).

Range and membership predicates (``lt/le/gt/ge``, ``IN``) push down the same
way through the index's sorted value buckets, including cross-variable range
comparisons that become constant probes once one side binds.

Three knobs matter for the experiments:

* ``candidate_index`` — with an index, root candidates come from label
  buckets with signature pruning; without it, from a full graph scan
  (ablation E5 / figure E7).
* ``use_decomposition`` — with decomposition, the search order starts at the
  most selective pivot; without it, declaration order is used.
* ``use_cost_planner`` — with the planner (and an index), the static
  decomposition order is replaced per (pattern, seeded set) by a greedy
  connected order driven by live bucket cardinalities, re-planned when the
  statistics drift (see ``_planned_order``).  Matches are identical either
  way; only the search order — and therefore ``nodes_tried`` — changes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.exceptions import MatchingError, MatchTimeout
from repro.graph.property_graph import PropertyGraph
from repro.matching.decomposition import build_search_plan, plan_connected_order
from repro.matching.index import (
    CandidateIndex,
    PushdownSpec,
    naive_candidates,
    pattern_requirements,
)
from repro.matching.pattern import Match, Pattern, PatternEdge


# Sentinel returned by ``_pushdown_buckets`` when an applicable constant
# equality is unsatisfiable (empty bucket / missing compared property):
# the caller prunes the whole branch instead of deriving candidates.
_DEAD_BRANCH = object()

# Replan when some variable's live estimate has drifted past this ratio
# against the estimate its plan was built under (checked only when the
# index version moved, so unchanged graphs never re-estimate).
_REPLAN_DRIFT = 2.0


def _estimates_drifted(baseline: dict, current: dict) -> bool:
    for variable, previous in baseline.items():
        fresh = current.get(variable, previous)
        low, high = (previous, fresh) if previous <= fresh else (fresh, previous)
        # +1 smooths zero-sized buckets (0 -> 1 is not a regime change)
        if high + 1 > _REPLAN_DRIFT * (low + 1):
            return True
    return False


@dataclass
class MatchingStats:
    """Counters describing one matching run (used by benchmarks and tests)."""

    nodes_tried: int = 0
    backtracks: int = 0
    matches_found: int = 0
    # incremental-maintenance passes driven through this engine (bumped by
    # IncrementalMatcher.apply_delta): the counter the batched-repair benchmark
    # asserts on — batching N independent repairs must need fewer passes than
    # N one-at-a-time repairs
    maintenance_passes: int = 0
    # candidate-index prune counters: how many candidates the label buckets
    # offered at root enumerations, how many survived in the value buckets
    # actually scanned instead, and how many candidates the index returned
    # after signature + unary-predicate filtering — together they show where
    # the pushdown layers cut the search space
    label_bucket_candidates: int = 0
    value_bucket_candidates: int = 0
    # candidates offered by range/membership probes (the sorted-bucket layer)
    range_bucket_candidates: int = 0
    predicate_survivors: int = 0
    # cost-planner observability: plans built, drift-triggered replans, the
    # latest chosen order per pattern, the estimates each order was chosen
    # under, and the actual candidates derived per variable while planned
    planner_plans: int = 0
    planner_replans: int = 0
    planner_orders: dict = field(default_factory=dict)
    planner_estimated: dict = field(default_factory=dict)
    planner_actual: dict = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def merge(self, other: "MatchingStats") -> None:
        self.nodes_tried += other.nodes_tried
        self.backtracks += other.backtracks
        self.matches_found += other.matches_found
        self.maintenance_passes += other.maintenance_passes
        self.label_bucket_candidates += other.label_bucket_candidates
        self.value_bucket_candidates += other.value_bucket_candidates
        self.range_bucket_candidates += other.range_bucket_candidates
        self.predicate_survivors += other.predicate_survivors
        self.planner_plans += other.planner_plans
        self.planner_replans += other.planner_replans
        self.planner_orders.update(other.planner_orders)
        self.planner_estimated.update(other.planner_estimated)
        for pattern_name, per_variable in other.planner_actual.items():
            mine = self.planner_actual.setdefault(pattern_name, {})
            for variable, count in per_variable.items():
                mine[variable] = mine.get(variable, 0) + count
        self.elapsed_seconds += other.elapsed_seconds

    def as_dict(self) -> dict:
        return {
            "nodes_tried": self.nodes_tried,
            "backtracks": self.backtracks,
            "matches_found": self.matches_found,
            "maintenance_passes": self.maintenance_passes,
            "label_bucket_candidates": self.label_bucket_candidates,
            "value_bucket_candidates": self.value_bucket_candidates,
            "range_bucket_candidates": self.range_bucket_candidates,
            "predicate_survivors": self.predicate_survivors,
            "planner_plans": self.planner_plans,
            "planner_replans": self.planner_replans,
            "planner_orders": {name: list(order)
                               for name, order in self.planner_orders.items()},
            "planner_estimated": {name: dict(per_variable)
                                  for name, per_variable in self.planner_estimated.items()},
            "planner_actual": {name: dict(per_variable)
                               for name, per_variable in self.planner_actual.items()},
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass
class _PlanState:
    """One cached cost-based plan: the order chosen for a given seeded
    variable set, the per-variable estimates it was chosen under (the drift
    baseline), and the index version it was last validated against."""

    order: list[str]
    estimates: dict[str, int]
    checked_version: int


@dataclass
class _PatternProfile:
    """Per-pattern search state compiled once and reused across searches.

    Keeping a strong reference to the pattern means the ``id(pattern)`` cache
    key can never be recycled by the garbage collector while the profile is
    alive.
    """

    pattern: Pattern
    base_order: list[str]
    touching: dict[str, tuple[PatternEdge, ...]]
    node_variables: dict[str, object]
    # node-only comparisons (edge-variable comparisons are checked after edge
    # binding) dispatched by variable: a comparison is listed under each of its
    # variables and evaluated exactly once — when its last variable binds.
    comparisons_by_variable: dict[str, tuple[tuple[object, frozenset], ...]]
    edge_constraints: tuple[PatternEdge, ...]
    # constant-equality pushdown specs per variable (empty without an index)
    # and the cached pattern-edge requirements for bucket-derived dominance
    # pruning — both compiled once per pattern
    pushdowns: dict[str, PushdownSpec]
    requirements: dict[str, tuple]
    # cost-planner plan cache: frozenset of seeded variables -> _PlanState
    plans: dict = field(default_factory=dict)


@dataclass
class VF2Matcher:
    """Backtracking matcher over one :class:`PropertyGraph`.

    Parameters
    ----------
    graph:
        The data graph.
    candidate_index:
        Optional :class:`CandidateIndex`; when absent, root candidates are
        computed by scanning the graph.
    use_decomposition:
        Use pivot selection + connected ordering (True) or declaration order
        (False).
    time_budget:
        Optional wall-clock budget in seconds; exceeding it raises
        :class:`MatchTimeout`.

    A matcher instance is cheap to keep around and is *designed* to be reused
    across many searches of the same patterns: the per-pattern search plan is
    compiled on first use and cached, and ``stats`` accumulates across calls.
    """

    graph: PropertyGraph
    candidate_index: CandidateIndex | None = None
    use_decomposition: bool = True
    use_cost_planner: bool = True
    time_budget: float | None = None
    stats: MatchingStats = field(default_factory=MatchingStats)
    _profiles: dict[int, _PatternProfile] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def find_matches(self, pattern: Pattern, seed: Mapping[str, str] | None = None,
                     limit: int | None = None) -> list[Match]:
        """All matches of ``pattern`` (optionally at most ``limit``), optionally
        pre-binding the variables in ``seed`` (variable -> node id)."""
        return list(self.iter_matches(pattern, seed=seed, limit=limit))

    def find_one(self, pattern: Pattern, seed: Mapping[str, str] | None = None) -> Match | None:
        """The first match found, or ``None``."""
        for match in self.iter_matches(pattern, seed=seed, limit=1):
            return match
        return None

    def exists(self, pattern: Pattern, seed: Mapping[str, str] | None = None) -> bool:
        """Whether at least one match exists (short-circuits)."""
        return self.find_one(pattern, seed=seed) is not None

    def count(self, pattern: Pattern, seed: Mapping[str, str] | None = None,
              limit: int | None = None) -> int:
        """Number of matches (up to ``limit`` if given)."""
        return sum(1 for _ in self.iter_matches(pattern, seed=seed, limit=limit))

    def iter_matches(self, pattern: Pattern, seed: Mapping[str, str] | None = None,
                     limit: int | None = None) -> Iterator[Match]:
        """Lazily yield matches."""
        started = time.perf_counter()
        deadline = started + self.time_budget if self.time_budget is not None else None

        profile = self._profile(pattern)
        order = self._variable_order(profile, seed)
        assignment: dict[str, str] = {}
        used_nodes: set[str] = set()

        if seed:
            for variable, node_id in seed.items():
                if not pattern.has_variable(variable):
                    raise MatchingError(f"seed variable {variable!r} is not in the pattern")
                if not self.graph.has_node(node_id):
                    return
                if node_id in used_nodes:
                    return
                if not pattern.node_variable(variable).matches(self.graph.node(node_id)):
                    return
                assignment[variable] = node_id
                used_nodes.add(node_id)
            # Seeded variables must also satisfy pattern edges among themselves.
            if not self._seed_edges_consistent(pattern, assignment):
                return

        emitted = 0
        for match in self._backtrack(profile, order, 0, assignment, used_nodes, deadline):
            yield match
            emitted += 1
            self.stats.matches_found += 1
            if limit is not None and emitted >= limit:
                break
        self.stats.elapsed_seconds += time.perf_counter() - started

    # ------------------------------------------------------------------
    # per-pattern compiled state
    # ------------------------------------------------------------------

    def _profile(self, pattern: Pattern) -> _PatternProfile:
        cached = self._profiles.get(id(pattern))
        if cached is not None and cached.pattern is pattern:
            return cached

        touching: dict[str, tuple[PatternEdge, ...]] = {
            variable: tuple(pattern.edges_touching(variable))
            for variable in pattern.variables
        }
        node_variables = {node.variable: node for node in pattern.nodes}
        edge_variables = set(pattern.edge_variables)
        by_variable: dict[str, list[tuple[object, frozenset]]] = {}
        for comparison in pattern.comparisons:
            variables = frozenset(comparison.variables())
            if variables & edge_variables:
                continue
            for variable in variables:
                by_variable.setdefault(variable, []).append((comparison, variables))
        pushdowns: dict[str, PushdownSpec] = {}
        requirements: dict[str, tuple] = {}
        if self.candidate_index is not None:
            pushdowns = self.candidate_index.pushdowns(pattern)
            for variable in pushdowns:
                requirements[variable] = pattern_requirements(pattern, variable)
        profile = _PatternProfile(
            pattern=pattern,
            base_order=self._base_order(pattern),
            touching=touching,
            node_variables=node_variables,
            comparisons_by_variable={variable: tuple(items)
                                     for variable, items in by_variable.items()},
            edge_constraints=tuple(edge for edge in pattern.edges
                                   if edge.variable is not None),
            pushdowns=pushdowns,
            requirements=requirements,
        )
        self._profiles[id(pattern)] = profile
        return profile

    def _base_order(self, pattern: Pattern) -> list[str]:
        if not self.use_decomposition:
            return list(pattern.variables)
        selectivity = None
        if self.candidate_index is not None:
            def selectivity(p: Pattern, variable: str) -> float:  # noqa: ANN001
                label_count = self.candidate_index.candidate_count_estimate(p, variable)
                # fewer candidates and more constraints first
                return label_count - 5.0 * len(p.edges_touching(variable))
        return build_search_plan(pattern, selectivity=selectivity).order

    def _variable_order(self, profile: _PatternProfile, seed: Mapping[str, str] | None) -> list[str]:
        if (self.use_cost_planner and self.use_decomposition
                and self.candidate_index is not None):
            return self._planned_order(profile, seed)
        order = profile.base_order
        if not seed:
            return order
        seeded = [variable for variable in order if variable in seed]
        rest = [variable for variable in order if variable not in seed]
        return seeded + rest

    # ------------------------------------------------------------------
    # cost-based planning
    # ------------------------------------------------------------------

    def _planned_order(self, profile: _PatternProfile, seed: Mapping[str, str] | None) -> list[str]:
        """The cost-based variable order for this (pattern, seeded set).

        Plans are cached per seeded-variable set and validated against the
        candidate index's version counter: while the graph is unchanged the
        cached order is returned with two dict lookups.  When the version
        moved, the plan's variables are re-estimated (cheap bucket-size
        lookups); only when some estimate drifted past ``_REPLAN_DRIFT`` is
        the greedy order rebuilt and ``planner_replans`` bumped.
        """
        index = self.candidate_index
        seeded = frozenset(seed) if seed else frozenset()
        state = profile.plans.get(seeded)
        version = index.version
        if state is not None:
            if state.checked_version == version:
                return state.order
            current = self._order_estimates(profile, state.order, len(seeded))
            if not _estimates_drifted(state.estimates, current):
                state.checked_version = version
                return state.order
        pattern = profile.pattern
        order, estimates = plan_connected_order(
            pattern, seeded,
            lambda variable, bound: index.estimated_candidates(pattern, variable, bound))
        if state is None:
            self.stats.planner_plans += 1
        else:
            self.stats.planner_replans += 1
        profile.plans[seeded] = _PlanState(order, estimates, version)
        self.stats.planner_orders[pattern.name] = list(order)
        self.stats.planner_estimated.setdefault(pattern.name, {}).update(estimates)
        return order

    def _order_estimates(self, profile: _PatternProfile, order: list[str],
                         seeded_count: int) -> dict[str, int]:
        """Re-estimate a stored order's variables under the same prefix-bound
        contexts the plan was built with."""
        index = self.candidate_index
        pattern = profile.pattern
        bound = set(order[:seeded_count])
        estimates: dict[str, int] = {}
        for variable in order[seeded_count:]:
            estimates[variable] = index.estimated_candidates(pattern, variable, bound)
            bound.add(variable)
        return estimates

    # ------------------------------------------------------------------
    # search internals
    # ------------------------------------------------------------------

    def _seed_edges_consistent(self, pattern: Pattern, assignment: dict[str, str]) -> bool:
        for edge in pattern.edges:
            if edge.source in assignment and edge.target in assignment:
                if not self._has_witness(assignment[edge.source],
                                         assignment[edge.target], edge):
                    return False
        return True

    def _backtrack(self, profile: _PatternProfile, order: list[str], depth: int,
                   assignment: dict[str, str], used_nodes: set[str],
                   deadline: float | None) -> Iterator[Match]:
        """Depth-first search over the variable order, as an explicit-stack
        loop.

        One generator frame drives the whole search (the recursive
        formulation stacked one generator frame per bound variable, and
        every yielded match bubbled through all of them — measured at ~40%
        of matcher time at E2 scale 800).  Each stack entry is one
        variable's in-progress candidate iteration:
        ``[depth, variable, candidate_iterator, derived_from, bound_node]``;
        advancing a frame binds the next viable candidate and pushes the
        next variable's frame, exhausting it unbinds and pops.  Candidate
        derivation, constraint checks, counter semantics, and match order
        are identical to the recursive version (pinned by the matcher and
        property-based suites).
        """
        total = len(order)
        stats = self.stats
        graph_node = self.graph.node
        node_variables = profile.node_variables
        time_budget = deadline is not None
        if (self.use_cost_planner and self.use_decomposition
                and self.candidate_index is not None):
            planner_actual = stats.planner_actual.setdefault(
                profile.pattern.name, {})
        else:
            planner_actual = None

        def open_frame(depth: int) -> list | None:
            """A fresh frame for the next unbound variable at/after ``depth``
            — or ``None`` when every variable is bound (a complete node
            assignment)."""
            # Skip over already-seeded variables at the front of the order.
            while depth < total and order[depth] in assignment:
                depth += 1
            if time_budget and time.perf_counter() > deadline:
                raise MatchTimeout(self.time_budget or 0.0)
            if depth == total:
                return None
            variable = order[depth]
            candidates, derived_from = self._candidates_for(profile, variable,
                                                            assignment)
            if planner_actual is not None:
                planner_actual[variable] = (planner_actual.get(variable, 0)
                                            + len(candidates))
            return [depth, variable, iter(candidates), derived_from, None]

        frame = open_frame(depth)
        if frame is None:
            yield from self._bind_edge_variables(profile, assignment)
            return
        stack: list[list] = [frame]
        while stack:
            frame = stack[-1]
            _, variable, candidates, derived_from, bound = frame
            if bound is not None:
                # back from the subtree under the previous candidate
                del assignment[variable]
                used_nodes.discard(bound)
                frame[4] = None
            pattern_node = node_variables[variable]
            advanced = False
            for node_id in candidates:
                if node_id in used_nodes:
                    continue
                stats.nodes_tried += 1
                if not pattern_node.matches(graph_node(node_id)):
                    continue
                if not self._edges_to_bound_satisfied(profile, variable, node_id,
                                                      assignment,
                                                      skip=derived_from):
                    continue
                assignment[variable] = node_id
                used_nodes.add(node_id)
                if not self._node_comparisons_satisfiable(profile, variable,
                                                          assignment):
                    stats.backtracks += 1
                    del assignment[variable]
                    used_nodes.discard(node_id)
                    continue
                frame[4] = node_id
                child = open_frame(frame[0] + 1)
                if child is None:
                    # complete node assignment: emit, then resume this frame
                    yield from self._bind_edge_variables(profile, assignment)
                else:
                    stack.append(child)
                advanced = True
                break
            if not advanced:
                stack.pop()

    def _candidates_for(self, profile: _PatternProfile, variable: str,
                        assignment: dict[str, str]):
        """Candidates for ``variable`` plus the join edge they were derived from.

        If the variable is connected by pattern edges to bound variables, the
        smallest relevant adjacency list is iterated and the remaining join
        constraints are enforced by :meth:`_edges_to_bound_satisfied` — no
        intermediate witness sets are materialised.  Otherwise fall back to
        the index / full scan (sorted once for a deterministic root order).

        Constant-equality pushdown (see the module docstring) intersects the
        variable's value buckets with whichever pool is chosen: buckets act as
        membership filters over adjacency-derived candidates, and when the
        smallest bucket undercuts the smallest adjacency list it *becomes*
        the candidate source instead.  Buckets are complete for the equality,
        so no true candidate is ever dropped; the residual predicate /
        comparison checks still run downstream.
        """
        graph = self.graph
        best_edge: PatternEdge | None = None
        best_ids = None
        best_size = -1
        best_inbound = False
        for edge in profile.touching[variable]:
            other = edge.target if edge.source == variable else edge.source
            if other == variable or other not in assignment:
                continue
            bound_id = assignment[other]
            if not graph.has_node(bound_id):
                return (), None
            # A labelled pattern edge probes the per-label adjacency bucket,
            # so only matching-label edges are ever iterated below.
            if edge.source == variable:
                # variable -[label]-> bound : candidates are sources of in-edges
                edge_ids = (graph.in_edge_ids(bound_id) if edge.label is None
                            else graph.in_edge_ids_with_label(bound_id, edge.label))
                inbound = True
            else:
                edge_ids = (graph.out_edge_ids(bound_id) if edge.label is None
                            else graph.out_edge_ids_with_label(bound_id, edge.label))
                inbound = False
            size = len(edge_ids)
            if best_edge is None or size < best_size:
                best_edge, best_ids, best_size, best_inbound = edge, edge_ids, size, inbound
                if size == 0:
                    break

        filters = self._pushdown_buckets(profile, variable, assignment)
        if filters is _DEAD_BRANCH:
            return (), None
        filter_pool = min(filters, key=len) if filters else None

        if best_edge is not None and (filter_pool is None
                                      or best_size <= len(filter_pool)):
            edge_store = graph.edge_store
            predicates = best_edge.predicates
            seen: set[str] = set()
            candidates: list[str] = []
            for edge_id in best_ids:
                witness = edge_store[edge_id]
                if predicates and not best_edge.matches(witness):
                    continue
                candidate = witness.source if best_inbound else witness.target
                if candidate in seen:
                    continue
                seen.add(candidate)
                if filters and not all(candidate in bucket for bucket in filters):
                    continue
                candidates.append(candidate)
            return candidates, best_edge

        if filter_pool is not None:
            # The value bucket is the candidate source: intersect with the
            # other buckets, keep signature-dominance pruning, and sort for a
            # deterministic order.  All join edges (if any) are re-checked by
            # _edges_to_bound_satisfied, hence derived_from=None.
            index = self.candidate_index
            self.stats.value_bucket_candidates += len(filter_pool)
            required = profile.requirements[variable]
            dominates = index.signature_dominates
            others = [bucket for bucket in filters if bucket is not filter_pool]
            candidates = sorted(
                candidate for candidate in filter_pool
                if dominates(candidate, *required)
                and all(candidate in bucket for bucket in others))
            return candidates, None

        pattern = profile.pattern
        if self.candidate_index is not None:
            return sorted(self.candidate_index.candidates(
                pattern, variable, stats=self.stats)), None
        return sorted(naive_candidates(graph, pattern, variable)), None

    def _pushdown_buckets(self, profile: _PatternProfile, variable: str,
                          assignment: dict[str, str]):
        """The value buckets applicable to ``variable`` right now.

        Returns a list of read-only node-id sets (possibly empty),
        or the ``_DEAD_BRANCH`` sentinel when some applicable equality can
        never be satisfied (an empty bucket, or a bound neighbour missing the
        compared property) — the caller prunes the whole branch.
        """
        spec = profile.pushdowns.get(variable)
        if spec is None:
            return ()
        index = self.candidate_index
        label = profile.node_variables[variable].label
        graph = self.graph
        buckets = []
        for key, value in spec.unary:
            bucket = index.value_bucket(label, key, value)
            if bucket is not None:
                if not bucket:
                    return _DEAD_BRANCH
                buckets.append(bucket)
        for key, value in spec.literal:
            bucket = index.value_bucket(label, key, value)
            if bucket is not None:
                if not bucket:
                    return _DEAD_BRANCH
                buckets.append(bucket)
        for own_key, other_variable, other_key in spec.dynamic:
            other_id = assignment.get(other_variable)
            if other_id is None or not graph.has_node(other_id):
                continue
            other_properties = graph.node(other_id).properties
            if other_key not in other_properties:
                # an EQ comparison against a missing property is always False
                return _DEAD_BRANCH
            bucket = index.value_bucket(label, own_key,
                                        other_properties[other_key])
            if bucket is not None:
                if not bucket:
                    return _DEAD_BRANCH
                buckets.append(bucket)
        stats = self.stats
        for key, values in spec.members:
            bucket = index.membership_bucket(label, key, values)
            if bucket is not None:
                if not bucket:
                    return _DEAD_BRANCH
                stats.range_bucket_candidates += len(bucket)
                buckets.append(bucket)
        for key, op, value in spec.ranges:
            bucket = index.range_bucket(label, key, op, value)
            if bucket is not None:
                if not bucket:
                    return _DEAD_BRANCH
                stats.range_bucket_candidates += len(bucket)
                buckets.append(bucket)
        for own_key, op, other_variable, other_key in spec.dynamic_ranges:
            other_id = assignment.get(other_variable)
            if other_id is None or not graph.has_node(other_id):
                continue
            other_properties = graph.node(other_id).properties
            if other_key not in other_properties:
                # a range comparison against a missing property is always False
                return _DEAD_BRANCH
            bucket = index.range_bucket(label, own_key, op,
                                        other_properties[other_key])
            # None = unanswerable (unorderable bound value, e.g. a list or
            # NaN) — leave it to the residual comparison check
            if bucket is not None:
                if not bucket:
                    return _DEAD_BRANCH
                stats.range_bucket_candidates += len(bucket)
                buckets.append(bucket)
        return buckets

    def _edges_to_bound_satisfied(self, profile: _PatternProfile, variable: str,
                                  node_id: str, assignment: dict[str, str],
                                  skip: PatternEdge | None = None) -> bool:
        """Every pattern edge between ``variable`` and bound variables must be
        witnessed.  ``skip`` is the join edge candidates were derived from —
        it is already satisfied by construction."""
        for edge in profile.touching[variable]:
            if edge is skip:
                continue
            other = edge.target if edge.source == variable else edge.source
            if other == variable:
                # self-loop pattern edge
                if not self._has_witness(node_id, node_id, edge):
                    return False
                continue
            if other not in assignment:
                continue
            if edge.source == variable:
                source_id, target_id = node_id, assignment[other]
            else:
                source_id, target_id = assignment[other], node_id
            if not self._has_witness(source_id, target_id, edge):
                return False
        return True

    def _has_witness(self, source_id: str, target_id: str, edge: PatternEdge) -> bool:
        """Whether some data edge ``source -> target`` satisfies ``edge``,
        probing the smaller adjacency side and stopping at the first hit.
        Labelled pattern edges probe the per-label buckets, so only
        matching-label edges are iterated."""
        graph = self.graph
        label = edge.label
        if label is None:
            out_ids = graph.out_edge_ids(source_id)
            in_ids = graph.in_edge_ids(target_id)
        else:
            out_ids = graph.out_edge_ids_with_label(source_id, label)
            in_ids = graph.in_edge_ids_with_label(target_id, label)
        edge_store = graph.edge_store
        predicates = edge.predicates
        if len(out_ids) <= len(in_ids):
            for edge_id in out_ids:
                witness = edge_store[edge_id]
                if witness.target != target_id:
                    continue
                if not predicates or edge.matches(witness):
                    return True
        else:
            for edge_id in in_ids:
                witness = edge_store[edge_id]
                if witness.source != source_id:
                    continue
                if not predicates or edge.matches(witness):
                    return True
        return False

    def _node_comparisons_satisfiable(self, profile: _PatternProfile, variable: str,
                                      assignment: dict[str, str]) -> bool:
        """Early-prune on node-only comparisons that became fully bound when
        ``variable`` was assigned (each comparison is evaluated exactly once,
        at the depth its last variable binds)."""
        relevant = profile.comparisons_by_variable.get(variable)
        if not relevant:
            return True
        graph = self.graph

        def lookup(name: str) -> Mapping[str, object]:
            node_id = assignment.get(name)
            if node_id is not None and graph.has_node(node_id):
                return graph.node(node_id).properties
            return {}

        for comparison, variables in relevant:
            if not variables.issubset(assignment.keys()):
                continue  # not fully bound yet; checked when the last variable binds
            if not comparison.evaluate(lookup):
                return False
        return True

    def _bind_edge_variables(self, profile: _PatternProfile,
                             assignment: dict[str, str]) -> Iterator[Match]:
        """Enumerate bindings of edge variables to distinct witnessing edges,
        evaluate the full comparison set, and yield one match per valid binding."""
        pattern = profile.pattern
        edge_constraints = profile.edge_constraints
        if not edge_constraints:
            match = Match(pattern=pattern, node_bindings=dict(assignment))
            if match.satisfies_comparisons(self.graph):
                yield match
            return

        def witnesses_for(edge: PatternEdge) -> list[str]:
            found = self.graph.edges_between(assignment[edge.source],
                                             assignment[edge.target], edge.label)
            return [candidate.id for candidate in found if edge.matches(candidate)]

        def backtrack_edges(index: int, bindings: dict[str, str],
                            used_edges: set[str]) -> Iterator[dict[str, str]]:
            if index == len(edge_constraints):
                yield dict(bindings)
                return
            edge = edge_constraints[index]
            for edge_id in witnesses_for(edge):
                if edge_id in used_edges:
                    continue
                bindings[edge.variable] = edge_id  # type: ignore[index]
                used_edges.add(edge_id)
                yield from backtrack_edges(index + 1, bindings, used_edges)
                del bindings[edge.variable]  # type: ignore[arg-type]
                used_edges.discard(edge_id)

        for edge_bindings in backtrack_edges(0, {}, set()):
            match = Match(pattern=pattern, node_bindings=dict(assignment),
                          edge_bindings=edge_bindings)
            if match.satisfies_comparisons(self.graph):
                yield match
