"""High-level matching facade used by the repair engine and the experiments.

:class:`Matcher` bundles the configuration switches the paper's evaluation
ablates (candidate index on/off, decomposition on/off) behind a single object
so that callers — the detectors, the repairers, the benchmarks — never touch
the individual machinery.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.telemetry import TELEMETRY as _TELEMETRY
from repro.telemetry import observe as _observe
from repro.graph.property_graph import PropertyGraph
from repro.matching.index import CandidateIndex
from repro.matching.pattern import Match, Pattern
from repro.matching.vf2 import MatchingStats, VF2Matcher


@dataclass
class MatcherConfig:
    """Configuration of the matching layer.

    ``use_candidate_index`` and ``use_decomposition`` are the two matching
    optimisations ablated in experiment E5; ``use_cost_planner`` replaces the
    static decomposition order with a statistics-driven plan (it needs both
    of the others to act); ``match_limit`` caps enumeration per pattern
    (None = unbounded); ``time_budget`` is an optional per-call wall-clock
    budget in seconds.
    """

    use_candidate_index: bool = True
    use_decomposition: bool = True
    use_cost_planner: bool = True
    match_limit: int | None = None
    time_budget: float | None = None

    @classmethod
    def naive(cls) -> "MatcherConfig":
        """Everything off — the unoptimised configuration."""
        return cls(use_candidate_index=False, use_decomposition=False,
                   use_cost_planner=False)

    @classmethod
    def optimized(cls) -> "MatcherConfig":
        """Everything on — the paper's efficient configuration."""
        return cls(use_candidate_index=True, use_decomposition=True,
                   use_cost_planner=True)


@dataclass
class Matcher:
    """Pattern matching against one graph with a fixed configuration."""

    graph: PropertyGraph
    config: MatcherConfig = field(default_factory=MatcherConfig)
    maintain_index: bool = True
    stats: MatchingStats = field(default_factory=MatchingStats)
    _index: CandidateIndex | None = field(default=None, repr=False)
    _shared_engine: VF2Matcher | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.config.use_candidate_index:
            self._index = CandidateIndex(self.graph)
            if self.maintain_index:
                self._index.attach()
        engine = VF2Matcher(graph=self.graph, candidate_index=self._index,
                            use_decomposition=self.config.use_decomposition,
                            use_cost_planner=self.config.use_cost_planner,
                            time_budget=self.config.time_budget)
        engine.stats = self.stats
        self._shared_engine = engine

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def candidate_index(self) -> CandidateIndex | None:
        return self._index

    def close(self) -> None:
        """Detach the candidate index from the graph's change feed."""
        if self._index is not None:
            self._index.detach()

    def __enter__(self) -> "Matcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _engine(self) -> VF2Matcher:
        # One engine for the matcher's lifetime: compiled per-pattern search
        # plans are reused across queries and stats accumulate in one place.
        return self._shared_engine

    def find_matches(self, pattern: Pattern, seed: Mapping[str, str] | None = None,
                     limit: int | None = None) -> list[Match]:
        """All matches of ``pattern`` (bounded by the config's match limit)."""
        effective_limit = limit if limit is not None else self.config.match_limit
        if not _TELEMETRY.enabled:
            return self._engine().find_matches(pattern, seed=seed,
                                               limit=effective_limit)
        started = time.perf_counter()
        try:
            return self._engine().find_matches(pattern, seed=seed,
                                               limit=effective_limit)
        finally:
            _observe("repro_match_seconds", time.perf_counter() - started,
                     phase="find-matches")

    def find_one(self, pattern: Pattern, seed: Mapping[str, str] | None = None) -> Match | None:
        if not _TELEMETRY.enabled:
            return self._engine().find_one(pattern, seed=seed)
        started = time.perf_counter()
        try:
            return self._engine().find_one(pattern, seed=seed)
        finally:
            _observe("repro_match_seconds", time.perf_counter() - started,
                     phase="find-one")

    def exists(self, pattern: Pattern, seed: Mapping[str, str] | None = None) -> bool:
        if not _TELEMETRY.enabled:
            return self._engine().exists(pattern, seed=seed)
        started = time.perf_counter()
        try:
            return self._engine().exists(pattern, seed=seed)
        finally:
            _observe("repro_match_seconds", time.perf_counter() - started,
                     phase="exists")

    def count(self, pattern: Pattern, limit: int | None = None) -> int:
        if not _TELEMETRY.enabled:
            return self._engine().count(pattern, limit=limit)
        started = time.perf_counter()
        try:
            return self._engine().count(pattern, limit=limit)
        finally:
            _observe("repro_match_seconds", time.perf_counter() - started,
                     phase="count")

    def exists_extension(self, pattern: Pattern, bindings: Mapping[str, str]) -> bool:
        """Whether ``pattern`` has a match consistent with ``bindings``.

        ``bindings`` may bind only a subset of the pattern's variables (the
        shared evidence variables of an incompleteness rule); the remaining
        variables are searched.  Bindings for variables that the pattern does
        not declare are ignored.
        """
        seed = {variable: node_id for variable, node_id in bindings.items()
                if pattern.has_variable(variable)}
        return self._engine().exists(pattern, seed=seed)
