"""Graph patterns: the left-hand sides of graph repairing rules.

A :class:`Pattern` is a small graph whose nodes are *variables*.  Each
variable optionally constrains the label of the data node it binds to and can
carry unary property predicates; pattern edges constrain the predicate label
(and optionally carry an edge variable so repairs can refer to the matched
edge).  Cross-variable :class:`~repro.matching.predicates.Comparison`
constraints relate properties of different variables.

Matching semantics are those of graph dependencies in the literature:
**injective homomorphism** — distinct variables bind distinct data nodes, and
every pattern edge must be witnessed by a data edge with the required label.
A :class:`Match` records the binding of node variables to node ids and edge
variables to edge ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.exceptions import InvalidPatternError
from repro.graph.property_graph import PropertyGraph
from repro.matching.predicates import Comparison, PropertyPredicate

ANY_LABEL = None


@dataclass(frozen=True)
class PatternNode:
    """A node variable of a pattern.

    ``label=None`` matches any node label.  ``predicates`` must all hold on
    the bound node's properties.
    """

    variable: str
    label: str | None = ANY_LABEL
    predicates: tuple[PropertyPredicate, ...] = ()

    def matches(self, node) -> bool:
        """Label + unary-predicate check against a data :class:`~repro.graph.elements.Node`."""
        if self.label is not None and node.label != self.label:
            return False
        if not self.predicates:
            return True
        return all(predicate.evaluate(node.properties) for predicate in self.predicates)

    def describe(self) -> str:
        label = self.label if self.label is not None else "*"
        preds = ", ".join(p.describe() for p in self.predicates)
        preds = f" [{preds}]" if preds else ""
        return f"({self.variable}:{label}{preds})"


@dataclass(frozen=True)
class PatternEdge:
    """A directed edge constraint between two node variables.

    ``variable`` (optional) names the matched data edge so that repair
    operations and comparisons can refer to it.  ``label=None`` matches any
    predicate.
    """

    source: str
    target: str
    label: str | None = ANY_LABEL
    variable: str | None = None
    predicates: tuple[PropertyPredicate, ...] = ()

    def matches(self, edge) -> bool:
        """Label + unary-predicate check against a data :class:`~repro.graph.elements.Edge`."""
        if self.label is not None and edge.label != self.label:
            return False
        if not self.predicates:
            return True
        return all(predicate.evaluate(edge.properties) for predicate in self.predicates)

    def describe(self) -> str:
        label = self.label if self.label is not None else "*"
        name = f"{self.variable}:" if self.variable else ""
        return f"({self.source})-[{name}{label}]->({self.target})"


class Pattern:
    """A connected graph pattern over node variables.

    Parameters
    ----------
    nodes:
        The node variables.
    edges:
        The edge constraints between variables.
    comparisons:
        Cross-variable property constraints.
    name:
        Optional human-readable name (used in reports).

    Raises
    ------
    InvalidPatternError
        If the pattern is empty, references undeclared variables, repeats a
        variable name, or is not connected (disconnected patterns make
        matching a cartesian product — the paper's rules are connected, and
        requiring connectivity keeps the matcher's cost model honest).
    """

    def __init__(self, nodes: Iterable[PatternNode], edges: Iterable[PatternEdge] = (),
                 comparisons: Iterable[Comparison] = (), name: str = "pattern") -> None:
        self.name = name
        self.nodes: tuple[PatternNode, ...] = tuple(nodes)
        self.edges: tuple[PatternEdge, ...] = tuple(edges)
        self.comparisons: tuple[Comparison, ...] = tuple(comparisons)
        self._nodes_by_variable: dict[str, PatternNode] = {}
        self._validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        if not self.nodes:
            raise InvalidPatternError("a pattern must have at least one node variable")
        for node in self.nodes:
            if node.variable in self._nodes_by_variable:
                raise InvalidPatternError(f"duplicate pattern variable {node.variable!r}")
            self._nodes_by_variable[node.variable] = node

        edge_variables: set[str] = set()
        for edge in self.edges:
            for endpoint in (edge.source, edge.target):
                if endpoint not in self._nodes_by_variable:
                    raise InvalidPatternError(
                        f"pattern edge references undeclared variable {endpoint!r}")
            if edge.variable is not None:
                if edge.variable in self._nodes_by_variable or edge.variable in edge_variables:
                    raise InvalidPatternError(
                        f"duplicate pattern variable {edge.variable!r}")
                edge_variables.add(edge.variable)

        for comparison in self.comparisons:
            for variable in comparison.variables():
                if (variable not in self._nodes_by_variable
                        and variable not in edge_variables):
                    raise InvalidPatternError(
                        f"comparison references undeclared variable {variable!r}")

        if len(self.nodes) > 1 and not self._is_connected():
            raise InvalidPatternError(
                f"pattern {self.name!r} is not connected; split it into separate rules")

    def _is_connected(self) -> bool:
        adjacency: dict[str, set[str]] = {node.variable: set() for node in self.nodes}
        for edge in self.edges:
            adjacency[edge.source].add(edge.target)
            adjacency[edge.target].add(edge.source)
        start = self.nodes[0].variable
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self.nodes)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def variables(self) -> list[str]:
        """Node variable names in declaration order."""
        return [node.variable for node in self.nodes]

    @property
    def edge_variables(self) -> list[str]:
        return [edge.variable for edge in self.edges if edge.variable is not None]

    def variable_positions(self) -> dict[str, int]:
        """Declaration index per node variable (cached) — the deterministic
        tie-break used by the cost planner's ordering."""
        positions = getattr(self, "_variable_positions", None)
        if positions is None:
            positions = {node.variable: index
                         for index, node in enumerate(self.nodes)}
            self._variable_positions = positions
        return positions

    def node_variable(self, variable: str) -> PatternNode:
        try:
            return self._nodes_by_variable[variable]
        except KeyError:
            raise InvalidPatternError(f"unknown pattern variable {variable!r}") from None

    def has_variable(self, variable: str) -> bool:
        return variable in self._nodes_by_variable or variable in self.edge_variables

    def edges_touching(self, variable: str) -> list[PatternEdge]:
        """Pattern edges incident to a node variable."""
        return [edge for edge in self.edges
                if edge.source == variable or edge.target == variable]

    def adjacent_variables(self, variable: str) -> set[str]:
        adjacent: set[str] = set()
        for edge in self.edges_touching(variable):
            adjacent.add(edge.source)
            adjacent.add(edge.target)
        adjacent.discard(variable)
        return adjacent

    def size(self) -> int:
        """Number of node variables plus edge constraints."""
        return len(self.nodes) + len(self.edges)

    def node_labels(self) -> set[str]:
        return {node.label for node in self.nodes if node.label is not None}

    def edge_labels(self) -> set[str]:
        return {edge.label for edge in self.edges if edge.label is not None}

    def describe(self) -> str:
        parts = [node.describe() for node in self.nodes]
        parts.extend(edge.describe() for edge in self.edges)
        parts.extend(comparison.describe() for comparison in self.comparisons)
        return f"Pattern {self.name!r}: " + ", ".join(parts)

    def __repr__(self) -> str:
        return (f"Pattern(name={self.name!r}, nodes={len(self.nodes)}, "
                f"edges={len(self.edges)}, comparisons={len(self.comparisons)})")

    # ------------------------------------------------------------------
    # verification of an assignment (used by the matcher and in tests)
    # ------------------------------------------------------------------

    def check_match(self, graph: PropertyGraph, assignment: Mapping[str, str]) -> bool:
        """True iff ``assignment`` (variable -> node id) is a complete, valid match.

        This is the semantic reference implementation: injectivity, label and
        predicate checks, existence of a witnessing edge per pattern edge, and
        all comparisons.  The matchers are tested against it.
        """
        node_ids = [assignment.get(variable) for variable in self.variables]
        if any(node_id is None for node_id in node_ids):
            return False
        if len(set(node_ids)) != len(node_ids):
            return False
        for variable in self.variables:
            node_id = assignment[variable]
            if not graph.has_node(node_id):
                return False
            if not self.node_variable(variable).matches(graph.node(node_id)):
                return False

        edge_bindings: dict[str, str] = {}
        for edge in self.edges:
            witnesses = [
                candidate for candidate in graph.edges_between(
                    assignment[edge.source], assignment[edge.target], edge.label)
                if edge.matches(candidate)
            ]
            if not witnesses:
                return False
            if edge.variable is not None:
                edge_bindings[edge.variable] = witnesses[0].id

        if self.comparisons:
            def lookup(variable: str) -> Mapping[str, Any]:
                if variable in edge_bindings:
                    return graph.edge(edge_bindings[variable]).properties
                if variable in assignment and graph.has_node(assignment[variable]):
                    return graph.node(assignment[variable]).properties
                return {}

            match = Match(pattern=self, node_bindings=dict(assignment),
                          edge_bindings=edge_bindings)
            return match.satisfies_comparisons(graph)
        return True


@dataclass
class Match:
    """A binding of pattern variables to data elements.

    ``node_bindings`` maps node variables to node ids; ``edge_bindings`` maps
    edge variables to edge ids.  A match is hashable via :meth:`key` so that
    the repair engine can deduplicate and invalidate matches.
    """

    pattern: Pattern
    node_bindings: dict[str, str]
    edge_bindings: dict[str, str] = field(default_factory=dict)

    def key(self) -> tuple:
        """A hashable identity of the match (pattern name + sorted bindings)."""
        return (
            self.pattern.name,
            tuple(sorted(self.node_bindings.items())),
            tuple(sorted(self.edge_bindings.items())),
        )

    def node_id(self, variable: str) -> str:
        return self.node_bindings[variable]

    def edge_id(self, variable: str) -> str:
        return self.edge_bindings[variable]

    def bound_node_ids(self) -> set[str]:
        return set(self.node_bindings.values())

    def bound_edge_ids(self) -> set[str]:
        return set(self.edge_bindings.values())

    def touches(self, node_ids: set[str] | None = None,
                edge_ids: set[str] | None = None) -> bool:
        """True if the match binds any of the given node/edge ids."""
        if node_ids and any(bound in node_ids for bound in self.node_bindings.values()):
            return True
        if edge_ids and any(bound in edge_ids for bound in self.edge_bindings.values()):
            return True
        return False

    def is_valid(self, graph: PropertyGraph) -> bool:
        """Re-verify the match against the (possibly mutated) graph."""
        for edge_variable, edge_id in self.edge_bindings.items():
            if not graph.has_edge(edge_id):
                return False
        return self.pattern.check_match(graph, self.node_bindings)

    def satisfies_comparisons(self, graph: PropertyGraph) -> bool:
        """Evaluate the pattern's cross-variable comparisons under this binding."""
        def lookup(variable: str) -> Mapping[str, Any]:
            if variable in self.edge_bindings:
                edge_id = self.edge_bindings[variable]
                return graph.edge(edge_id).properties if graph.has_edge(edge_id) else {}
            node_id = self.node_bindings.get(variable)
            if node_id is not None and graph.has_node(node_id):
                return graph.node(node_id).properties
            return {}

        return all(comparison.evaluate(lookup) for comparison in self.pattern.comparisons)

    def __repr__(self) -> str:
        bindings = ", ".join(f"{var}={node_id}" for var, node_id in sorted(self.node_bindings.items()))
        return f"Match({self.pattern.name}: {bindings})"


def pattern_from_graph(graph: PropertyGraph, name: str = "pattern",
                       keep_properties: bool = False) -> Pattern:
    """Lift a small concrete graph into a pattern (node ids become variables).

    Used by the analysis layer to turn witness graphs back into patterns, and
    by tests.  Property values become equality predicates only when
    ``keep_properties=True``.
    """
    from repro.matching.predicates import eq

    nodes = []
    for node in graph.nodes():
        predicates = tuple(eq(key, value) for key, value in sorted(node.properties.items())) \
            if keep_properties else ()
        nodes.append(PatternNode(variable=node.id, label=node.label, predicates=predicates))
    edges = [PatternEdge(source=edge.source, target=edge.target, label=edge.label)
             for edge in graph.edges()]
    return Pattern(nodes=nodes, edges=edges, name=name)


def pattern_to_graph(pattern: Pattern) -> PropertyGraph:
    """Materialise a pattern as a concrete graph (variables become node ids).

    Label-free variables get the placeholder label ``"*"``.  Used by the
    analysis layer to build canonical witness graphs.
    """
    graph = PropertyGraph(name=f"witness-{pattern.name}")
    for node in pattern.nodes:
        graph.add_node(node.label or "*", node_id=node.variable)
    for edge in pattern.edges:
        graph.add_edge(edge.source, edge.target, edge.label or "*")
    return graph
