"""Quality and change-volume metrics plus result formatting (system S9 in
DESIGN.md)."""

from repro.metrics.distance import ChangeSummary, change_summary
from repro.metrics.facts import (
    DEFAULT_KEY_PROPERTIES,
    edge_fact,
    entity_key,
    fact_delta,
    graph_facts,
    node_fact,
    property_facts,
)
from repro.metrics.quality import QualityResult, graph_restored_exactly, repair_quality
from repro.metrics.report import format_csv, format_series, format_table, summarize_rows

__all__ = [
    "QualityResult",
    "repair_quality",
    "graph_restored_exactly",
    "ChangeSummary",
    "change_summary",
    "graph_facts",
    "fact_delta",
    "entity_key",
    "node_fact",
    "edge_fact",
    "property_facts",
    "DEFAULT_KEY_PROPERTIES",
    "format_table",
    "format_csv",
    "format_series",
    "summarize_rows",
]
