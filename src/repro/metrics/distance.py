"""Change-volume metrics: how much a repair perturbed the graph.

Complements the precision/recall view with the *minimal change* view the
paper's cost model optimises: the number and cost of changes performed, the
fact-level distance from the repaired graph to the clean graph, and the
fraction of the dirty graph that was preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.graph.edit_distance import DEFAULT_COSTS, EditCosts, labeled_edit_distance
from repro.graph.property_graph import PropertyGraph
from repro.metrics.facts import fact_delta, graph_facts, total


@dataclass
class ChangeSummary:
    """Aggregate change-volume numbers of one repair run."""

    facts_added: int
    facts_removed: int
    residual_distance_to_clean: int
    preservation_ratio: float
    edit_distance_from_dirty: float

    def as_dict(self) -> dict:
        return {
            "facts_added": self.facts_added,
            "facts_removed": self.facts_removed,
            "residual_distance_to_clean": self.residual_distance_to_clean,
            "preservation_ratio": self.preservation_ratio,
            "edit_distance_from_dirty": self.edit_distance_from_dirty,
        }


def change_summary(clean: PropertyGraph, dirty: PropertyGraph, repaired: PropertyGraph,
                   key_properties: Mapping[str, str] | None = None,
                   costs: EditCosts = DEFAULT_COSTS) -> ChangeSummary:
    """Compute the change-volume view of a repair run."""
    dirty_facts = graph_facts(dirty, key_properties)
    repaired_facts = graph_facts(repaired, key_properties)
    clean_facts = graph_facts(clean, key_properties)

    added, removed = fact_delta(dirty_facts, repaired_facts)
    residual_added, residual_removed = fact_delta(repaired_facts, clean_facts)

    preserved = total(dirty_facts) - total(removed)
    preservation_ratio = preserved / total(dirty_facts) if total(dirty_facts) else 1.0

    edit = labeled_edit_distance(dirty, repaired, costs)

    return ChangeSummary(
        facts_added=total(added),
        facts_removed=total(removed),
        residual_distance_to_clean=total(residual_added) + total(residual_removed),
        preservation_ratio=preservation_ratio,
        edit_distance_from_dirty=edit.distance,
    )
