"""Repair-quality metrics: precision, recall, and F1 against ground truth.

Methodology (standard for repair papers evaluated with injected errors):

* the *needed* repair is the fact-level delta from the dirty graph back to the
  clean graph (facts to remove = what the injector added, facts to add = what
  it removed);
* the *performed* repair is the fact-level delta from the dirty graph to the
  repaired graph;
* **precision** = |performed ∩ needed| / |performed| — how much of what the
  repairer changed was actually wrong;
* **recall** = |performed ∩ needed| / |needed| — how much of what was wrong
  the repairer fixed;
* **F1** — their harmonic mean.

Facts are the semantic facts of :mod:`repro.metrics.facts` (entity keys, not
node ids), and both deltas are multisets, so duplicated facts and their
removal are counted correctly.  Per-error-class scores are computed by
restricting the needed delta to the facts of one error class (as recorded in
the ground truth) and scoring recall against only those; precision is not
split per class because a performed change cannot always be attributed to a
single class.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors.ground_truth import GroundTruth
from repro.graph.property_graph import PropertyGraph
from repro.metrics.facts import counter_intersection, fact_delta, graph_facts, total
from repro.rules.semantics import Semantics


@dataclass
class QualityResult:
    """Precision / recall / F1 of one repair run, plus per-class recall."""

    precision: float
    recall: float
    f1: float
    needed_changes: int
    performed_changes: int
    correct_changes: int
    recall_by_kind: dict[str, float] = field(default_factory=dict)
    spurious_changes: int = 0
    missed_changes: int = 0

    def as_dict(self) -> dict:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "needed_changes": self.needed_changes,
            "performed_changes": self.performed_changes,
            "correct_changes": self.correct_changes,
            "spurious_changes": self.spurious_changes,
            "missed_changes": self.missed_changes,
            "recall_by_kind": dict(self.recall_by_kind),
        }

    def describe(self) -> str:
        per_kind = ", ".join(f"{kind}={value:.3f}"
                             for kind, value in sorted(self.recall_by_kind.items()))
        return (f"precision={self.precision:.3f} recall={self.recall:.3f} "
                f"f1={self.f1:.3f} (needed={self.needed_changes}, "
                f"performed={self.performed_changes}, correct={self.correct_changes}"
                f"{'; recall by kind: ' + per_kind if per_kind else ''})")


def _f1(precision: float, recall: float) -> float:
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def _signed_delta(before: Counter, after: Counter) -> Counter:
    """Encode a delta as a multiset of signed facts ``("+", fact)`` / ``("-", fact)``."""
    added, removed = fact_delta(before, after)
    signed: Counter = Counter()
    for fact, count in added.items():
        signed[("+", fact)] = count
    for fact, count in removed.items():
        signed[("-", fact)] = count
    return signed


def repair_quality(clean: PropertyGraph, dirty: PropertyGraph, repaired: PropertyGraph,
                   ground_truth: GroundTruth | None = None,
                   key_properties: Mapping[str, str] | None = None) -> QualityResult:
    """Score ``repaired`` against the clean/dirty pair (and optional ground truth)."""
    clean_facts = graph_facts(clean, key_properties)
    dirty_facts = graph_facts(dirty, key_properties)
    repaired_facts = graph_facts(repaired, key_properties)

    needed = _signed_delta(dirty_facts, clean_facts)
    performed = _signed_delta(dirty_facts, repaired_facts)
    correct = counter_intersection(needed, performed)

    needed_total = total(needed)
    performed_total = total(performed)
    correct_total = total(correct)

    precision = correct_total / performed_total if performed_total else 1.0
    recall = correct_total / needed_total if needed_total else 1.0

    result = QualityResult(
        precision=precision,
        recall=recall,
        f1=_f1(precision, recall),
        needed_changes=needed_total,
        performed_changes=performed_total,
        correct_changes=correct_total,
        spurious_changes=performed_total - correct_total,
        missed_changes=needed_total - correct_total,
    )

    if ground_truth is not None:
        result.recall_by_kind = _recall_by_kind(ground_truth, performed)
    return result


def _recall_by_kind(ground_truth: GroundTruth, performed: Counter) -> dict[str, float]:
    """Recall restricted to the facts each error class touched.

    An injected error's ``added_facts`` need a ``("-", fact)`` in the performed
    delta; its ``removed_facts`` need a ``("+", fact)``.  Multiplicities are
    respected by consuming a copy of the performed delta per class.
    """
    recall_by_kind: dict[str, float] = {}
    for kind in Semantics:
        errors = ground_truth.by_kind(kind)
        if not errors:
            continue
        needed: Counter = Counter()
        for error in errors:
            for fact in error.added_facts:
                needed[("-", fact)] += 1
            for fact in error.removed_facts:
                needed[("+", fact)] += 1
        correct = counter_intersection(needed, performed)
        recall_by_kind[kind.value] = (total(correct) / total(needed)) if needed else 1.0
    return recall_by_kind


def graph_restored_exactly(clean: PropertyGraph, repaired: PropertyGraph,
                           key_properties: Mapping[str, str] | None = None) -> bool:
    """True if the repaired graph has exactly the clean graph's fact multiset."""
    return graph_facts(clean, key_properties) == graph_facts(repaired, key_properties)
