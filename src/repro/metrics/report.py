"""Tabular result formatting for experiments.

The experiment harness collects rows of plain dictionaries; this module turns
them into the aligned text tables the benchmarks print (mirroring how the
paper reports its tables) and into simple CSV for post-processing.
"""

from __future__ import annotations

import io
from typing import Any, Iterable, Mapping, Sequence


def _format_value(value: Any, float_digits: int = 3) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    if isinstance(value, dict):
        return ", ".join(f"{key}={_format_value(item, float_digits)}"
                         for key, item in sorted(value.items()))
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]],
                 columns: Sequence[str] | None = None,
                 title: str | None = None,
                 float_digits: int = 3) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_format_value(row.get(column, ""), float_digits) for column in columns]
                for row in rows]
    widths = [max(len(column), *(len(line[i]) for line in rendered))
              for i, column in enumerate(columns)]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = " | ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    out.write(header + "\n")
    out.write("-+-".join("-" * width for width in widths) + "\n")
    for line in rendered:
        out.write(" | ".join(line[i].ljust(widths[i]) for i in range(len(columns))) + "\n")
    return out.getvalue().rstrip("\n")


def format_csv(rows: Sequence[Mapping[str, Any]],
               columns: Sequence[str] | None = None) -> str:
    """Render rows as CSV (no quoting beyond replacing commas in values)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(_format_value(row.get(column, "")).replace(",", ";")
                              for column in columns))
    return "\n".join(lines)


def format_series(rows: Sequence[Mapping[str, Any]], x_column: str,
                  y_columns: Sequence[str], title: str | None = None,
                  float_digits: int = 3) -> str:
    """Render a figure-style result: one x column and several y series."""
    columns = [x_column, *y_columns]
    return format_table(rows, columns=columns, title=title, float_digits=float_digits)


def summarize_rows(rows: Iterable[Mapping[str, Any]],
                   group_by: str, value_columns: Sequence[str]) -> list[dict[str, Any]]:
    """Average the value columns per distinct ``group_by`` value (used for repeats)."""
    groups: dict[Any, list[Mapping[str, Any]]] = {}
    for row in rows:
        groups.setdefault(row[group_by], []).append(row)
    summary = []
    for key in sorted(groups, key=lambda value: (str(type(value)), value)):
        members = groups[key]
        entry: dict[str, Any] = {group_by: key, "runs": len(members)}
        for column in value_columns:
            values = [member[column] for member in members
                      if isinstance(member.get(column), (int, float))]
            entry[column] = sum(values) / len(values) if values else None
        summary.append(entry)
    return summary
