"""Semantic fact extraction from property graphs.

Repair quality is measured by comparing *facts*, not raw elements: a fact is
identified by entity keys (label + an identifying property such as ``name``)
rather than by internal node ids, so that repairs which create or remove
element ids while expressing the same correction (node merges, re-added
edges) are scored correctly.

Three fact shapes exist:

* ``("node", entity_key, label)`` — the entity exists;
* ``("prop", entity_key, property_key, value)`` — the entity has a property;
* ``("edge", source_key, edge_label, target_key)`` — a relationship holds.

Facts form a **multiset** (a :class:`collections.Counter`): duplicate parallel
edges produce the same edge fact twice, which is exactly how redundancy errors
and their repairs become visible in fact deltas.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping

from repro.graph.elements import Node
from repro.graph.property_graph import PropertyGraph

# Default identifying property per node label; the dataset generators keep
# these unique per entity so that entity keys are unambiguous.
DEFAULT_KEY_PROPERTIES: dict[str, str] = {
    "Person": "name",
    "City": "name",
    "Country": "name",
    "Organization": "name",
    "Movie": "title",
    "Genre": "name",
    "Studio": "name",
    "Year": "value",
    "User": "username",
    "Post": "post_id",
    "Group": "name",
}

EXCLUDED_PROPERTY_KEYS = frozenset({"confidence"})

EntityKey = tuple
Fact = tuple


def entity_key(node: Node, key_properties: Mapping[str, str] | None = None) -> EntityKey:
    """The semantic identity of a node: ``(label, identifying value)``.

    Falls back to the node id when the label has no configured identifying
    property or the node lacks it.
    """
    keys = key_properties if key_properties is not None else DEFAULT_KEY_PROPERTIES
    identifying = keys.get(node.label)
    if identifying is not None and identifying in node.properties:
        return (node.label, identifying, node.properties[identifying])
    return (node.label, "id", node.id)


def node_fact(node: Node, key_properties: Mapping[str, str] | None = None) -> Fact:
    return ("node", entity_key(node, key_properties), node.label)


def property_facts(node: Node, key_properties: Mapping[str, str] | None = None) -> list[Fact]:
    key = entity_key(node, key_properties)
    return [("prop", key, property_key, value)
            for property_key, value in sorted(node.properties.items(), key=lambda kv: kv[0])
            if property_key not in EXCLUDED_PROPERTY_KEYS]


def edge_fact(graph: PropertyGraph, edge,
              key_properties: Mapping[str, str] | None = None) -> Fact:
    source_key = entity_key(graph.node(edge.source), key_properties)
    target_key = entity_key(graph.node(edge.target), key_properties)
    return ("edge", source_key, edge.label, target_key)


def graph_facts(graph: PropertyGraph,
                key_properties: Mapping[str, str] | None = None,
                include_properties: bool = True,
                include_nodes: bool = True) -> Counter:
    """The fact multiset of a graph."""
    facts: Counter = Counter()
    for node in graph.nodes():
        if include_nodes:
            facts[node_fact(node, key_properties)] += 1
        if include_properties:
            for fact in property_facts(node, key_properties):
                facts[fact] += 1
    for edge in graph.edges():
        facts[edge_fact(graph, edge, key_properties)] += 1
    return facts


def fact_delta(before: Counter, after: Counter) -> tuple[Counter, Counter]:
    """Return ``(added, removed)`` fact multisets transforming ``before`` into ``after``."""
    added = Counter()
    removed = Counter()
    for fact in set(before) | set(after):
        difference = after.get(fact, 0) - before.get(fact, 0)
        if difference > 0:
            added[fact] = difference
        elif difference < 0:
            removed[fact] = -difference
    return added, removed


def counter_intersection(first: Counter, second: Counter) -> Counter:
    """Multiset intersection (minimum multiplicities)."""
    intersection = Counter()
    for fact, count in first.items():
        other = second.get(fact, 0)
        if other:
            intersection[fact] = min(count, other)
    return intersection


def total(counter: Counter) -> int:
    """Total multiplicity of a fact multiset."""
    return sum(counter.values())
