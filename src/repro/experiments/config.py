"""Experiment configuration: default parameter grids and the quick/full switch.

All experiment runners accept explicit parameters; the defaults below define
the *full* grids used by the benchmark harness and the *quick* grids used by
integration tests and smoke runs.  The environment variable
``REPRO_BENCH_QUICK=1`` switches the benchmark files to the quick grids so
they finish in seconds instead of minutes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


def quick_mode_enabled() -> bool:
    """True if the environment requests the reduced parameter grids."""
    return os.environ.get("REPRO_BENCH_QUICK", "").strip() in {"1", "true", "yes"}


@dataclass(frozen=True)
class ExperimentDefaults:
    """Parameter grids for one mode (quick or full)."""

    # E1 / E8 — quality per domain
    quality_scale: int = 300
    quality_error_rate: float = 0.05
    quality_domains: tuple[str, ...] = ("kg", "movies", "social")
    quality_methods: tuple[str, ...] = ("grr-fast", "grr-naive", "fd-relational",
                                        "greedy-delete", "detect-only")
    # E2 — graph-size sweep
    size_domain: str = "kg"
    size_scales: tuple[int, ...] = (100, 200, 400, 800)
    size_error_rate: float = 0.05
    size_methods: tuple[str, ...] = ("grr-fast", "grr-naive")
    # E3 — rule-count sweep
    rules_domain: str = "kg"
    rules_scale: int = 400
    rules_counts: tuple[int, ...] = (2, 4, 8, 16, 32)
    # E4 — error-rate sweep
    error_domain: str = "kg"
    error_scale: int = 300
    error_rates: tuple[float, ...] = (0.01, 0.02, 0.05, 0.10, 0.20)
    # E5 — ablation
    ablation_domain: str = "kg"
    ablation_scale: int = 400
    ablation_error_rate: float = 0.05
    # E6 — rule-set analysis
    analysis_rule_counts: tuple[int, ...] = (4, 8, 16, 32)
    analysis_exact_limit: int = 16
    # E7 — pattern-size sweep
    pattern_scale: int = 300
    pattern_sizes: tuple[int, ...] = (2, 3, 4, 5, 6)
    # shared
    seed: int = 0
    repeats: int = 1


FULL_DEFAULTS = ExperimentDefaults()

QUICK_DEFAULTS = ExperimentDefaults(
    quality_scale=80,
    quality_domains=("kg", "movies"),
    quality_methods=("grr-fast", "grr-naive", "fd-relational", "detect-only"),
    size_scales=(50, 100, 200),
    rules_scale=120,
    rules_counts=(2, 4, 8),
    error_scale=100,
    error_rates=(0.02, 0.05, 0.10),
    ablation_scale=120,
    analysis_rule_counts=(4, 8),
    analysis_exact_limit=8,
    pattern_scale=100,
    pattern_sizes=(2, 3, 4),
)


def defaults(quick: bool | None = None) -> ExperimentDefaults:
    """The parameter grid for the requested (or environment-selected) mode."""
    if quick is None:
        quick = quick_mode_enabled()
    return QUICK_DEFAULTS if quick else FULL_DEFAULTS
