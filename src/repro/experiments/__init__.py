"""Experiment harness reproducing the paper's evaluation (system S10 in
DESIGN.md); one runner per table/figure E1–E8."""

from repro.experiments.config import (
    FULL_DEFAULTS,
    QUICK_DEFAULTS,
    ExperimentDefaults,
    defaults,
    quick_mode_enabled,
)
from repro.experiments.harness import METHODS, MethodResult, evaluate_method, get_method
from repro.experiments.runners import (
    ABLATION_VARIANTS,
    ALL_RUNNERS,
    MATCHER_VARIANTS,
    run_e1_quality,
    run_e2_graph_size,
    run_e3_rule_count,
    run_e4_error_rate,
    run_e5_ablation,
    run_e6_analysis,
    run_e7_pattern_size,
    run_e8_semantics,
)

__all__ = [
    "ExperimentDefaults",
    "FULL_DEFAULTS",
    "QUICK_DEFAULTS",
    "defaults",
    "quick_mode_enabled",
    "METHODS",
    "MethodResult",
    "evaluate_method",
    "get_method",
    "ALL_RUNNERS",
    "ABLATION_VARIANTS",
    "MATCHER_VARIANTS",
    "run_e1_quality",
    "run_e2_graph_size",
    "run_e3_rule_count",
    "run_e4_error_rate",
    "run_e5_ablation",
    "run_e6_analysis",
    "run_e7_pattern_size",
    "run_e8_semantics",
]
