"""One runner per reconstructed table/figure of the paper's evaluation.

Each ``run_eN_*`` function builds its workloads, runs the relevant methods,
and returns a list of flat result rows; ``format_*`` helpers in
:mod:`repro.metrics.report` turn the rows into the printed tables the
benchmarks emit.  The experiment ids (E1–E8) and their mapping to the paper's
artefacts are documented in DESIGN.md §4 and EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from repro.analysis.consistency import check_consistency
from repro.analysis.dependency import build_dependency_graph
from repro.analysis.termination import analyze_termination
from repro.api import RepairConfig, repair_copy
from repro.datasets.registry import build_workload, load_dataset
from repro.datasets.rulegen import RuleGenConfig, generate_rules
from repro.errors.injector import inject_errors
from repro.experiments.config import ExperimentDefaults, defaults
from repro.experiments.harness import evaluate_method, run_ablation
from repro.matching.matcher import Matcher, MatcherConfig
from repro.matching.pattern import Pattern, PatternEdge, PatternNode
from repro.metrics.quality import repair_quality
from repro.repair.detector import detect_violations
from repro.rules.library import MOVIES


# ---------------------------------------------------------------------------
# E1 — repair quality per domain and method
# ---------------------------------------------------------------------------

def run_e1_quality(domains: Sequence[str] | None = None,
                   methods: Sequence[str] | None = None,
                   scale: int | None = None,
                   error_rate: float | None = None,
                   seed: int | None = None,
                   config: ExperimentDefaults | None = None) -> list[dict[str, Any]]:
    """Precision / recall / F1 of every method on every domain (Table E1)."""
    config = config or defaults()
    domains = tuple(domains) if domains is not None else config.quality_domains
    methods = tuple(methods) if methods is not None else config.quality_methods
    scale = scale if scale is not None else config.quality_scale
    error_rate = error_rate if error_rate is not None else config.quality_error_rate
    seed = seed if seed is not None else config.seed

    rows: list[dict[str, Any]] = []
    for domain in domains:
        workload = build_workload(domain, scale=scale, error_rate=error_rate, seed=seed)
        for method in methods:
            rows.append(evaluate_method(method, workload))
    return rows


# ---------------------------------------------------------------------------
# E2 — runtime vs graph size
# ---------------------------------------------------------------------------

def run_e2_graph_size(scales: Sequence[int] | None = None,
                      methods: Sequence[str] | None = None,
                      domain: str | None = None,
                      error_rate: float | None = None,
                      seed: int | None = None,
                      config: ExperimentDefaults | None = None) -> list[dict[str, Any]]:
    """Repair runtime of the naive and fast algorithms as the graph grows (Figure E2)."""
    config = config or defaults()
    scales = tuple(scales) if scales is not None else config.size_scales
    methods = tuple(methods) if methods is not None else config.size_methods
    domain = domain or config.size_domain
    error_rate = error_rate if error_rate is not None else config.size_error_rate
    seed = seed if seed is not None else config.seed

    rows: list[dict[str, Any]] = []
    for scale in scales:
        workload = build_workload(domain, scale=scale, error_rate=error_rate, seed=seed)
        for method in methods:
            rows.append(evaluate_method(method, workload, include_quality=False))
    return rows


# ---------------------------------------------------------------------------
# E3 — runtime vs number of rules
# ---------------------------------------------------------------------------

def run_e3_rule_count(rule_counts: Sequence[int] | None = None,
                      domain: str | None = None,
                      scale: int | None = None,
                      error_rate: float = 0.05,
                      seed: int | None = None,
                      config: ExperimentDefaults | None = None) -> list[dict[str, Any]]:
    """Repair runtime as the number of (generated) rules grows (Figure E3)."""
    config = config or defaults()
    rule_counts = tuple(rule_counts) if rule_counts is not None else config.rules_counts
    domain = domain or config.rules_domain
    scale = scale if scale is not None else config.rules_scale
    seed = seed if seed is not None else config.seed

    instance = load_dataset(domain, scale=scale, seed=seed)
    dirty, _truth = inject_errors(instance.clean, instance.error_profile,
                                  error_rate=error_rate, seed=seed + 1)

    rows: list[dict[str, Any]] = []
    for count in rule_counts:
        rules = generate_rules(instance.clean,
                               RuleGenConfig(num_rules=count, seed=seed),
                               name=f"generated-{count}")
        for method_label, session_config in (("grr-fast", RepairConfig.fast()),
                                             ("grr-naive", RepairConfig.naive())):
            started = time.perf_counter()
            _repaired, report = repair_copy(dirty, rules, config=session_config)
            elapsed = time.perf_counter() - started
            rows.append({
                "domain": domain,
                "scale": scale,
                "num_rules": count,
                "method": method_label,
                "seconds": elapsed,
                "repairs_applied": report.repairs_applied,
                "violations_detected": report.violations_detected,
                "matches_enumerated": report.matches_enumerated,
            })
    return rows


# ---------------------------------------------------------------------------
# E4 — quality and runtime vs error rate
# ---------------------------------------------------------------------------

def run_e4_error_rate(error_rates: Sequence[float] | None = None,
                      domain: str | None = None,
                      scale: int | None = None,
                      methods: Sequence[str] = ("grr-fast", "grr-naive"),
                      seed: int | None = None,
                      config: ExperimentDefaults | None = None) -> list[dict[str, Any]]:
    """F1 and runtime as the injected error rate grows (Figure E4)."""
    config = config or defaults()
    error_rates = tuple(error_rates) if error_rates is not None else config.error_rates
    domain = domain or config.error_domain
    scale = scale if scale is not None else config.error_scale
    seed = seed if seed is not None else config.seed

    rows: list[dict[str, Any]] = []
    for rate in error_rates:
        workload = build_workload(domain, scale=scale, error_rate=rate, seed=seed)
        for method in methods:
            rows.append(evaluate_method(method, workload))
    return rows


# ---------------------------------------------------------------------------
# E5 — optimisation ablation
# ---------------------------------------------------------------------------

ABLATION_VARIANTS = ("none", "index", "decomposition", "incremental")


def run_e5_ablation(domain: str | None = None, scale: int | None = None,
                    error_rate: float | None = None, seed: int | None = None,
                    variants: Sequence[str] = ABLATION_VARIANTS,
                    config: ExperimentDefaults | None = None) -> list[dict[str, Any]]:
    """Runtime with each optimisation of the fast algorithm disabled (Figure E5)."""
    config = config or defaults()
    domain = domain or config.ablation_domain
    scale = scale if scale is not None else config.ablation_scale
    error_rate = error_rate if error_rate is not None else config.ablation_error_rate
    seed = seed if seed is not None else config.seed

    workload = build_workload(domain, scale=scale, error_rate=error_rate, seed=seed)
    rows: list[dict[str, Any]] = []
    for variant in variants:
        row = evaluate_method(run_ablation(variant), workload, include_quality=True)
        row["disabled_optimisation"] = variant
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E6 — rule-set analysis cost and verdicts
# ---------------------------------------------------------------------------

def run_e6_analysis(rule_counts: Sequence[int] | None = None,
                    domain: str = "kg", scale: int = 200,
                    seed: int | None = None,
                    exact_limit: int | None = None,
                    config: ExperimentDefaults | None = None) -> list[dict[str, Any]]:
    """Consistency / termination analysis time and verdicts vs rule-set size,
    with and without a planted inconsistent pair (Table E6)."""
    config = config or defaults()
    rule_counts = tuple(rule_counts) if rule_counts is not None else config.analysis_rule_counts
    exact_limit = exact_limit if exact_limit is not None else config.analysis_exact_limit
    seed = seed if seed is not None else config.seed

    instance = load_dataset(domain, scale=scale, seed=seed)
    rows: list[dict[str, Any]] = []
    for count in rule_counts:
        for planted in (False, True):
            rules = generate_rules(
                instance.clean,
                RuleGenConfig(num_rules=count, plant_inconsistent_pair=planted, seed=seed),
                name=f"generated-{count}{'-planted' if planted else ''}")

            started = time.perf_counter()
            dependency = build_dependency_graph(rules)
            sufficient = check_consistency(rules, dependency_graph=dependency)
            termination = analyze_termination(rules, dependency)
            sufficient_seconds = time.perf_counter() - started

            row: dict[str, Any] = {
                "num_rules": len(rules),
                "planted_inconsistency": planted,
                "sufficient_verdict": sufficient.verdict.value,
                "termination_verdict": termination.verdict.value,
                "sufficient_seconds": sufficient_seconds,
                "trigger_relations": len(dependency.triggers()),
            }
            if len(rules) <= exact_limit:
                started = time.perf_counter()
                exact = check_consistency(rules, exact=True,
                                          max_repairs_per_witness=50,
                                          dependency_graph=dependency)
                row["exact_verdict"] = exact.verdict.value
                row["exact_seconds"] = time.perf_counter() - started
            else:
                row["exact_verdict"] = "skipped"
                row["exact_seconds"] = float("nan")
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E7 — matching cost vs pattern size
# ---------------------------------------------------------------------------

def _movie_pattern_of_size(size: int) -> Pattern:
    """Connected patterns of 2–6 variables over the movie schema."""
    nodes = [PatternNode("p", MOVIES["PERSON"]), PatternNode("m", MOVIES["MOVIE"])]
    edges = [PatternEdge("p", "m", MOVIES["DIRECTED"])]
    if size >= 3:
        nodes.append(PatternNode("s", MOVIES["STUDIO"]))
        edges.append(PatternEdge("m", "s", MOVIES["PRODUCED_BY"]))
    if size >= 4:
        nodes.append(PatternNode("g", MOVIES["GENRE"]))
        edges.append(PatternEdge("m", "g", MOVIES["HAS_GENRE"]))
    if size >= 5:
        nodes.append(PatternNode("y", MOVIES["YEAR"]))
        edges.append(PatternEdge("m", "y", MOVIES["RELEASED_IN"]))
    if size >= 6:
        nodes.append(PatternNode("a", MOVIES["PERSON"]))
        edges.append(PatternEdge("a", "m", MOVIES["ACTED_IN"]))
    if size < 2 or size > 6:
        raise ValueError("pattern size must be between 2 and 6")
    return Pattern(nodes=nodes[:size], edges=edges[:size - 1], name=f"chain-{size}")


MATCHER_VARIANTS = {
    "naive": MatcherConfig(use_candidate_index=False, use_decomposition=False),
    "index-only": MatcherConfig(use_candidate_index=True, use_decomposition=False),
    "decomposition-only": MatcherConfig(use_candidate_index=False, use_decomposition=True),
    "index+decomposition": MatcherConfig(use_candidate_index=True, use_decomposition=True),
}


def run_e7_pattern_size(pattern_sizes: Sequence[int] | None = None,
                        scale: int | None = None, seed: int | None = None,
                        variants: Sequence[str] | None = None,
                        config: ExperimentDefaults | None = None) -> list[dict[str, Any]]:
    """Match-enumeration time vs pattern size for each matcher configuration
    (Figure E7)."""
    config = config or defaults()
    pattern_sizes = tuple(pattern_sizes) if pattern_sizes is not None else config.pattern_sizes
    scale = scale if scale is not None else config.pattern_scale
    seed = seed if seed is not None else config.seed
    variant_names = tuple(variants) if variants is not None else tuple(MATCHER_VARIANTS)

    instance = load_dataset("movies", scale=scale, seed=seed)
    graph = instance.clean

    rows: list[dict[str, Any]] = []
    for size in pattern_sizes:
        pattern = _movie_pattern_of_size(size)
        for variant_name in variant_names:
            matcher = Matcher(graph, MATCHER_VARIANTS[variant_name], maintain_index=False)
            started = time.perf_counter()
            matches = matcher.find_matches(pattern)
            elapsed = time.perf_counter() - started
            matcher.close()
            rows.append({
                "pattern_size": size,
                "variant": variant_name,
                "seconds": elapsed,
                "matches": len(matches),
                "nodes_tried": matcher.stats.nodes_tried,
                "graph_nodes": graph.num_nodes,
                "graph_edges": graph.num_edges,
            })
    return rows


# ---------------------------------------------------------------------------
# E8 — per-semantics breakdown
# ---------------------------------------------------------------------------

def run_e8_semantics(domains: Sequence[str] | None = None,
                     scale: int | None = None, error_rate: float | None = None,
                     seed: int | None = None,
                     config: ExperimentDefaults | None = None) -> list[dict[str, Any]]:
    """Injected / detected / repaired / remaining per error class (Table E8)."""
    config = config or defaults()
    domains = tuple(domains) if domains is not None else config.quality_domains
    scale = scale if scale is not None else config.quality_scale
    error_rate = error_rate if error_rate is not None else config.quality_error_rate
    seed = seed if seed is not None else config.seed

    rows: list[dict[str, Any]] = []
    for domain in domains:
        workload = build_workload(domain, scale=scale, error_rate=error_rate, seed=seed)
        detection = detect_violations(workload.dirty, workload.rules)
        repaired, report = repair_copy(workload.dirty, workload.rules,
                                       config=RepairConfig.fast())
        remaining = detect_violations(repaired, workload.rules)
        quality = repair_quality(workload.clean, workload.dirty, repaired,
                                 workload.ground_truth)

        injected = workload.ground_truth.counts_by_kind()
        detected = detection.per_semantics()
        repaired_counts = report.repairs_per_semantics()
        remaining_counts = remaining.per_semantics()
        for kind in ("incompleteness", "conflict", "redundancy"):
            rows.append({
                "domain": domain,
                "semantics": kind,
                "injected_errors": injected.get(kind, 0),
                "violations_detected": detected.get(kind, 0),
                "repairs_applied": repaired_counts.get(kind, 0),
                "violations_remaining": remaining_counts.get(kind, 0),
                "recall": quality.recall_by_kind.get(kind, float("nan")),
            })
    return rows


ALL_RUNNERS = {
    "e1": run_e1_quality,
    "e2": run_e2_graph_size,
    "e3": run_e3_rule_count,
    "e4": run_e4_error_rate,
    "e5": run_e5_ablation,
    "e6": run_e6_analysis,
    "e7": run_e7_pattern_size,
    "e8": run_e8_semantics,
}
