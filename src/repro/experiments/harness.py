"""Shared experiment machinery: run one repair method on one workload.

Every experiment reduces to "build a workload, run a method, collect a row";
this module provides the method registry (the two GRR algorithms, the three
baselines, and the E5 ablation variants) and the row construction (timing,
repair statistics, quality against ground truth) so the per-experiment
runners in :mod:`repro.experiments.runners` stay small.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.api import RepairConfig, repair_copy
from repro.baselines import DetectOnlyBaseline, FDRelationalBaseline, GreedyDeleteBaseline
from repro.datasets.registry import Workload
from repro.graph.property_graph import PropertyGraph
from repro.metrics.quality import repair_quality
from repro.rules.grr import RuleSet


@dataclass
class MethodResult:
    """Everything one method produced on one workload."""

    method: str
    repaired: PropertyGraph
    elapsed_seconds: float
    repairs_applied: int = 0
    violations_detected: int = 0
    remaining_violations: int = 0
    matches_enumerated: int = 0
    extra: dict[str, Any] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.extra is None:
            self.extra = {}


MethodRunner = Callable[[PropertyGraph, RuleSet], MethodResult]


def _run_session(method_label: str, config: RepairConfig,
                 graph: PropertyGraph, rules: RuleSet) -> MethodResult:
    started = time.perf_counter()
    repaired, report = repair_copy(graph, rules, config=config)
    elapsed = time.perf_counter() - started
    return MethodResult(
        method=method_label,
        repaired=repaired,
        elapsed_seconds=elapsed,
        repairs_applied=report.repairs_applied,
        violations_detected=report.violations_detected,
        remaining_violations=report.remaining_violations,
        matches_enumerated=report.matches_enumerated,
        extra={"report": report},
    )


def run_grr_fast(graph: PropertyGraph, rules: RuleSet) -> MethodResult:
    return _run_session("grr-fast", RepairConfig.fast(), graph, rules)


def run_grr_naive(graph: PropertyGraph, rules: RuleSet) -> MethodResult:
    return _run_session("grr-naive", RepairConfig.naive(), graph, rules)


def run_ablation(variant: str) -> MethodRunner:
    """A runner for one E5 ablation variant (``none`` / ``index`` /
    ``decomposition`` / ``incremental`` — the name of the *disabled* part)."""

    def runner(graph: PropertyGraph, rules: RuleSet) -> MethodResult:
        label = "grr-fast" if variant == "none" else f"grr-fast-no-{variant}"
        return _run_session(label, RepairConfig.ablation(variant), graph, rules)

    return runner


def run_detect_only(graph: PropertyGraph, rules: RuleSet) -> MethodResult:
    baseline = DetectOnlyBaseline()
    repaired, report = baseline.repair(graph, rules)
    return MethodResult(method=baseline.name, repaired=repaired,
                        elapsed_seconds=report.elapsed_seconds,
                        violations_detected=report.violations_detected,
                        extra=report.as_dict())


def run_fd_relational(graph: PropertyGraph, rules: RuleSet) -> MethodResult:
    baseline = FDRelationalBaseline()
    repaired, report = baseline.repair(graph, rules)
    return MethodResult(method=baseline.name, repaired=repaired,
                        elapsed_seconds=report.elapsed_seconds,
                        repairs_applied=report.changes_applied,
                        violations_detected=report.violations_detected,
                        extra=report.as_dict())


def run_greedy(graph: PropertyGraph, rules: RuleSet) -> MethodResult:
    baseline = GreedyDeleteBaseline()
    repaired, report = baseline.repair(graph, rules)
    return MethodResult(method=baseline.name, repaired=repaired,
                        elapsed_seconds=report.elapsed_seconds,
                        repairs_applied=report.changes_applied,
                        violations_detected=report.violations_detected,
                        extra=report.as_dict())


METHODS: dict[str, MethodRunner] = {
    "grr-fast": run_grr_fast,
    "grr-naive": run_grr_naive,
    "detect-only": run_detect_only,
    "fd-relational": run_fd_relational,
    "greedy-delete": run_greedy,
}


def get_method(name: str) -> MethodRunner:
    try:
        return METHODS[name]
    except KeyError:
        raise KeyError(f"unknown method {name!r}; available: {sorted(METHODS)}") from None


def evaluate_method(method: str | MethodRunner, workload: Workload,
                    include_quality: bool = True) -> dict[str, Any]:
    """Run one method on one workload and return a flat result row."""
    runner = get_method(method) if isinstance(method, str) else method
    result = runner(workload.dirty, workload.rules)
    row: dict[str, Any] = {
        "domain": workload.domain,
        "scale": workload.scale,
        "nodes": workload.dirty.num_nodes,
        "edges": workload.dirty.num_edges,
        "error_rate": workload.error_rate,
        "injected_errors": len(workload.ground_truth),
        "method": result.method,
        "seconds": result.elapsed_seconds,
        "repairs_applied": result.repairs_applied,
        "violations_detected": result.violations_detected,
        "remaining_violations": result.remaining_violations,
    }
    if include_quality:
        quality = repair_quality(workload.clean, workload.dirty, result.repaired,
                                 workload.ground_truth)
        row.update({
            "precision": quality.precision,
            "recall": quality.recall,
            "f1": quality.f1,
        })
        for kind, value in quality.recall_by_kind.items():
            row[f"recall_{kind}"] = value
    return row
