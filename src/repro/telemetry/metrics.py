"""The labeled metrics registry: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` holds metric *families* (one per metric name);
a family fans out into *children*, one per label-value combination.  Three
kinds exist:

* **counter** — monotonically increasing float (``inc``);
* **gauge** — a settable level (``set`` / ``inc`` / ``dec``);
* **histogram** — fixed upper-bound buckets plus ``sum`` and ``count``
  (``observe``), with quantile estimation by linear interpolation inside
  the target bucket (the standard Prometheus ``histogram_quantile``
  approximation).

Everything is thread-safe (one registry lock, held only for the duration of
a single arithmetic update) and built for **snapshot/merge** shipping: a
:meth:`MetricsRegistry.snapshot` is a plain picklable value object, and
:meth:`RegistrySnapshot.merge` is **associative and commutative** — counters
and histogram buckets add, gauges add too (a merged gauge is the sum over
its sources: per-worker resident quantities aggregate, which is the shape
every gauge in the catalogue has).  Shard workers therefore ship their
registries back through :class:`~repro.parallel.worker.ShardResult` and the
coordinator folds them in with :meth:`MetricsRegistry.absorb` in any order
without changing the result (pinned by a hypothesis test).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricSnapshot",
    "MetricsRegistry",
    "RegistrySnapshot",
    "quantile_from_buckets",
]

#: default histogram bounds, tuned for repair/WAL latencies: 100µs .. 30s
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

_KINDS = ("counter", "gauge", "histogram")


def quantile_from_buckets(bounds: tuple[float, ...], counts: list[int],
                          quantile: float) -> float:
    """Estimate a quantile from fixed-bucket observations.

    ``counts`` has ``len(bounds) + 1`` entries (the last is the +Inf
    bucket).  Linear interpolation inside the target bucket; the +Inf
    bucket clamps to its lower bound (there is no upper edge to
    interpolate towards).  Returns 0.0 for an empty histogram.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {quantile}")
    total = sum(counts)
    if total == 0:
        return 0.0
    target = quantile * total
    seen = 0.0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        if seen + bucket_count < target:
            seen += bucket_count
            continue
        lower = bounds[index - 1] if index > 0 else 0.0
        if index >= len(bounds):  # the +Inf bucket has no width
            return bounds[-1] if bounds else 0.0
        upper = bounds[index]
        fraction = (target - seen) / bucket_count
        return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
    return bounds[-1] if bounds else 0.0


class _Child:
    """One label-value combination of a counter or gauge family."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class _HistogramChild:
    """One label-value combination of a histogram family."""

    __slots__ = ("_lock", "_bounds", "bucket_counts", "sum", "count")

    def __init__(self, lock: threading.RLock, bounds: tuple[float, ...]) -> None:
        self._lock = lock
        self._bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self._bounds, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.sum += value
            self.count += 1

    def quantile(self, quantile: float) -> float:
        with self._lock:
            counts = list(self.bucket_counts)
        return quantile_from_buckets(self._bounds, counts, quantile)


class MetricFamily:
    """All children of one metric name (see module docstring)."""

    def __init__(self, registry: "MetricsRegistry", kind: str, name: str,
                 help: str, labelnames: tuple[str, ...],
                 buckets: tuple[float, ...] = ()) -> None:
        self.registry = registry
        self.kind = kind
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.buckets = buckets
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **labels: object) -> object:
        """The child for one label-value combination (created on first use).

        Every declared label must be supplied; values are stringified, so
        shard indexes and booleans are fine.
        """
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        values = tuple(str(labels[name]) for name in self.labelnames)
        return self.child(values)

    def child(self, values: tuple[str, ...]) -> object:
        child = self._children.get(values)
        if child is None:
            with self.registry._lock:
                child = self._children.get(values)
                if child is None:
                    if self.kind == "histogram":
                        child = _HistogramChild(self.registry._lock, self.buckets)
                    else:
                        child = _Child(self.registry._lock)
                    self._children[values] = child
        return child

    def quantile(self, quantile: float, **labels: object) -> float:
        """Quantile over one child (with ``labels``) or, label-free, over
        the union of every child's observations."""
        if self.kind != "histogram":
            raise ValueError(f"metric {self.name!r} is a {self.kind}")
        if labels:
            return self.labels(**labels).quantile(quantile)
        merged = [0] * (len(self.buckets) + 1)
        with self.registry._lock:
            for child in self._children.values():
                for index, bucket_count in enumerate(child.bucket_counts):
                    merged[index] += bucket_count
        return quantile_from_buckets(self.buckets, merged, quantile)


@dataclass
class MetricSnapshot:
    """One family's frozen state (plain data: picklable, mergeable)."""

    name: str
    kind: str
    help: str
    labelnames: tuple[str, ...] = ()
    buckets: tuple[float, ...] = ()
    #: counter/gauge: label-values tuple -> value
    samples: dict = field(default_factory=dict)
    #: histogram: label-values tuple -> [bucket_counts, sum, count]
    histograms: dict = field(default_factory=dict)

    def merge(self, other: "MetricSnapshot") -> "MetricSnapshot":
        if (other.kind != self.kind or other.labelnames != self.labelnames
                or other.buckets != self.buckets):
            raise ValueError(
                f"cannot merge metric {self.name!r}: declarations differ "
                f"({self.kind}/{self.labelnames}/{self.buckets} vs "
                f"{other.kind}/{other.labelnames}/{other.buckets})")
        merged = MetricSnapshot(name=self.name, kind=self.kind, help=self.help,
                                labelnames=self.labelnames, buckets=self.buckets,
                                samples=dict(self.samples),
                                histograms={key: [list(counts), total, count]
                                            for key, (counts, total, count)
                                            in self.histograms.items()})
        for key, value in other.samples.items():
            merged.samples[key] = merged.samples.get(key, 0.0) + value
        for key, (counts, total, count) in other.histograms.items():
            mine = merged.histograms.get(key)
            if mine is None:
                merged.histograms[key] = [list(counts), total, count]
            else:
                mine[0] = [a + b for a, b in zip(mine[0], counts)]
                mine[1] += total
                mine[2] += count
        return merged

    def value(self, **labels: object) -> float:
        """One counter/gauge sample (0.0 when the child never fired)."""
        key = tuple(str(labels[name]) for name in self.labelnames)
        return self.samples.get(key, 0.0)

    def total(self) -> float:
        """Sum of every counter/gauge sample across label sets."""
        return sum(self.samples.values())

    def quantile(self, quantile: float, **labels: object) -> float:
        """Quantile of one histogram child, or of all children united."""
        if labels:
            key = tuple(str(labels[name]) for name in self.labelnames)
            entry = self.histograms.get(key)
            if entry is None:
                return 0.0
            return quantile_from_buckets(self.buckets, entry[0], quantile)
        merged = [0] * (len(self.buckets) + 1)
        for counts, _total, _count in self.histograms.values():
            for index, bucket_count in enumerate(counts):
                merged[index] += bucket_count
        return quantile_from_buckets(self.buckets, merged, quantile)


@dataclass
class RegistrySnapshot:
    """A registry's frozen state; ``merge`` is associative + commutative."""

    metrics: dict[str, MetricSnapshot] = field(default_factory=dict)

    def merge(self, other: "RegistrySnapshot") -> "RegistrySnapshot":
        merged = dict(self.metrics)
        for name, metric in other.metrics.items():
            mine = merged.get(name)
            merged[name] = metric if mine is None else mine.merge(metric)
        return RegistrySnapshot(metrics=merged)

    def get(self, name: str) -> MetricSnapshot | None:
        return self.metrics.get(name)

    def __len__(self) -> int:
        return len(self.metrics)


class MetricsRegistry:
    """A thread-safe collection of metric families (see module docstring)."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, MetricFamily] = {}

    def _family(self, kind: str, name: str, help: str,
                labelnames: tuple[str, ...],
                buckets: tuple[float, ...] = ()) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.labelnames}")
            return family
        with self._lock:
            family = self._families.get(name)
            if family is None:
                if kind not in _KINDS:
                    raise ValueError(f"unknown metric kind {kind!r}")
                family = MetricFamily(self, kind, name, help,
                                      tuple(labelnames), tuple(buckets))
                self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = ()) -> MetricFamily:
        return self._family("counter", name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> MetricFamily:
        return self._family("gauge", name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> MetricFamily:
        return self._family("histogram", name, help, labelnames, tuple(buckets))

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    # ------------------------------------------------------------------
    # snapshot / merge shipping
    # ------------------------------------------------------------------

    def snapshot(self) -> RegistrySnapshot:
        """A consistent, picklable copy of every family's current state."""
        with self._lock:
            metrics: dict[str, MetricSnapshot] = {}
            for name, family in self._families.items():
                snap = MetricSnapshot(name=name, kind=family.kind,
                                      help=family.help,
                                      labelnames=family.labelnames,
                                      buckets=family.buckets)
                for values, child in family._children.items():
                    if family.kind == "histogram":
                        snap.histograms[values] = [list(child.bucket_counts),
                                                   child.sum, child.count]
                    else:
                        snap.samples[values] = child.value
                metrics[name] = snap
            return RegistrySnapshot(metrics=metrics)

    def absorb(self, snapshot: RegistrySnapshot) -> None:
        """Fold a shipped snapshot into the live registry (additively)."""
        for name, metric in snapshot.metrics.items():
            family = self._family(metric.kind, name, metric.help,
                                  metric.labelnames, metric.buckets)
            if metric.kind == "histogram":
                for values, (counts, total, count) in metric.histograms.items():
                    child = family.child(values)
                    with self._lock:
                        child.bucket_counts = [a + b for a, b in
                                               zip(child.bucket_counts, counts)]
                        child.sum += total
                        child.count += count
            else:
                for values, value in metric.samples.items():
                    family.child(values).inc(value)
