"""Exposition: Prometheus text rendering and the stdlib-only HTTP endpoint.

:func:`render_prometheus` turns a :class:`~repro.telemetry.metrics
.RegistrySnapshot` into Prometheus text exposition format 0.0.4 (``# HELP``
/ ``# TYPE`` headers, cumulative ``_bucket{le=...}`` histogram series,
``_sum`` / ``_count``).  :class:`TelemetryServer` serves it:

* ``GET /metrics``  → the provider's current snapshot, rendered;
* ``GET /healthz``  → a small JSON health document (200 while the service
  answers at all — liveness, not correctness);

on a ``ThreadingHTTPServer`` daemon thread — pure stdlib, opt-in
(nothing listens unless the embedder starts it), bound to localhost by
default.  ``port=0`` picks a free port; read it back from ``.port``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.telemetry.metrics import MetricSnapshot, RegistrySnapshot

__all__ = ["TelemetryServer", "render_prometheus"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_text(labelnames: tuple[str, ...], values: tuple[str, ...],
                 extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{name}="{_escape_label(value)}"'
             for name, value in zip(labelnames, values)]
    pairs.extend(f'{name}="{_escape_label(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_family(lines: list[str], metric: MetricSnapshot) -> None:
    if metric.help:
        lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
    lines.append(f"# TYPE {metric.name} {metric.kind}")
    if metric.kind == "histogram":
        for values in sorted(metric.histograms):
            counts, total, count = metric.histograms[values]
            cumulative = 0
            for bound, bucket_count in zip(metric.buckets, counts):
                cumulative += bucket_count
                labels = _labels_text(metric.labelnames, values,
                                      extra=(("le", _format_number(bound)),))
                lines.append(f"{metric.name}_bucket{labels} {cumulative}")
            labels = _labels_text(metric.labelnames, values,
                                  extra=(("le", "+Inf"),))
            lines.append(f"{metric.name}_bucket{labels} {count}")
            plain = _labels_text(metric.labelnames, values)
            lines.append(f"{metric.name}_sum{plain} {repr(float(total))}")
            lines.append(f"{metric.name}_count{plain} {count}")
    else:
        for values in sorted(metric.samples):
            labels = _labels_text(metric.labelnames, values)
            lines.append(f"{metric.name}{labels} "
                         f"{_format_number(metric.samples[values])}")


def render_prometheus(snapshot: RegistrySnapshot) -> str:
    """The snapshot in Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for name in sorted(snapshot.metrics):
        _render_family(lines, snapshot.metrics[name])
    return "\n".join(lines) + "\n"


class TelemetryServer:
    """The opt-in ``/metrics`` + ``/healthz`` HTTP endpoint (stdlib only).

    ``snapshot_provider`` is called per ``/metrics`` request (so gauges
    computed at scrape time — snapshot age, feed lag — are current);
    ``health_provider`` (optional) returns the ``/healthz`` JSON document.
    """

    def __init__(self, snapshot_provider: Callable[[], RegistrySnapshot],
                 health_provider: Callable[[], dict] | None = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self._snapshot_provider = snapshot_provider
        self._health_provider = health_provider or (lambda: {"status": "ok"})
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    try:
                        body = render_prometheus(
                            server._snapshot_provider()).encode("utf-8")
                    except Exception as exc:
                        self._fail(exc)
                        return
                    self._reply(200, CONTENT_TYPE, body)
                elif path == "/healthz":
                    try:
                        document = server._health_provider()
                    except Exception as exc:
                        self._fail(exc)
                        return
                    self._reply(200, "application/json",
                                json.dumps(document, sort_keys=True,
                                           default=str).encode("utf-8"))
                else:
                    self._reply(404, "text/plain", b"not found\n")

            def _fail(self, exc: Exception) -> None:
                self._reply(500, "text/plain",
                            f"{type(exc).__name__}: {exc}\n".encode("utf-8"))

            def _reply(self, status: int, content_type: str,
                       body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: object) -> None:
                pass  # silent-ok: per-request stderr chatter is not telemetry

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-telemetry-http",
                                        daemon=True)
        self._thread.start()

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "TelemetryServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
