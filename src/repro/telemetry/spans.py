"""Span tracing: context-manager spans, trace propagation, Chrome export.

A :class:`Tracer` produces a tree of timed :class:`Span` objects.  The
current span is tracked per thread/task (``contextvars``), so ``with
tracer.span("repair.match", tenant="kg"):`` nests naturally wherever it
runs.  Finished *root* spans accumulate on the tracer (bounded ring) and
export as

* **JSON** — the nested span tree (:func:`spans_to_json`);
* **Chrome trace_event format** — ``chrome://tracing`` / Perfetto complete
  events (:func:`spans_to_chrome`).

**Cross-process propagation.**  :meth:`Tracer.current_context` captures the
ambient ``(trace_id, span_id)`` as a plain dict; a worker process builds its
tracer with that dict as ``remote_parent`` so its spans carry the dispatch
site's trace id.  The worker ships its finished spans back (plain dicts,
:meth:`Tracer.export_finished`), and the coordinator calls
:meth:`Tracer.attach_remote` while the dispatching fan-out span is still
open: the worker roots are **re-parented** as children of that span, so one
exported trace shows the fan-out with every worker's shard repair nested
under it — across the spawn boundary.

Clocks: span start times are wall-clock (``time.time``) so spans from
different processes land on one comparable axis; durations are measured
with ``perf_counter`` for resolution.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "spans_to_chrome", "spans_to_json"]

#: finished root spans kept per tracer (oldest dropped first)
MAX_FINISHED_ROOTS = 512

_ids = itertools.count(1)


def _new_id() -> str:
    return f"{os.getpid():x}-{next(_ids):x}"


@dataclass
class Span:
    """One timed operation in a trace tree."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    #: wall-clock epoch seconds at start (cross-process comparable)
    start_time: float = 0.0
    duration: float = 0.0
    attributes: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    #: which process produced the span (pid, or a shard key for workers)
    process: str = ""

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "process": self.process,
            "children": [child.as_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(name=data["name"], trace_id=data["trace_id"],
                   span_id=data["span_id"], parent_id=data.get("parent_id"),
                   start_time=data.get("start_time", 0.0),
                   duration=data.get("duration", 0.0),
                   attributes=dict(data.get("attributes", {})),
                   process=data.get("process", ""),
                   children=[cls.from_dict(child)
                             for child in data.get("children", [])])

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


class Tracer:
    """Collects span trees for one process (see module docstring).

    ``slow_span_seconds`` (when set) warn-logs every span whose duration
    reaches the threshold through :mod:`repro.telemetry.log` — the
    "why was that call slow" breadcrumb in an otherwise silent service.
    """

    def __init__(self, remote_parent: dict | None = None,
                 slow_span_seconds: float | None = None,
                 process: str | None = None) -> None:
        self.remote_parent = remote_parent
        self.slow_span_seconds = slow_span_seconds
        self.process = process if process is not None else str(os.getpid())
        self.finished: list[Span] = []
        self._lock = threading.Lock()
        self._current: ContextVar[Span | None] = ContextVar(
            "repro-telemetry-span", default=None)

    # ------------------------------------------------------------------
    # producing spans
    # ------------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attributes: object):
        """Open one span as a child of the ambient span (or a new root)."""
        parent = self._current.get()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif self.remote_parent is not None:
            trace_id = self.remote_parent["trace_id"]
            parent_id = self.remote_parent["span_id"]
        else:
            trace_id, parent_id = _new_id(), None
        span = Span(name=name, trace_id=trace_id, span_id=_new_id(),
                    parent_id=parent_id, start_time=time.time(),
                    attributes=attributes, process=self.process)
        token = self._current.set(span)
        started = time.perf_counter()
        try:
            yield span
        finally:
            span.duration = time.perf_counter() - started
            self._current.reset(token)
            if parent is not None:
                parent.children.append(span)
            else:
                with self._lock:
                    self.finished.append(span)
                    if len(self.finished) > MAX_FINISHED_ROOTS:
                        del self.finished[:-MAX_FINISHED_ROOTS]
            if self.slow_span_seconds is not None \
                    and span.duration >= self.slow_span_seconds:
                from repro.telemetry.log import get_logger, log_event

                log_event(get_logger("spans"), "warning", "slow-span",
                          span=name, seconds=round(span.duration, 4),
                          **attributes)

    def current_context(self) -> dict | None:
        """The ambient trace context as a picklable dict (None outside any
        span) — hand it to a worker as its tracer's ``remote_parent``."""
        span = self._current.get()
        if span is None:
            return self.remote_parent
        return {"trace_id": span.trace_id, "span_id": span.span_id}

    # ------------------------------------------------------------------
    # shipping spans across the spawn boundary
    # ------------------------------------------------------------------

    def export_finished(self, drain: bool = True) -> list[dict]:
        """Finished root spans as plain dicts (the shippable form)."""
        with self._lock:
            spans = [span.as_dict() for span in self.finished]
            if drain:
                self.finished.clear()
        return spans

    def attach_remote(self, span_dicts: list[dict],
                      process: str | None = None) -> list[Span]:
        """Re-parent shipped worker spans under the ambient span.

        Each shipped root becomes a child of the currently open span (the
        dispatching fan-out span), inheriting its trace id; with no span
        open the roots join :attr:`finished` as their own trees.  Returns
        the re-parented spans.
        """
        parent = self._current.get()
        adopted: list[Span] = []
        for data in span_dicts:
            span = Span.from_dict(data)
            if process is not None:
                for node in span.walk():
                    if not node.process:
                        node.process = process
            if parent is not None:
                span.parent_id = parent.span_id
                old_trace = span.trace_id
                for node in span.walk():
                    if node.trace_id == old_trace:
                        node.trace_id = parent.trace_id
                parent.children.append(span)
            else:
                with self._lock:
                    self.finished.append(span)
            adopted.append(span)
        return adopted

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------

    def roots(self) -> list[Span]:
        with self._lock:
            return list(self.finished)

    def export_json(self) -> list[dict]:
        return spans_to_json(self.roots())

    def export_chrome(self) -> dict:
        return spans_to_chrome(self.roots())


def spans_to_json(spans: list[Span]) -> list[dict]:
    """The nested span-tree JSON export."""
    return [span.as_dict() for span in spans]


def spans_to_chrome(spans: list[Span]) -> dict:
    """Chrome ``trace_event`` export (complete events, microseconds).

    Each distinct ``process`` string gets its own synthetic pid row, so a
    fan-out renders as the coordinator's lane with one lane per worker —
    load the file in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    events: list[dict] = []
    pids: dict[str, int] = {}
    for root in spans:
        for span in root.walk():
            pid = pids.setdefault(span.process or "main", len(pids) + 1)
            events.append({
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": span.start_time * 1_000_000.0,
                "dur": max(span.duration, 0.0) * 1_000_000.0,
                "pid": pid,
                "tid": 1,
                "args": {key: repr(value) if not isinstance(
                    value, (str, int, float, bool, type(None))) else value
                    for key, value in span.attributes.items()},
            })
    metadata = [{"name": "process_name", "ph": "M", "pid": pid, "tid": 1,
                 "args": {"name": f"repro:{process}"}}
                for process, pid in pids.items()]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}
