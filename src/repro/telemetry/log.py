"""Structured logging for the repro tree: one namespace, key=value events.

Everything logs under the ``"repro"`` stdlib logger hierarchy so embedders
configure it with ordinary ``logging`` tooling (handlers, levels,
propagation).  Three conventions:

* :func:`get_logger` — ``get_logger("parallel.pool")`` →
  ``logging.getLogger("repro.parallel.pool")``;
* :func:`log_event` — structured records: a short kebab-case event name
  followed by ``key=value`` pairs (``"replica-stale shard=b0:2
  tenant=kg reason=..."``), machine-grepable and stable;
* :func:`warn_swallowed` — the **required** router for degradation paths
  that would otherwise be ``except Exception: pass``: it emits a
  warn-level event carrying the exception (``tools/lint_silent_except.py``
  fails CI on silent handlers in ``src/`` that bypass this module).

Nothing here installs handlers; with none configured, stdlib's
last-resort handler prints warnings and errors to stderr, which is exactly
the visibility the previously-silent paths need.  :func:`basic_config`
is an opt-in convenience for scripts/examples.
"""

from __future__ import annotations

import logging

__all__ = ["basic_config", "get_logger", "log_event", "tenant_logger",
           "warn_swallowed"]

ROOT_LOGGER_NAME = "repro"

_LEVELS = {"debug": logging.DEBUG, "info": logging.INFO,
           "warning": logging.WARNING, "error": logging.ERROR,
           "critical": logging.CRITICAL}


def get_logger(name: str = "") -> logging.Logger:
    """The ``repro.<name>`` stdlib logger (the bare ``repro`` root for "")."""
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}" if name
                             else ROOT_LOGGER_NAME)


def tenant_logger(name: str, tenant: str) -> logging.LoggerAdapter:
    """A :func:`get_logger` adapter stamping ``tenant=`` on every event."""
    return _TenantAdapter(get_logger(name), {"tenant": tenant})


class _TenantAdapter(logging.LoggerAdapter):
    def process(self, msg, kwargs):
        tenant = self.extra.get("tenant")
        return f"{msg} tenant={_format_value(tenant)}", kwargs


def _format_value(value: object) -> str:
    text = str(value)
    if " " in text or "=" in text or not text:
        return repr(text)
    return text


def log_event(logger: logging.Logger | logging.LoggerAdapter,
              level: int | str, event: str, exc: BaseException | None = None,
              **fields: object) -> None:
    """Emit one structured ``event key=value ...`` record.

    ``exc`` appends ``error=<Type: message>`` — the one-line form; pass
    ``exc_info`` through ``fields``-free keyword logging when a full
    traceback is wanted instead.
    """
    if isinstance(level, str):
        level = _LEVELS[level]
    if not logger.isEnabledFor(level):
        return
    parts = [event]
    parts.extend(f"{key}={_format_value(value)}"
                 for key, value in fields.items())
    if exc is not None:
        parts.append(f"error={_format_value(f'{type(exc).__name__}: {exc}')}")
    logger.log(level, " ".join(parts))


def warn_swallowed(logger: logging.Logger | logging.LoggerAdapter,
                   event: str, exc: BaseException | None = None,
                   **fields: object) -> None:
    """The sanctioned replacement for ``except Exception: pass``.

    Degradation stays graceful — nothing is raised — but the swallowed
    failure becomes a warn-level structured event with enough context
    (tenant/shard/sequence via ``fields``) to diagnose it after the fact.
    """
    log_event(logger, logging.WARNING, event, exc=exc, **fields)


def basic_config(level: int | str = logging.INFO) -> None:
    """Opt-in stderr handler for scripts: timestamped, logger-prefixed."""
    if isinstance(level, str):
        level = _LEVELS[level]
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(level)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s %(message)s"))
        root.addHandler(handler)
