"""``repro.telemetry`` — the unified measurement layer.

One module owns the three observability substrates every layer above shares:

* **metrics** (:mod:`repro.telemetry.metrics`) — a thread-safe registry of
  labeled counters / gauges / fixed-bucket histograms with picklable,
  associatively-mergeable snapshots (shard workers ship theirs back to the
  coordinator);
* **spans** (:mod:`repro.telemetry.spans`) — context-manager span trees
  with trace-context propagation across the spawn boundary, exportable as
  JSON and Chrome ``trace_event`` format;
* **structured logging** (:mod:`repro.telemetry.log`) — ``repro.*`` stdlib
  loggers with ``event key=value`` records and the sanctioned
  :func:`~repro.telemetry.log.warn_swallowed` router for degradation paths;
* **exposition** (:mod:`repro.telemetry.exposition`) — Prometheus text
  rendering and the opt-in stdlib ``/metrics`` + ``/healthz`` endpoint.

**The enablement contract.**  Telemetry is **off by default** and the hot
paths guard every touch with ``if TELEMETRY.enabled:`` — disabled overhead
is one attribute read, no allocation, and repair outcomes are bit-identical
either way (instrumentation only observes; ``benchmarks/check_overhead.py``
gates both properties).  Turn it on with :func:`enable` (or the
``REPRO_TELEMETRY=1`` environment variable, or scoped with
:func:`collecting`); the service layer enables it implicitly when an
embedder starts the metrics endpoint.

Hot-path call shape::

    from repro.telemetry import TELEMETRY, observe, span

    with span("repair.match", tenant=name):         # no-op when disabled
        ...
    if TELEMETRY.enabled:                           # guard the lookup work
        observe("repro_repair_seconds", dt, tenant=name, backend=backend)

The metric catalogue below is the single source of truth for names, kinds,
labels, and help strings (``docs/OBSERVABILITY.md`` documents each).
"""

from __future__ import annotations

import os
from contextlib import contextmanager, nullcontext
from typing import Iterator

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricSnapshot,
    MetricsRegistry,
    RegistrySnapshot,
    quantile_from_buckets,
)
from repro.telemetry.spans import Span, Tracer, spans_to_chrome, spans_to_json

__all__ = [
    "CATALOGUE",
    "DEFAULT_LATENCY_BUCKETS",
    "MetricSnapshot",
    "MetricsRegistry",
    "RegistrySnapshot",
    "Span",
    "TELEMETRY",
    "Tracer",
    "collecting",
    "current_context",
    "disable",
    "enable",
    "gauge_set",
    "inc",
    "observe",
    "quantile_from_buckets",
    "span",
    "spans_to_chrome",
    "spans_to_json",
    "worker_collection",
]

#: name -> (kind, help, labelnames); histograms use DEFAULT_LATENCY_BUCKETS
CATALOGUE: dict[str, tuple[str, str, tuple[str, ...]]] = {
    # session / repair hot path
    "repro_repair_seconds": (
        "histogram", "End-to-end RepairSession.repair() latency",
        ("tenant", "backend")),
    "repro_commit_seconds": (
        "histogram", "RepairSession.commit() latency (merged maintenance)",
        ("tenant", "backend")),
    "repro_repairs_applied_total": (
        "counter", "Repairs applied (equals RepairReport.repairs_applied)",
        ("tenant", "backend")),
    "repro_repairs_failed_total": (
        "counter", "Repairs failed (equals RepairReport.repairs_failed)",
        ("tenant", "backend")),
    "repro_violations_detected_total": (
        "counter", "Violations detected (equals RepairReport counter)",
        ("tenant", "backend")),
    "repro_commits_total": (
        "counter", "Changefeed records published (commits and repairs)",
        ("tenant", "source")),
    # matcher
    "repro_match_seconds": (
        "histogram", "Matcher.find_matches() wall time", ("phase",)),
    "repro_match_nodes_tried_total": (
        "counter", "VF2 nodes tried (equals MatchingStats.nodes_tried)",
        ("tenant", "backend")),
    "repro_matches_found_total": (
        "counter", "Matches found (equals MatchingStats.matches_found)",
        ("tenant", "backend")),
    "repro_maintenance_passes_total": (
        "counter", "Incremental maintenance passes "
        "(equals MatchingStats.maintenance_passes)", ("tenant", "backend")),
    # per-phase attribution (bridged from TimingBreakdown.measure)
    "repro_phase_seconds": (
        "histogram", "Per-phase wall time (index-build, initial-detection, "
        "validation, execution, incremental-maintenance, shard-*)",
        ("phase",)),
    # warm pool
    "repro_pool_spawns_total": (
        "counter", "Worker processes spawned by warm pools", ()),
    "repro_pool_binds_total": (
        "counter", "Full shard payloads bound (cold binds + rebinds)",
        ("shard",)),
    "repro_pool_ships_total": (
        "counter", "Committed deltas shipped to standing replicas",
        ("shard",)),
    "repro_pool_shard_repairs_total": (
        "counter", "Shard repair commands executed", ("shard",)),
    "repro_pool_shard_repair_seconds": (
        "histogram", "Worker-side wall time of one shard repair command",
        ("shard",)),
    "repro_pool_stale_rebinds_total": (
        "counter", "Standing replicas rebound after staleness", ("shard",)),
    "repro_pool_ownership_coverage": (
        "gauge", "Fraction of a warm tenant's nodes owned by their home "
        "shard (the rest settle at the coordinator)", ("tenant",)),
    "repro_pool_shard_balance": (
        "gauge", "Smallest-to-largest owned-core ratio across a warm "
        "tenant's shards (1.0 = perfectly balanced)", ("tenant",)),
    "repro_pool_lease_wait_seconds": (
        "histogram", "Time a coordinator waited for its fair pool lease",
        ("tenant",)),
    # supervision / resilience (docs/RESILIENCE.md)
    "repro_pool_worker_deaths_total": (
        "counter", "Pool workers detected dead or hung by the supervisor "
        "(reason: crash, timeout, simulated)", ("reason",)),
    "repro_pool_respawns_total": (
        "counter", "Dead pool workers replaced by the supervisor", ()),
    "repro_pool_retries_total": (
        "counter", "In-flight shard commands re-driven on a respawned "
        "worker (rebind + one repair retry)", ("shard",)),
    "repro_pool_recovery_seconds": (
        "histogram", "Wall time of one supervisor recovery pass "
        "(reap + respawn + re-drive)", ()),
    "repro_pool_breaker_state": (
        "gauge", "Warm fan-out circuit breaker state "
        "(0=closed, 1=half_open, 2=open)", ()),
    "repro_pool_breaker_transitions_total": (
        "counter", "Circuit breaker state transitions", ("state",)),
    "repro_repair_fallbacks_total": (
        "counter", "Warm repairs degraded to the sequential drain "
        "(reason: pool-failure, breaker-open)", ("tenant", "reason")),
    # durability
    "repro_wal_fsync_seconds": (
        "histogram", "WAL append+fsync latency per committed record",
        ("tenant",)),
    "repro_wal_records_total": (
        "counter", "Records appended to tenant WALs", ("tenant",)),
    "repro_wal_changes_total": (
        "counter", "Graph changes inside appended WAL records", ("tenant",)),
    "repro_snapshot_write_seconds": (
        "histogram", "Snapshot write (serialize+fsync+rename) latency",
        ("tenant",)),
    "repro_snapshots_total": (
        "counter", "Snapshots written", ("tenant",)),
    "repro_snapshot_sequence": (
        "gauge", "Global sequence of the newest snapshot", ("tenant",)),
    "repro_snapshot_age_records": (
        "gauge", "Records committed since the newest snapshot "
        "(the WAL replay a crash would need)", ("tenant",)),
    "repro_recovery_replay_seconds": (
        "histogram", "Per-record replay latency during recovery",
        ("tenant",)),
    "repro_recovery_records_total": (
        "counter", "WAL records replayed by recover()", ("tenant",)),
    "repro_recovery_changes_total": (
        "counter", "Graph changes replayed by recover()", ("tenant",)),
    # service
    "repro_feed_sequence": (
        "gauge", "Newest committed changefeed sequence", ("tenant",)),
    "repro_feed_sequence_lag": (
        "gauge", "Feed records not yet covered by a snapshot "
        "(0 for non-durable tenants)", ("tenant",)),
    "repro_routed_deltas_total": (
        "counter", "Recorded deltas applied through apply_routed()",
        ("tenant",)),
    "repro_tenant_staleness_seconds": (
        "gauge", "Seconds since the tenant's last service-level repair "
        "(since serve when never repaired)", ("tenant",)),
    "repro_tenant_pending_deltas": (
        "gauge", "Committed changefeed records not yet covered by a repair",
        ("tenant",)),
    # ingest front / repair scheduler
    "repro_ingest_submitted_total": (
        "counter", "Edits admitted into a tenant's ingest queue", ("tenant",)),
    "repro_ingest_rejected_total": (
        "counter", "Submissions refused by admission control "
        "(reason: full, timeout, shed, shutdown)", ("tenant", "reason")),
    "repro_ingest_queue_depth": (
        "gauge", "Edits waiting in a tenant's ingest queue", ("tenant",)),
    "repro_ingest_coalesced_total": (
        "counter", "Queued edits coalesced into scheduler commits",
        ("tenant",)),
    "repro_ingest_backoffs_total": (
        "counter", "Repair-backoff windows opened for persistently failing "
        "tenants by the scheduler", ("tenant",)),
    "repro_ingest_commit_to_repaired_seconds": (
        "histogram", "Latency from a commit's changefeed publish to the end "
        "of the repair pass that covered it", ("tenant",)),
    "repro_scheduler_ticks_total": (
        "counter", "Scheduling decisions taken by the repair scheduler", ()),
    "repro_scheduler_repairs_total": (
        "counter", "Repair passes run by the scheduler", ("tenant",)),
    "repro_feed_dropped_records_total": (
        "counter", "Changefeed records dropped by bounded subscriber "
        "buffers (BufferedFeed overflow)", ("tenant",)),
    "repro_swallowed_errors_total": (
        "counter", "Exceptions degraded gracefully instead of raised",
        ("site",)),
}


class TelemetryState:
    """The process-wide telemetry switchboard (one instance: ``TELEMETRY``).

    ``enabled`` is the hot-path guard; ``registry`` and ``tracer`` are the
    live sinks.  Swapping them (see :func:`collecting` /
    :func:`worker_collection`) scopes a measurement without touching the
    instrumented code.
    """

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.tracer = Tracer()


TELEMETRY = TelemetryState()

_NOOP_SPAN = nullcontext()


def enable(slow_span_seconds: float | None = None) -> None:
    """Switch telemetry on for this process (idempotent).

    ``slow_span_seconds`` arms threshold-based slow-span warn logging on
    the current tracer.
    """
    if slow_span_seconds is not None:
        TELEMETRY.tracer.slow_span_seconds = slow_span_seconds
    TELEMETRY.enabled = True


def disable() -> None:
    TELEMETRY.enabled = False


def _family(name: str, kind: str, labels: dict):
    declared = CATALOGUE.get(name)
    if declared is not None:
        declared_kind, help, labelnames = declared
        if declared_kind != kind:
            raise ValueError(f"metric {name!r} is declared as "
                             f"{declared_kind}, used as {kind}")
    else:
        help, labelnames = "", tuple(sorted(labels))
    if kind == "counter":
        return TELEMETRY.registry.counter(name, help, labelnames)
    if kind == "gauge":
        return TELEMETRY.registry.gauge(name, help, labelnames)
    return TELEMETRY.registry.histogram(name, help, labelnames)


def inc(name: str, amount: float = 1.0, **labels: object) -> None:
    """Increment a catalogue counter (call only under the enabled guard)."""
    _family(name, "counter", labels).labels(**labels).inc(amount)


def observe(name: str, value: float, **labels: object) -> None:
    """Observe into a catalogue histogram (call under the enabled guard)."""
    _family(name, "histogram", labels).labels(**labels).observe(value)


def gauge_set(name: str, value: float, **labels: object) -> None:
    """Set a catalogue gauge (call only under the enabled guard)."""
    _family(name, "gauge", labels).labels(**labels).set(value)


def span(name: str, **attributes: object):
    """A tracer span when enabled, a shared no-op context manager when not
    (no allocation on the disabled path)."""
    if not TELEMETRY.enabled:
        return _NOOP_SPAN
    return TELEMETRY.tracer.span(name, **attributes)


def current_context() -> dict | None:
    """The ambient trace context (for handing to a worker), or ``None``."""
    if not TELEMETRY.enabled:
        return None
    return TELEMETRY.tracer.current_context()


@contextmanager
def collecting(slow_span_seconds: float | None = None) \
        -> Iterator[tuple[MetricsRegistry, Tracer]]:
    """Enable telemetry into a *fresh* registry + tracer for a scope.

    The measurement idiom of the tests and benchmarks::

        with telemetry.collecting() as (registry, tracer):
            session.repair()
        p99 = registry.get("repro_repair_seconds").quantile(0.99)

    The previous state (enabled flag, registry, tracer) is restored on
    exit, so scoped collection never leaks into ambient telemetry.
    """
    previous = (TELEMETRY.enabled, TELEMETRY.registry, TELEMETRY.tracer)
    registry = MetricsRegistry()
    tracer = Tracer(slow_span_seconds=slow_span_seconds)
    TELEMETRY.registry = registry
    TELEMETRY.tracer = tracer
    TELEMETRY.enabled = True
    try:
        yield registry, tracer
    finally:
        TELEMETRY.enabled, TELEMETRY.registry, TELEMETRY.tracer = previous


@contextmanager
def worker_collection(context: dict | None, process: str) \
        -> Iterator[dict | None]:
    """Worker-side scoped collection for one shard command.

    Installs a fresh registry plus a tracer whose ``remote_parent`` is the
    coordinator's shipped trace ``context``; yields a result box that holds
    ``{"telemetry": RegistrySnapshot, "spans": [span dicts]}`` after the
    scope ends.  With ``context=None`` (coordinator telemetry disabled)
    the scope is a no-op and the box stays ``None``-valued.
    """
    if context is None:
        yield {"telemetry": None, "spans": []}
        return
    box: dict = {"telemetry": None, "spans": []}
    previous = (TELEMETRY.enabled, TELEMETRY.registry, TELEMETRY.tracer)
    registry = MetricsRegistry()
    tracer = Tracer(remote_parent=context, process=process)
    TELEMETRY.registry = registry
    TELEMETRY.tracer = tracer
    TELEMETRY.enabled = True
    try:
        yield box
    finally:
        TELEMETRY.enabled, TELEMETRY.registry, TELEMETRY.tracer = previous
        box["telemetry"] = registry.snapshot()
        box["spans"] = tracer.export_finished()


if os.environ.get("REPRO_TELEMETRY", "").strip() in {"1", "true", "yes"}:
    enable()
