"""Small shared utilities: id generation, deterministic RNG helpers, timing."""

from repro.utils.ids import IdGenerator, fresh_id
from repro.utils.rng import SeededRNG, ensure_rng
from repro.utils.timing import Stopwatch, TimingBreakdown, timed

__all__ = [
    "IdGenerator",
    "fresh_id",
    "SeededRNG",
    "ensure_rng",
    "Stopwatch",
    "TimingBreakdown",
    "timed",
]
