"""Lightweight timing utilities used by the repair engine and the harness.

The repair algorithms report a per-phase timing breakdown (matching,
planning, execution, index maintenance) so that the ablation experiment (E5)
can attribute runtime to individual optimisations without external profilers.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.telemetry import TELEMETRY as _TELEMETRY
from repro.telemetry import observe as _observe


@dataclass
class Stopwatch:
    """A simple cumulative stopwatch.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     pass
    >>> watch.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        delta = time.perf_counter() - self._started_at
        self.elapsed += delta
        self._started_at = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@dataclass
class TimingBreakdown:
    """Named cumulative timers, e.g. ``{"matching": 1.2, "execution": 0.3}``."""

    timers: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str):
        """Context manager adding the elapsed wall time to timer ``name``.

        Every engine phase already runs under ``measure`` — so this is also
        the telemetry bridge: with telemetry enabled, each measurement is
        observed into the ``repro_phase_seconds{phase=<name>}`` histogram.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timers[name] = self.timers.get(name, 0.0) + elapsed
            if _TELEMETRY.enabled:
                _observe("repro_phase_seconds", elapsed, phase=name)

    def add(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def get(self, name: str) -> float:
        return self.timers.get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self.timers.values())

    def merge(self, other: "TimingBreakdown") -> "TimingBreakdown":
        merged = TimingBreakdown(dict(self.timers))
        for name, seconds in other.timers.items():
            merged.add(name, seconds)
        return merged

    def as_dict(self) -> dict[str, float]:
        return dict(self.timers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.4f}s" for k, v in sorted(self.timers.items()))
        return f"TimingBreakdown({parts})"


@contextmanager
def timed():
    """Context manager yielding a mutable one-element list receiving the elapsed time.

    >>> with timed() as elapsed:
    ...     pass
    >>> elapsed[0] >= 0.0
    True
    """
    box = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start
