"""Seedable random-number helpers used by generators and error injection.

Everything that involves randomness in the library (synthetic datasets, error
injection, random rule generation, baseline tie-breaking) accepts either an
integer seed or an existing :class:`random.Random` instance and converts it
via :func:`ensure_rng`, so experiment runs are fully reproducible.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


class SeededRNG(random.Random):
    """A ``random.Random`` subclass that remembers the seed it was built from."""

    def __init__(self, seed: int | None = None) -> None:
        super().__init__(seed)
        self.seed_value = seed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededRNG(seed={self.seed_value})"


def ensure_rng(seed_or_rng: int | random.Random | None) -> random.Random:
    """Normalise a seed / RNG / ``None`` into a ``random.Random`` instance.

    ``None`` yields a deterministic default (seed 0) rather than entropy from
    the OS: reproducibility by default is more useful for experiments than
    surprise randomness.
    """
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    if seed_or_rng is None:
        return SeededRNG(0)
    return SeededRNG(int(seed_or_rng))


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item according to ``weights`` (need not be normalised)."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    return rng.choices(list(items), weights=list(weights), k=1)[0]


def zipf_weights(n: int, exponent: float = 1.0) -> list[float]:
    """Return ``n`` Zipfian weights ``1/rank**exponent`` (rank starting at 1).

    Used to give synthetic knowledge graphs the heavy-tailed degree and label
    distributions real knowledge graphs exhibit.
    """
    if n <= 0:
        return []
    return [1.0 / ((rank + 1) ** exponent) for rank in range(n)]


def sample_without_replacement(rng: random.Random, items: Iterable[T], k: int) -> list[T]:
    """Sample up to ``k`` distinct items (fewer if the population is smaller)."""
    population = list(items)
    k = min(k, len(population))
    return rng.sample(population, k)
