"""repro — rule-based graph repairing.

A from-scratch Python reproduction of the system described in *"Rule-Based
Graph Repairing: Semantic and Efficient Repairing Methods"* (Cheng, Chen,
Yuan, Wang — ICDE 2018): graph repairing rules (GRRs) over property graphs
with incompleteness / conflict / redundancy semantics, static analysis of
rule sets, and efficient repairing algorithms, together with the synthetic
datasets, error injection, baselines, and experiment harness used to
reproduce the paper's evaluation (see DESIGN.md and EXPERIMENTS.md).

Quick start
-----------
The primary entry point is the transactional :class:`~repro.api.RepairSession`
(package :mod:`repro.api`): open it once, then repair, edit, and reconcile
incrementally for as long as the graph lives::

    from repro import RepairConfig, RepairSession, build_workload, repair_quality

    workload = build_workload("kg", scale=500, error_rate=0.05, seed=0)
    repaired = workload.dirty.copy()

    with RepairSession(repaired, workload.rules,
                       config=RepairConfig.fast()) as session:
        report = session.repair()               # initial cleaning
        print(report.describe())

        with session.transaction() as g:        # later edits, transactional
            g.add_edge("n12", "n3", "bornIn")
        session.commit()                        # ONE incremental pass
        session.repair()                        # fix what the edit broke

    quality = repair_quality(workload.clean, workload.dirty, repaired,
                             workload.ground_truth)
    print(quality.describe())

Batch repairing (`RepairConfig.fast().batched()`) applies independent
violations under one merged maintenance pass; `SessionEvents` streams
progress; `RepairConfig.naive()` / `RepairConfig.baseline()` switch the
backend; `RepairConfig.sharded(workers=N)` fans a repair pass out over
worker processes with deterministic delta merging (``docs/PARALLEL.md``),
and ``warm=True`` keeps those workers and their shard replicas alive across
repair calls.  Sessions are thread-safe and publish every committed change
on a replayable changefeed (``session.deltas()`` / ``on_commit``); the
service layer (``from repro.service import GraphRepairService``) serves
many named sessions concurrently over a shared warm pool
(``docs/SERVICE.md``), and the ingestion front (``from repro.ingest
import IngestFront, AsyncRepairService``) adds bounded edit queues,
admission control, a background repair scheduler, and an asyncio facade
on top (``docs/INGEST.md``).
The legacy one-shot helpers (``repair_graph``, ``RepairEngine``) remain as
deprecation shims over the session — see ``docs/MIGRATION.md``.

The most frequently used names are re-exported here; each subpackage
(`repro.api`, `repro.graph`, `repro.matching`, `repro.rules`,
`repro.analysis`, `repro.repair`, `repro.parallel`, `repro.errors`,
`repro.datasets`, `repro.baselines`, `repro.metrics`, `repro.experiments`)
exposes its full API.
"""

from repro.analysis import analyze_redundancy, analyze_termination, check_consistency
from repro.api import (
    CommitResult,
    CommittedDelta,
    MaintenanceEvent,
    RepairConfig,
    Repairer,
    RepairSession,
    SessionEvents,
    open_session,
    repair_copy,
)
from repro.datasets import build_workload, generate_rules, load_dataset
from repro.errors import ErrorInjector, ErrorProfile, inject_errors
from repro.graph import PropertyGraph
from repro.matching import Matcher, MatcherConfig, Pattern, PatternEdge, PatternNode
from repro.metrics import change_summary, repair_quality
from repro.repair import (
    EngineConfig,
    RepairEngine,
    RepairReport,
    detect_violations,
    repair_graph,
)
from repro.rules import (
    GraphRepairingRule,
    RuleBuilder,
    RuleSet,
    Semantics,
    conflict_rule,
    incompleteness_rule,
    knowledge_graph_rules,
    movie_rules,
    parse_rules,
    redundancy_rule,
    social_rules,
)

__version__ = "0.2.0"

__all__ = [
    "__version__",
    # session API (primary entry point)
    "RepairSession",
    "open_session",
    "repair_copy",
    "RepairConfig",
    "Repairer",
    "SessionEvents",
    "MaintenanceEvent",
    "CommitResult",
    "CommittedDelta",
    # service + ingest layers (heavier, so not eagerly re-exported here:
    # ``from repro.service import GraphRepairService`` and
    # ``from repro.ingest import IngestFront, AsyncRepairService``)
    # graph
    "PropertyGraph",
    # matching
    "Pattern",
    "PatternNode",
    "PatternEdge",
    "Matcher",
    "MatcherConfig",
    # rules
    "GraphRepairingRule",
    "RuleSet",
    "RuleBuilder",
    "Semantics",
    "incompleteness_rule",
    "conflict_rule",
    "redundancy_rule",
    "parse_rules",
    "knowledge_graph_rules",
    "movie_rules",
    "social_rules",
    # analysis
    "check_consistency",
    "analyze_termination",
    "analyze_redundancy",
    # repair (legacy one-shot facade)
    "RepairEngine",
    "EngineConfig",
    "RepairReport",
    "repair_graph",
    "detect_violations",
    # errors & datasets
    "ErrorProfile",
    "ErrorInjector",
    "inject_errors",
    "build_workload",
    "load_dataset",
    "generate_rules",
    # metrics
    "repair_quality",
    "change_summary",
]
