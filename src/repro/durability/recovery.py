"""Tenant durability: WAL-before-ack commit hooks, snapshots, recovery.

:class:`TenantDurability` is the sink a served tenant's changefeed drains
into.  It subscribes to the session's commit hook **ahead of every other
subscriber** (``on_commit(..., prepend=True)``): when a commit (or a repair)
publishes a record, the record is encoded, appended to the tenant's WAL, and
fsync'd *before* any replica sees it and before the committing call returns —
an acknowledged commit is a durable commit.

Sequence spaces: a session numbers its feed from 1 per session lifetime,
but a tenant's *log* spans restarts.  The sink therefore offsets every
session sequence by ``base_sequence`` — the global sequence the tenant's log
had when this session opened (0 for a fresh tenant, the recovered sequence
after :func:`recover`) — and every durable artefact (WAL records, snapshot
names, replication streams) speaks global sequences only.

Every ``snapshot_every`` records the sink snapshots the tenant graph (the
session lock is already held inside the commit hook, so the snapshot is a
consistent cut at an exact global sequence), prunes old snapshots, and
truncates fully-covered WAL segments — recovery cost stays bounded by one
snapshot plus at most ``snapshot_every`` records of replay.

:func:`recover` inverts the pipeline: newest intact snapshot, then exact
(id-preserving) replay of the WAL suffix, yielding a graph element-for-
element equal to the crashed tenant's last acknowledged state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import telemetry
from repro.exceptions import DurabilityError
from repro.telemetry.log import get_logger, warn_swallowed

_log = get_logger("durability")
from repro.graph.delta import replay_delta
from repro.graph.property_graph import PropertyGraph
from repro.durability import codec
from repro.durability.snapshot import (
    latest_snapshot,
    list_snapshots,
    prune_snapshots,
    snapshot_sequence,
    write_snapshot,
)
from repro.durability.wal import (
    DEFAULT_SEGMENT_BYTES,
    WriteAheadLog,
    list_segments,
)


@dataclass(frozen=True)
class DurabilityConfig:
    """How a service persists its tenants.

    ``dir`` is the root directory; each tenant owns the subdirectory
    ``<dir>/<tenant-name>/`` with its WAL segments and snapshots side by
    side.  ``fsync=False`` trades the crash guarantee for speed (tests,
    benchmarks measuring everything but the disk).
    """

    dir: str | Path
    #: records between snapshots (and therefore the bound on replay length)
    snapshot_every: int = 256
    #: WAL segment rotation threshold, bytes
    segment_bytes: int = DEFAULT_SEGMENT_BYTES
    #: fsync every WAL append and snapshot (the crash-safety contract)
    fsync: bool = True
    #: snapshots retained after pruning (min 2: corruption fallback)
    keep_snapshots: int = 2
    #: optional repro.testing.faults.FaultPlan wired into the live WAL
    #: (chaos tests: ENOSPC / torn-frame injection); recovery never
    #: injects — it must observe what the faults left behind
    fault_plan: object = field(default=None, compare=False, repr=False)

    def tenant_dir(self, name: str) -> Path:
        return Path(self.dir) / name


def has_tenant_state(config: DurabilityConfig, name: str) -> bool:
    """True when the tenant's directory holds any durable state."""
    directory = config.tenant_dir(name)
    return directory.is_dir() and (bool(list_segments(directory))
                                   or bool(list_snapshots(directory)))


@dataclass
class RecoveredTenant:
    """The outcome of one :func:`recover` call."""

    name: str
    graph: PropertyGraph
    #: global sequence of the last applied record (the restore point)
    sequence: int
    #: sequence of the snapshot recovery started from
    snapshot_sequence: int
    #: WAL records replayed on top of the snapshot
    records_replayed: int
    #: individual graph changes inside those records
    changes_replayed: int
    #: global sequence of the newest ``"repair"``-source record in the
    #: replayed tail (0 when the tail held none)
    last_repair_sequence: int = 0
    #: ``"commit"``-source records replayed after that repair — the edits a
    #: crash left unreconciled, which the ingest scheduler must treat as
    #: dirty when the tenant is restored
    pending_commit_records: int = 0

    @property
    def known_clean(self) -> bool:
        """True only when the replayed tail *proves* every commit was
        covered by a later repair.  A tenant whose tail is empty (the
        snapshot covered everything) is **not** known clean — the snapshot
        does not record repair coverage, so schedulers seeding from a
        restore must treat uncertainty as dirty.
        """
        return (self.records_replayed > 0
                and self.last_repair_sequence > 0
                and self.pending_commit_records == 0)

    def as_dict(self) -> dict[str, int]:
        return {"sequence": self.sequence,
                "snapshot_sequence": self.snapshot_sequence,
                "records_replayed": self.records_replayed,
                "changes_replayed": self.changes_replayed,
                "last_repair_sequence": self.last_repair_sequence,
                "pending_commit_records": self.pending_commit_records}


def recover(name: str, config: DurabilityConfig) -> RecoveredTenant:
    """Restore one tenant's graph from its snapshot + WAL suffix.

    The WAL is opened writer-style first, so a torn tail from the crash is
    truncated before replay.  Replay is the exact, id-preserving
    :func:`~repro.graph.delta.replay_delta` — merges re-execute their
    recorded outcomes — and the record sequences are checked dense, so a
    gap (a lost segment) fails recovery loudly instead of silently skipping
    history.
    """
    directory = config.tenant_dir(name)
    if not directory.is_dir():
        raise DurabilityError(f"no durable state for tenant {name!r} under "
                              f"{Path(config.dir)}")
    wal = WriteAheadLog(directory, segment_bytes=config.segment_bytes,
                        fsync=config.fsync)
    try:
        found = latest_snapshot(directory)
        if found is None:
            raise DurabilityError(
                f"tenant {name!r} has no intact snapshot under {directory}; "
                "the log alone cannot reconstruct the serving graph")
        graph, sequence, _path = found
        snapshot_seq = sequence
        records = 0
        changes = 0
        last_repair_seq = 0
        pending_commits = 0
        observing = telemetry.TELEMETRY.enabled
        with telemetry.span("durability.recover", tenant=name,
                            snapshot_sequence=snapshot_seq):
            for document in wal.records(after=sequence):
                record_seq, source, delta = codec.decode_record(document)
                if record_seq != sequence + 1:
                    raise DurabilityError(
                        f"gap in tenant {name!r} log: expected sequence "
                        f"{sequence + 1}, found {record_seq}")
                if observing:
                    started = time.perf_counter()
                replay_delta(graph, delta)
                if observing:
                    telemetry.observe("repro_recovery_replay_seconds",
                                      time.perf_counter() - started,
                                      tenant=name)
                    telemetry.inc("repro_recovery_records_total", tenant=name)
                    telemetry.inc("repro_recovery_changes_total", len(delta),
                                  tenant=name)
                sequence = record_seq
                records += 1
                changes += len(delta)
                if source == "repair":
                    last_repair_seq = record_seq
                    pending_commits = 0
                else:
                    pending_commits += 1
    finally:
        wal.close()
    graph.name = name
    return RecoveredTenant(name=name, graph=graph, sequence=sequence,
                           snapshot_sequence=snapshot_seq,
                           records_replayed=records, changes_replayed=changes,
                           last_repair_sequence=last_repair_seq,
                           pending_commit_records=pending_commits)


class TenantDurability:
    """The durable sink of one served tenant (see module docstring).

    Lifecycle: construct, :meth:`bootstrap` (fresh tenants — writes the
    opening snapshot) **or** pass ``base_sequence`` (restored tenants), then
    :meth:`attach` to the live session.  :meth:`close` detaches and releases
    the WAL handle; the durable state stays, ready for :func:`recover`.
    """

    def __init__(self, name: str, config: DurabilityConfig,
                 base_sequence: int = 0) -> None:
        self.name = name
        self.config = config
        self.directory = config.tenant_dir(name)
        self.base_sequence = base_sequence
        self.wal = WriteAheadLog(self.directory,
                                 segment_bytes=config.segment_bytes,
                                 fsync=config.fsync,
                                 fault_plan=config.fault_plan)
        self._session = None
        self._unsubscribe = None
        snapshots = list_snapshots(self.directory)
        self._last_snapshot_seq = (snapshot_sequence(snapshots[-1])
                                   if snapshots else 0)
        self._closed = False
        #: deterministic sink counters (asserted by tests and the
        #: ``recovery-kg`` benchmark scenario)
        self.records_appended = 0
        self.changes_appended = 0
        self.snapshots_written = 0
        self.segments_truncated = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def bootstrap(self, graph: PropertyGraph) -> None:
        """Write the opening snapshot of a *fresh* tenant (sequence 0).

        The WAL replays on top of a known floor; without this snapshot a
        crash before the first periodic snapshot would be unrecoverable.
        """
        if self.wal.last_sequence or list_snapshots(self.directory):
            raise DurabilityError(
                f"tenant {self.name!r} already has durable state under "
                f"{self.directory}; restore it instead of re-serving")
        write_snapshot(self.directory, graph, 0, fsync=self.config.fsync)
        self._last_snapshot_seq = 0

    def attach(self, session) -> None:
        """Hook the session's changefeed (ahead of every other subscriber)."""
        if self._session is not None:
            raise DurabilityError("already attached to a session")
        if session.last_sequence:
            raise DurabilityError(
                "the session already published records this sink never saw; "
                "attach durability before the first commit or repair")
        self._session = session
        self._unsubscribe = session.on_commit(self._on_commit, prepend=True)

    def close(self) -> None:
        """Detach from the session and release the WAL.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._unsubscribe is not None:
            try:
                self._unsubscribe()
            except Exception as exc:
                # the session may already be closed; the sink is shutting
                # down either way, so degrade with a breadcrumb, not a raise
                warn_swallowed(_log, "changefeed-unsubscribe-failed", exc=exc,
                               tenant=self.name,
                               sequence=self.global_sequence)
        self._unsubscribe = None
        self._session = None
        self.wal.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # the commit hook
    # ------------------------------------------------------------------

    @property
    def global_sequence(self) -> int:
        """Global sequence of the newest durable record."""
        return self.wal.last_sequence or self.base_sequence

    @property
    def last_snapshot_sequence(self) -> int:
        """Global sequence of the newest snapshot (the recovery floor)."""
        return self._last_snapshot_seq

    def _on_commit(self, record) -> None:
        """Append one committed record durably (runs under the session lock,
        on the committing thread, before the commit returns).

        An append failure — ENOSPC, a torn write, any I/O error — is
        re-raised as a :class:`DurabilityError` carrying this tenant's name
        and the failing global sequence.  Because this hook is *prepended*
        on the changefeed, the error propagates into the committing call
        itself: the commit fails loudly before its ack could ever resolve,
        and no later subscriber (replica feeds, the ingest front) observes
        a record that is not on disk.
        """
        global_seq = self.base_sequence + record.sequence
        observing = telemetry.TELEMETRY.enabled
        if observing:
            started = time.perf_counter()
        try:
            self.wal.append(codec.encode_record(global_seq, record.source,
                                                record.delta))
        except (DurabilityError, OSError) as exc:
            raise DurabilityError(
                f"tenant {self.name!r}: durable append of sequence "
                f"{global_seq} failed — the commit is NOT acknowledged: "
                f"{exc}", tenant=self.name, sequence=global_seq) from exc
        self.records_appended += 1
        self.changes_appended += len(record.delta)
        if observing:
            telemetry.observe("repro_wal_fsync_seconds",
                              time.perf_counter() - started, tenant=self.name)
            telemetry.inc("repro_wal_records_total", tenant=self.name)
            telemetry.inc("repro_wal_changes_total", len(record.delta),
                          tenant=self.name)
        if global_seq - self._last_snapshot_seq >= self.config.snapshot_every:
            self._snapshot(global_seq)

    def _snapshot(self, global_seq: int) -> None:
        """Snapshot the live graph at ``global_seq`` and truncate the log.

        Called with the session lock held (from inside the commit hook), so
        the graph is exactly the state the record at ``global_seq`` left."""
        observing = telemetry.TELEMETRY.enabled
        if observing:
            started = time.perf_counter()
        with telemetry.span("durability.snapshot", tenant=self.name,
                            sequence=global_seq):
            write_snapshot(self.directory, self._session.graph, global_seq,
                           fsync=self.config.fsync)
        self._last_snapshot_seq = global_seq
        self.snapshots_written += 1
        if observing:
            telemetry.observe("repro_snapshot_write_seconds",
                              time.perf_counter() - started, tenant=self.name)
            telemetry.inc("repro_snapshots_total", tenant=self.name)
            telemetry.gauge_set("repro_snapshot_sequence", global_seq,
                                tenant=self.name)
        prune_snapshots(self.directory, keep=self.config.keep_snapshots)
        self.segments_truncated += self.wal.truncate_through(global_seq)

    def stats(self) -> dict[str, Any]:
        return {"base_sequence": self.base_sequence,
                "global_sequence": self.global_sequence,
                "records_appended": self.records_appended,
                "changes_appended": self.changes_appended,
                "snapshots_written": self.snapshots_written,
                "segments_truncated": self.segments_truncated}
