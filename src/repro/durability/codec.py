"""The versioned wire codec for committed-delta records and graph snapshots.

Everything the durability layer writes — WAL records, snapshot documents,
replication messages — is a JSON document produced here.  JSON alone cannot
round-trip the values a :class:`~repro.graph.delta.GraphChange` carries:
property maps hold ``NaN``/``±inf`` floats, tuples (which JSON would flatten
into lists), bytes, sets, dicts with non-string keys, and — because graph
properties accept any hashable — arbitrary Python objects.  The value codec
wraps every non-JSON-native value in a single-key *tag object*::

    (1, 2)            -> {"$tuple": [1, 2]}
    float("nan")      -> {"$float": "nan"}
    b"\\x00\\x01"       -> {"$bytes": "0001"}
    {1: "a"}          -> {"$dict": [[1, "a"]]}
    SomeHashable()    -> {"$pickle": "<base64>"}

JSON-native scalars, lists, and dicts with plain string keys pass through
untouched (a dict whose keys could be mistaken for a tag is escaped into the
``$dict`` form).  The pickle fallback makes the codec *total* over graph
property values; it is what makes the format a **trusted-environment**
format — see ``docs/DURABILITY.md`` for the security note.

Every top-level document carries ``FORMAT_VERSION``.  Decoders accept any
version up to their own and raise :class:`~repro.exceptions.DurabilityError`
beyond it, so an old reader fails loudly on a new log instead of
misinterpreting it, and a new reader can migrate old versions in place.

The *structural* schema of a change (kind / element ids / detail keys) is
owned by :meth:`GraphChange.to_payload` — this module only supplies the
value encoding, keeping the graph layer free of wire-format concerns.
"""

from __future__ import annotations

import base64
import json
import math
import pickle
from typing import Any, Mapping

from repro.exceptions import DurabilityError
from repro.graph.delta import GraphChange, GraphDelta
from repro.graph.property_graph import PropertyGraph

#: bumped whenever a document produced by this module changes shape
FORMAT_VERSION = 1

_FLOAT_TAGS = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


def encode_value(value: Any) -> Any:
    """Encode one Python value into a JSON-safe document (see module doc)."""
    if value is None or value is True or value is False:
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return {"$float": "nan"}
        if math.isinf(value):
            return {"$float": "inf" if value > 0 else "-inf"}
        return value
    if isinstance(value, str):
        return value
    if isinstance(value, tuple):
        return {"$tuple": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, (set, frozenset)):
        tag = "$set" if isinstance(value, set) else "$frozenset"
        try:  # sort for deterministic output when the members allow it
            members = sorted(value)
        except TypeError:
            members = sorted(value, key=repr)
        return {tag: [encode_value(item) for item in members]}
    if isinstance(value, (bytes, bytearray)):
        return {"$bytes": bytes(value).hex()}
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value) \
                and not any(key.startswith("$") for key in value):
            return {key: encode_value(item) for key, item in value.items()}
        # non-string or tag-shaped keys: escape into an item-list form
        return {"$dict": [[encode_value(key), encode_value(item)]
                          for key, item in value.items()]}
    # the total fallback: any other object (graph properties accept arbitrary
    # hashables) travels pickled — a trusted-environment escape hatch
    try:
        blob = pickle.dumps(value, protocol=pickle.DEFAULT_PROTOCOL)
    except Exception as exc:
        raise DurabilityError(
            f"value of type {type(value).__name__!r} is neither JSON-safe "
            f"nor picklable: {exc}") from exc
    return {"$pickle": base64.b64encode(blob).decode("ascii")}


def decode_value(document: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(document, list):
        return [decode_value(item) for item in document]
    if not isinstance(document, dict):
        return document
    if len(document) == 1:
        (tag, payload), = document.items()
        if tag == "$tuple":
            return tuple(decode_value(item) for item in payload)
        if tag == "$set":
            return {decode_value(item) for item in payload}
        if tag == "$frozenset":
            return frozenset(decode_value(item) for item in payload)
        if tag == "$float":
            try:
                return _FLOAT_TAGS[payload]
            except KeyError:
                raise DurabilityError(
                    f"unknown float tag {payload!r}") from None
        if tag == "$bytes":
            return bytes.fromhex(payload)
        if tag == "$dict":
            return {decode_value(key): decode_value(item)
                    for key, item in payload}
        if tag == "$pickle":
            return pickle.loads(base64.b64decode(payload))
        if tag.startswith("$"):
            raise DurabilityError(f"unknown value tag {tag!r} (written by a "
                                  "newer codec?)")
    return {key: decode_value(item) for key, item in document.items()}


# ---------------------------------------------------------------------------
# changes, deltas, changefeed records
# ---------------------------------------------------------------------------


def encode_change(change: GraphChange) -> dict[str, Any]:
    return change.to_payload(encode_value)


def decode_change(document: Mapping[str, Any]) -> GraphChange:
    try:
        return GraphChange.from_payload(document, decode_value)
    except (KeyError, ValueError) as exc:
        raise DurabilityError(f"undecodable change document: {exc}") from exc


def encode_delta(delta: GraphDelta) -> list[dict[str, Any]]:
    return delta.to_payload(encode_value)


def decode_delta(documents: list[Mapping[str, Any]]) -> GraphDelta:
    return GraphDelta([decode_change(document) for document in documents])


def encode_record(sequence: int, source: str, delta: GraphDelta) -> dict[str, Any]:
    """One changefeed record as a wire document.

    ``sequence`` is the **global** (log) sequence: a session's record
    sequences restart at 1 per session lifetime, so the durability sink
    offsets them by the recovered base before writing (see
    :class:`repro.durability.recovery.TenantDurability`).
    """
    return {"v": FORMAT_VERSION, "seq": int(sequence), "source": source,
            "changes": encode_delta(delta)}


def decode_record(document: Mapping[str, Any]) -> tuple[int, str, GraphDelta]:
    """Invert :func:`encode_record`; returns ``(sequence, source, delta)``."""
    check_version(document, kind="record")
    try:
        return (int(document["seq"]), document["source"],
                decode_delta(document["changes"]))
    except (KeyError, TypeError) as exc:
        raise DurabilityError(f"malformed record document: {exc}") from exc


def check_version(document: Mapping[str, Any], kind: str = "document") -> int:
    """Validate a document's format version; returns it.

    Versions newer than this codec raise — refusing to guess at a future
    format — while every older version remains readable (migration happens
    here, per version, as the format evolves).
    """
    version = document.get("v")
    if not isinstance(version, int) or version < 1:
        raise DurabilityError(f"{kind} carries no format version: "
                              f"{version!r}")
    if version > FORMAT_VERSION:
        raise DurabilityError(
            f"{kind} has format version {version}, newer than this codec's "
            f"{FORMAT_VERSION}; upgrade before reading this log")
    return version


# ---------------------------------------------------------------------------
# graph snapshots
# ---------------------------------------------------------------------------


def encode_graph(graph: PropertyGraph) -> dict[str, Any]:
    """A full graph snapshot document (element-exact, codec-safe values).

    Unlike :func:`repro.graph.io.graph_to_dict` — whose output feeds plain
    ``json.dump`` and therefore silently degrades tuples and refuses NaN
    under strict parsers — every label and property value travels through the
    value codec, and the graph's **id-generator counters** are captured so a
    restored graph continues the same fresh-id stream as the original (ids
    issued-then-removed before the snapshot are invisible in the element
    lists, but must never be re-issued after recovery).
    """
    return {
        "v": FORMAT_VERSION,
        "name": graph.name,
        "id_state": {"node_counter": graph._node_ids.counter,
                     "edge_counter": graph._edge_ids.counter,
                     "namespace": graph.id_namespace},
        "nodes": [{"id": node.id, "label": node.label,
                   "properties": encode_value(dict(node.properties))}
                  for node in graph.nodes()],
        "edges": [{"id": edge.id, "source": edge.source, "target": edge.target,
                   "label": edge.label,
                   "properties": encode_value(dict(edge.properties))}
                  for edge in graph.edges()],
    }


def decode_graph(document: Mapping[str, Any]) -> PropertyGraph:
    """Invert :func:`encode_graph` (element-for-element, id counters included)."""
    check_version(document, kind="graph snapshot")
    id_state = document.get("id_state", {})
    graph = PropertyGraph(name=document.get("name", "graph"),
                          id_namespace=id_state.get("namespace"))
    try:
        for node_doc in document["nodes"]:
            graph.add_node(node_doc["label"],
                           decode_value(node_doc["properties"]),
                           node_id=node_doc["id"])
        for edge_doc in document["edges"]:
            graph.add_edge(edge_doc["source"], edge_doc["target"],
                           edge_doc["label"],
                           decode_value(edge_doc["properties"]),
                           edge_id=edge_doc["id"])
    except KeyError as exc:
        raise DurabilityError(f"snapshot element missing key {exc}") from exc
    graph._node_ids.restore_counter(id_state.get("node_counter", 0))
    graph._edge_ids.restore_counter(id_state.get("edge_counter", 0))
    return graph


# ---------------------------------------------------------------------------
# byte-level helpers (shared by the WAL and the replication stream)
# ---------------------------------------------------------------------------


def dumps(document: Mapping[str, Any]) -> bytes:
    """Serialise one document to compact UTF-8 JSON bytes.

    ``allow_nan=False``: a raw NaN reaching the serialiser means a value
    bypassed the codec — fail here, at write time, not at some future read.
    """
    try:
        return json.dumps(document, separators=(",", ":"),
                          allow_nan=False).encode("utf-8")
    except ValueError as exc:
        raise DurabilityError(f"document is not codec-clean: {exc}") from exc


def loads(payload: bytes) -> Any:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DurabilityError(f"undecodable document payload: {exc}") from exc
