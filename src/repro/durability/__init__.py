"""repro.durability — the persistence and replication layer.

Everything a served tenant needs to survive its process:

* :mod:`~repro.durability.codec` — the versioned wire format every durable
  artefact speaks (WAL records, snapshots, replication frames);
* :mod:`~repro.durability.wal` — the append-only, segmented, checksummed
  write-ahead log with torn-tail truncation;
* :mod:`~repro.durability.snapshot` — atomic periodic graph snapshots that
  bound WAL replay (and allow log truncation);
* :mod:`~repro.durability.recovery` — :class:`TenantDurability`, the
  WAL-before-ack commit sink, and :func:`recover`, the snapshot + exact-replay
  restore path;
* :mod:`~repro.durability.replication` — the changefeed streamed over a
  socket to cross-process :class:`ReadReplica` instances serving match
  traffic.

The service layer wires all of it behind two calls::

    service.serve("kg", graph, rules, durable=DurabilityConfig(dir=root))
    ...                                   # crash, restart
    service.restore("kg", rules, durable=DurabilityConfig(dir=root))
"""

from repro.durability import codec
from repro.durability.wal import DEFAULT_SEGMENT_BYTES, WriteAheadLog
from repro.durability.snapshot import (
    latest_snapshot,
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    write_snapshot,
)
from repro.durability.recovery import (
    DurabilityConfig,
    RecoveredTenant,
    TenantDurability,
    has_tenant_state,
    recover,
)
from repro.durability.replication import (
    ChangefeedServer,
    ReadReplica,
    replica_match_probe,
)

__all__ = [
    "codec",
    "DEFAULT_SEGMENT_BYTES",
    "WriteAheadLog",
    "latest_snapshot",
    "list_snapshots",
    "load_snapshot",
    "prune_snapshots",
    "write_snapshot",
    "DurabilityConfig",
    "RecoveredTenant",
    "TenantDurability",
    "has_tenant_state",
    "recover",
    "ChangefeedServer",
    "ReadReplica",
    "replica_match_probe",
]
