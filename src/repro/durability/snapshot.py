"""Periodic graph snapshots — the recovery floor under the WAL.

A snapshot file holds one tenant's full graph state **as of** a global log
sequence; recovery loads the newest intact snapshot and replays only the WAL
suffix behind it, so restore cost is bounded by one snapshot plus
``snapshot_every`` records regardless of the tenant's age.

File format (``snapshot-<sequence>.snap``), two UTF-8 lines::

    {"v": 1, "sequence": 4031, "crc": 2859410117}
    {"v": 1, "name": "kg", "id_state": {...}, "nodes": [...], "edges": [...]}

Line 1 is a small header carrying the log sequence and the CRC-32 of the
body line; line 2 is the :func:`repro.durability.codec.encode_graph`
document.  A snapshot is written to a ``.tmp`` sibling, fsync'd, and
**renamed into place** — readers can never observe a half-written snapshot
under the real name — then the directory entry is fsync'd.  The CRC guards
against the subtler failure of a snapshot that renamed fine but whose pages
were mangled later (bit rot, lost writes): :func:`latest_snapshot` verifies
and silently falls back to the next-older snapshot, which the pruning policy
(``keep`` ≥ 2) retains for exactly this reason.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path

from repro.exceptions import DurabilityError
from repro.graph.property_graph import PropertyGraph
from repro.durability import codec
from repro.durability.wal import _fsync_directory

_PREFIX = "snapshot-"
_SUFFIX = ".snap"
_SEQ_DIGITS = 12


def snapshot_path(directory: Path, sequence: int) -> Path:
    return directory / f"{_PREFIX}{sequence:0{_SEQ_DIGITS}d}{_SUFFIX}"


def snapshot_sequence(path: Path) -> int:
    name = path.name
    if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
        raise DurabilityError(f"not a snapshot file name: {name!r}")
    try:
        return int(name[len(_PREFIX):-len(_SUFFIX)])
    except ValueError:
        raise DurabilityError(f"unparsable snapshot name: {name!r}") from None


def list_snapshots(directory: Path) -> list[Path]:
    """Snapshot files in ``directory``, oldest first."""
    return sorted(directory.glob(f"{_PREFIX}*{_SUFFIX}"),
                  key=snapshot_sequence)


def write_snapshot(directory: str | Path, graph: PropertyGraph,
                   sequence: int, *, fsync: bool = True) -> Path:
    """Atomically write a snapshot of ``graph`` as of log ``sequence``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    body = codec.dumps(codec.encode_graph(graph))
    header = codec.dumps({"v": codec.FORMAT_VERSION, "sequence": int(sequence),
                          "crc": zlib.crc32(body)})
    path = snapshot_path(directory, sequence)
    temp = path.with_suffix(path.suffix + ".tmp")
    with temp.open("wb") as handle:
        handle.write(header + b"\n" + body + b"\n")
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(temp, path)
    if fsync:
        _fsync_directory(directory)
    return path


def load_snapshot(path: str | Path) -> tuple[PropertyGraph, int]:
    """Load and verify one snapshot; returns ``(graph, sequence)``.

    Raises :class:`~repro.exceptions.DurabilityError` on any integrity
    failure (truncated file, CRC mismatch, undecodable body).
    """
    path = Path(path)
    raw = path.read_bytes()
    newline = raw.find(b"\n")
    if newline < 0:
        raise DurabilityError(f"{path.name}: truncated snapshot (no header)")
    header = codec.loads(raw[:newline])
    codec.check_version(header, kind="snapshot header")
    body = raw[newline + 1:].rstrip(b"\n")
    if zlib.crc32(body) != header.get("crc"):
        raise DurabilityError(f"{path.name}: snapshot body fails its checksum")
    graph = codec.decode_graph(codec.loads(body))
    return graph, int(header["sequence"])


def latest_snapshot(directory: str | Path,
                    ) -> tuple[PropertyGraph, int, Path] | None:
    """Newest *intact* snapshot of ``directory`` (graph, sequence, path).

    Corrupt candidates are skipped, newest-first, so a damaged latest
    snapshot degrades recovery to the previous one plus a longer WAL replay
    instead of failing it.  Returns ``None`` when no intact snapshot exists.
    """
    directory = Path(directory)
    for path in reversed(list_snapshots(directory)):
        try:
            graph, sequence = load_snapshot(path)
        except DurabilityError:
            continue
        return graph, sequence, path
    return None


def prune_snapshots(directory: str | Path, keep: int = 2) -> int:
    """Delete all but the newest ``keep`` snapshots; returns the count.

    ``keep`` below 2 is coerced up: the newest snapshot's fallback (see
    :func:`latest_snapshot`) must survive pruning.
    """
    keep = max(int(keep), 2)
    directory = Path(directory)
    snapshots = list_snapshots(directory)
    deleted = 0
    for path in snapshots[:-keep]:
        path.unlink()
        deleted += 1
    if deleted:
        _fsync_directory(directory)
    return deleted
