"""The append-only, segmented write-ahead log.

One :class:`WriteAheadLog` holds the committed-delta history of one tenant as
a directory of **segment files**::

    wal-000000000001.seg     records 1..417
    wal-000000000418.seg     records 418..902
    wal-000000000903.seg     records 903..        (the open tail segment)

Segments are named by the global sequence of their first record, so ordering
and range queries need only the file names.  Inside a segment, each record is
length-prefixed and checksummed::

    [magic "RWAL1\\n" — once, at offset 0]
    [u32 payload length][u32 crc32(payload)][payload bytes]  × records

with the payload a compact-JSON record document from
:mod:`repro.durability.codec`.  Appends write the frame, flush, and
``fsync`` before returning (configurable off for tests/benchmarks) — the
*write-ahead* half of the contract: when a commit is acknowledged, its
record is on disk.

**Torn-tail truncation.**  A crash mid-append leaves a partial frame (short
length prefix, short payload, or a checksum mismatch) at the end of the last
segment only — earlier segments were sealed by a successful later append.
Opening the log scans the tail segment and truncates it back to the last
intact frame; a bad frame in a *non-tail* segment is real corruption and
raises :class:`~repro.exceptions.DurabilityError` instead of being silently
dropped.

**Rotation and truncation.**  When the tail segment exceeds
``segment_bytes`` the next append seals it and starts a fresh segment.  After
a snapshot at sequence *S*, :meth:`truncate_through` deletes every segment
whose records are **all** ≤ *S* — recovery cost stays bounded by one
snapshot plus the remaining suffix.
"""

from __future__ import annotations

import errno
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Iterator

from repro.exceptions import DurabilityError
from repro.durability import codec
from repro.testing import faults as _faults

MAGIC = b"RWAL1\n"
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)

#: default rotation threshold; small enough that truncation after a snapshot
#: frees space promptly, large enough that a segment amortises many records
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"
_SEQ_DIGITS = 12


def segment_path(directory: Path, first_sequence: int) -> Path:
    return directory / (f"{_SEGMENT_PREFIX}{first_sequence:0{_SEQ_DIGITS}d}"
                        f"{_SEGMENT_SUFFIX}")


def segment_first_sequence(path: Path) -> int:
    stem = path.name
    if not (stem.startswith(_SEGMENT_PREFIX) and stem.endswith(_SEGMENT_SUFFIX)):
        raise DurabilityError(f"not a WAL segment file name: {path.name!r}")
    try:
        return int(stem[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])
    except ValueError:
        raise DurabilityError(f"unparsable WAL segment name: {path.name!r}") from None


def list_segments(directory: Path) -> list[Path]:
    """The segment files of ``directory``, in sequence order."""
    return sorted((path for path in directory.glob(
        f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")),
        key=segment_first_sequence)


def _fsync_directory(directory: Path) -> None:
    """Durably record directory-level changes (new/renamed/deleted files)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # platforms without directory fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def read_segment(path: Path, *, is_tail: bool = False,
                 ) -> tuple[list[dict[str, Any]], int]:
    """Read every intact record of one segment.

    Returns ``(record documents, intact byte length)``.  With
    ``is_tail=True`` a torn or corrupt frame ends the scan quietly (the
    caller truncates to the returned length); otherwise it raises.
    """
    data = path.read_bytes()
    if not data.startswith(MAGIC):
        if is_tail and len(data) < len(MAGIC):
            # the segment file itself was torn mid-creation
            return [], 0
        raise DurabilityError(f"{path.name}: bad WAL segment magic")
    records: list[dict[str, Any]] = []
    offset = len(MAGIC)
    while offset < len(data):
        frame_end = offset + _FRAME.size
        if frame_end > len(data):
            break  # torn length prefix
        length, crc = _FRAME.unpack_from(data, offset)
        payload_end = frame_end + length
        if payload_end > len(data):
            break  # torn payload
        payload = data[frame_end:payload_end]
        if zlib.crc32(payload) != crc:
            break  # corrupt (or torn-then-reused) frame
        try:
            records.append(codec.loads(payload))
        except DurabilityError:
            break
        offset = payload_end
    if offset < len(data) and not is_tail:
        raise DurabilityError(
            f"{path.name}: corrupt record at byte {offset} in a sealed "
            "segment — the log is damaged beyond torn-tail repair")
    return records, offset


class WriteAheadLog:
    """One tenant's durable changefeed log (see module docstring).

    Not thread-safe by itself: the durability sink appends under the
    session's commit lock, which already serialises writers.
    """

    def __init__(self, directory: str | Path, *,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 fsync: bool = True, fault_plan=None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        #: optional repro.testing.faults.FaultPlan; fires the "wal.append"
        #: site before each frame write and "wal.fsync" before each fsync
        self._fault_plan = fault_plan
        self._handle = None
        self._tail_path: Path | None = None
        self._tail_size = 0
        self._last_sequence = 0
        self._recover_tail()

    # ------------------------------------------------------------------
    # open / recover
    # ------------------------------------------------------------------

    def _recover_tail(self) -> None:
        """Scan existing segments; truncate a torn tail; position the writer."""
        segments = list_segments(self.directory)
        if not segments:
            return
        for path in segments[:-1]:
            records, _ = read_segment(path, is_tail=False)
            if records:
                self._last_sequence = int(records[-1]["seq"])
        tail = segments[-1]
        records, intact = read_segment(tail, is_tail=True)
        size = tail.stat().st_size
        if intact < size:
            if intact < len(MAGIC):
                # nothing durable ever made it into this segment
                tail.unlink()
                _fsync_directory(self.directory)
                self._tail_size = 0
                return self._recover_tail() if len(segments) > 1 else None
            with tail.open("rb+") as handle:
                handle.truncate(intact)
                handle.flush()
                os.fsync(handle.fileno())
        if records:
            self._last_sequence = int(records[-1]["seq"])
        self._tail_path = tail
        self._tail_size = intact

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------

    @property
    def last_sequence(self) -> int:
        """Global sequence of the newest durable record (0 when empty)."""
        return self._last_sequence

    def append(self, document: dict[str, Any]) -> int:
        """Durably append one record document; returns its sequence.

        Sequences must be dense and ascending — the log refuses gaps and
        replays, which turns a mis-wired feed subscription into an
        immediate, loud error instead of a silently unrecoverable log.  An
        *empty* log accepts any positive starting sequence: after snapshot
        truncation has released every segment, the next record legitimately
        resumes mid-history.
        """
        sequence = int(document.get("seq", 0))
        if self._last_sequence == 0 and self._tail_path is None:
            if sequence < 1:
                raise DurabilityError(
                    f"WAL sequences start at 1, got {sequence}")
            self._last_sequence = sequence - 1
        if sequence != self._last_sequence + 1:
            raise DurabilityError(
                f"out-of-order WAL append: expected sequence "
                f"{self._last_sequence + 1}, got {sequence}")
        payload = codec.dumps(document)
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        try:
            handle = self._writer_for(sequence)
            if self._fault_plan is not None:
                self._inject(self._fault_plan.take("wal.append"), handle,
                             frame)
            handle.write(frame)
            handle.flush()
            if self.fsync:
                if self._fault_plan is not None:
                    self._inject(self._fault_plan.take("wal.fsync"), handle,
                                 frame)
                os.fsync(handle.fileno())
        except OSError as exc:
            # an I/O failure (ENOSPC, EIO, a yanked disk) must surface as a
            # loud commit failure, not an anonymous OSError swallowed
            # somewhere above the ack; the handle position is now suspect,
            # so force a reopen (and a tail re-scan on recovery)
            self._seal_broken_tail()
            raise DurabilityError(
                f"WAL append failed at sequence {sequence} in "
                f"{self.directory}: {exc}", sequence=sequence) from exc
        self._tail_size += len(frame)
        self._last_sequence = sequence
        return sequence

    def _seal_broken_tail(self) -> None:
        """Drop the open handle after a failed write; best-effort truncate
        the tail back to its last intact length (a partial frame may be on
        disk).  Failures here stay quiet — the original write error is
        already on its way up, and the next open's torn-tail recovery
        re-does this truncation from a clean scan anyway."""
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # silent-ok: surfacing the write error instead
                pass
            self._handle = None
        if self._tail_path is None or not self._tail_path.exists():
            return
        try:
            if self._tail_size < self._tail_path.stat().st_size:
                with self._tail_path.open("rb+") as handle:
                    handle.truncate(self._tail_size)
                    handle.flush()
                    os.fsync(handle.fileno())
        except OSError:  # silent-ok: next open re-truncates from a scan
            pass

    def _inject(self, fault, handle, frame: bytes) -> None:
        """Honour one injected WAL fault (see repro.testing.faults).

        ``torn`` writes (and syncs) a partial frame before raising — the
        on-disk image a power cut mid-append leaves, which the next open's
        torn-tail truncation must repair.
        """
        if fault is None:
            return
        if fault.kind == "torn":
            handle.write(frame[:max(1, len(frame) // 2)])
            handle.flush()
            os.fsync(handle.fileno())
            raise OSError(errno.EIO, "injected fault: torn WAL frame")
        _faults.perform(fault)

    def _writer_for(self, sequence: int):
        """The open tail handle, rotating to a fresh segment when full."""
        if self._handle is not None and self._tail_size >= self.segment_bytes:
            self._seal_tail()
        if self._handle is None:
            if self._tail_path is not None \
                    and self._tail_size < self.segment_bytes:
                self._handle = self._tail_path.open("ab")
            else:
                self._tail_path = segment_path(self.directory, sequence)
                if self._tail_path.exists():
                    raise DurabilityError(
                        f"segment {self._tail_path.name} already exists")
                self._handle = self._tail_path.open("ab")
                self._handle.write(MAGIC)
                self._handle.flush()
                if self.fsync:
                    os.fsync(self._handle.fileno())
                    _fsync_directory(self.directory)
                self._tail_size = len(MAGIC)
        return self._handle

    def _seal_tail(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._tail_path = None
        self._tail_size = self.segment_bytes  # force a fresh segment next

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def records(self, after: int = 0) -> Iterator[dict[str, Any]]:
        """Record documents with ``seq > after``, in sequence order.

        Segments wholly below the cut are skipped by file name alone.
        """
        segments = list_segments(self.directory)
        for index, path in enumerate(segments):
            if index + 1 < len(segments) \
                    and segment_first_sequence(segments[index + 1]) <= after + 1:
                continue  # every record here is <= after
            is_tail = index == len(segments) - 1
            records, _ = read_segment(path, is_tail=is_tail)
            for document in records:
                if int(document["seq"]) > after:
                    yield document

    # ------------------------------------------------------------------
    # truncation / lifecycle
    # ------------------------------------------------------------------

    def truncate_through(self, sequence: int) -> int:
        """Delete segments whose records are all ≤ ``sequence``.

        Called after a snapshot at ``sequence`` — those records can never be
        needed again.  The segment *containing* ``sequence`` survives unless
        its successor starts at ``sequence + 1`` or below.  Returns the
        number of segments deleted.
        """
        segments = list_segments(self.directory)
        deleted = 0
        for index, path in enumerate(segments):
            if index + 1 >= len(segments):
                break  # never delete the open tail segment
            if segment_first_sequence(segments[index + 1]) > sequence + 1:
                break
            path.unlink()
            deleted += 1
        if deleted:
            _fsync_directory(self.directory)
        return deleted

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
