"""Cross-process replication: the changefeed over a socket.

The missing half of horizontal read scaling: a
:class:`ChangefeedServer` runs next to the primary
:class:`~repro.service.GraphRepairService` and streams each published
tenant's committed-delta feed to any number of connected replicas — in other
processes, or other machines — while a :class:`ReadReplica` maintains a live,
exactly-replayed copy of the tenant graph and serves match/query traffic
from it.  The primary keeps repairing; reads scale out.

Wire protocol (all messages are length-prefixed compact-JSON frames,
``[u32 length][payload]``, values encoded by
:mod:`repro.durability.codec`):

* client → server, once: ``{"v": 1, "tenant": "kg", "after": 0}``
* server → client: ``{"type": "snapshot", "sequence": G, "graph": {...}}``
  (skipped when ``after`` is already current), then an unbounded stream of
  ``{"type": "record", "record": {...}}`` — global sequences, dense.

The server captures the snapshot **under the tenant session's lock** (via
the public ``transaction()`` context manager, which holds it) after having
subscribed to the feed, so the snapshot sequence and the record stream can
neither miss nor double-apply a commit: records at or below the snapshot
sequence are de-duplicated client-side by sequence number.

**Scoped replicas.**  A replica may subscribe to a *node subset* (e.g. one
region of a huge tenant).  It then reuses the warm-pool projection machinery
— :class:`repro.parallel.replica.ReplicaView` over
:func:`~repro.parallel.replica.project_delta` — to filter each record down
to its slice, adopting created nodes that attach to it; when a change cannot
be expressed on the slice (a boundary-crossing edge, a straddling merge) the
view goes stale and the replica transparently **rebinds**: reconnects,
takes a fresh snapshot, re-derives its slice, and streams on.
"""

from __future__ import annotations

import socket
import struct
import threading
from queue import Empty, Queue
from typing import Any, Callable, Iterable

from repro.exceptions import ReplicationError
from repro.graph.property_graph import PropertyGraph
from repro.matching.matcher import Matcher, MatcherConfig
from repro.parallel.replica import ReplicaView
from repro.durability import codec

_LEN = struct.Struct("<I")
#: refuse absurd frames instead of attempting a multi-GiB recv
_MAX_FRAME = 512 * 1024 * 1024


def send_frame(sock: socket.socket, document: dict[str, Any]) -> None:
    payload = codec.dumps(document)
    sock.sendall(_LEN.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _LEN.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > _MAX_FRAME:
        raise ReplicationError(f"frame of {length} bytes exceeds the limit")
    payload = _recv_exact(sock, length, eof_ok=False)
    return codec.loads(payload)


def _recv_exact(sock: socket.socket, count: int, eof_ok: bool) -> bytes | None:
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout:
            if remaining == count and eof_ok:
                raise  # idle at a frame boundary — the caller's business
            # a half-read frame cannot be resumed by the caller's retry loop
            raise ReplicationError("timed out mid-frame") from None
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ReplicationError("peer closed the stream mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class _TenantFeed:
    """One published tenant: its session plus the global-sequence offset."""

    def __init__(self, session, base_sequence: int) -> None:
        self.session = session
        self.base_sequence = base_sequence


class ChangefeedServer:
    """Streams published tenants' committed-delta feeds to replicas.

    Runs an accept loop on a daemon thread plus one streaming thread per
    connected replica.  ``base_sequence`` at :meth:`publish` aligns the
    stream with the tenant's durable log (pass the
    :class:`~repro.durability.recovery.TenantDurability` base for restored
    tenants); without durability it defaults to 0 and global == session
    sequences.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._tenants: dict[str, _TenantFeed] = {}
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-changefeed-accept",
            daemon=True)
        self._accept_thread.start()

    @property
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` replicas connect to."""
        return self._listener.getsockname()[:2]

    def publish(self, name: str, session, base_sequence: int = 0) -> None:
        """Start streaming ``session``'s feed as tenant ``name``."""
        with self._lock:
            if name in self._tenants:
                raise ReplicationError(f"tenant {name!r} is already published")
            self._tenants[name] = _TenantFeed(session, base_sequence)

    def unpublish(self, name: str) -> None:
        with self._lock:
            self._tenants.pop(name, None)

    def close(self) -> None:
        """Stop accepting and tear down every stream.  Idempotent."""
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=5.0)
        for thread in list(self._threads):
            thread.join(timeout=5.0)

    def __enter__(self) -> "ChangefeedServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # server internals
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True,
                                      name="repro-changefeed-stream")
            self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        unsubscribe = None
        try:
            conn.settimeout(30.0)
            request = recv_frame(conn)
            if request is None:
                return
            codec.check_version(request, kind="subscription request")
            name = request.get("tenant")
            after = int(request.get("after", 0))
            with self._lock:
                feed = self._tenants.get(name)
            if feed is None:
                send_frame(conn, {"type": "error",
                                  "message": f"unknown tenant {name!r}"})
                return
            session, base = feed.session, feed.base_sequence

            live: Queue = Queue()
            unsubscribe = session.on_commit(live.put)
            # capture the cut under the session lock: the transaction()
            # context holds it, so `capture_seq` and the snapshot agree and
            # every record after the cut is already flowing into `live`
            with session.transaction() as graph:
                capture_seq = base + session.last_sequence
                snapshot_doc = None
                if after < capture_seq or after == 0:
                    snapshot_doc = codec.encode_graph(graph)
            if snapshot_doc is not None:
                send_frame(conn, {"type": "snapshot", "v": codec.FORMAT_VERSION,
                                  "sequence": capture_seq,
                                  "graph": snapshot_doc})
                sent_through = capture_seq
            else:
                sent_through = after
            conn.settimeout(0.2)
            while not self._closed.is_set():
                try:
                    record = live.get(timeout=0.2)
                except Empty:
                    # liveness probe: detect a gone replica without records
                    if self._peer_gone(conn):
                        return
                    continue
                global_seq = base + record.sequence
                if global_seq <= sent_through:
                    continue  # published before the cut, already in snapshot
                conn.settimeout(30.0)  # the 0.2s probe timeout is recv-only
                send_frame(conn, {
                    "type": "record",
                    "record": codec.encode_record(global_seq, record.source,
                                                  record.delta)})
                sent_through = global_seq
        except (ReplicationError, OSError):
            pass  # replica went away; nothing to clean but the subscription
        finally:
            if unsubscribe is not None:
                unsubscribe()
            try:
                conn.close()
            except OSError:
                pass

    @staticmethod
    def _peer_gone(conn: socket.socket) -> bool:
        try:
            conn.setblocking(False)
            chunk = conn.recv(1)
            return chunk == b""  # orderly shutdown from the peer
        except (BlockingIOError, InterruptedError):
            return False
        except OSError:
            return True
        finally:
            conn.setblocking(True)
            conn.settimeout(0.2)


class ReadReplica:
    """A live, exactly-replayed copy of one tenant graph in this process.

    Connects, applies the snapshot, then replays records as they arrive.
    :meth:`catch_up` drains the stream to a target sequence (or until the
    stream idles); :meth:`find_matches` / :meth:`matcher` serve read traffic
    from the replica graph — in a separate process from the primary, this is
    the horizontal read path.

    With ``scope`` (a node-id set) the replica holds only the induced
    subgraph over its slice and projects each record through
    :class:`~repro.parallel.replica.ReplicaView`; an inexpressible change
    triggers a transparent rebind (fresh snapshot, re-derived slice).
    """

    def __init__(self, address: tuple[str, int], tenant: str,
                 scope: Iterable[str] | None = None,
                 timeout: float = 30.0) -> None:
        self.address = (address[0], int(address[1]))
        self.tenant = tenant
        self.scope = set(scope) if scope is not None else None
        self.timeout = timeout
        self.graph: PropertyGraph | None = None
        self.sequence = 0
        #: records applied (scoped mode: records *projected*, shipped or not)
        self.records_applied = 0
        self.rebinds = 0
        self._view: ReplicaView | None = None
        self._sock: socket.socket | None = None
        self._connect()

    # ------------------------------------------------------------------
    # stream handling
    # ------------------------------------------------------------------

    def _connect(self) -> None:
        self.close()
        sock = socket.create_connection(self.address, timeout=self.timeout)
        send_frame(sock, {"v": codec.FORMAT_VERSION, "tenant": self.tenant,
                          "after": 0})
        message = recv_frame(sock)
        if message is None:
            raise ReplicationError("primary closed the stream before the "
                                   "snapshot")
        if message.get("type") == "error":
            raise ReplicationError(message.get("message", "subscription "
                                                          "refused"))
        if message.get("type") != "snapshot":
            raise ReplicationError(
                f"expected a snapshot frame, got {message.get('type')!r}")
        graph = codec.decode_graph(message["graph"])
        self.sequence = int(message["sequence"])
        if self.scope is not None:
            members = self.scope & set(graph.node_ids())
            self._view = ReplicaView(members)
            graph = graph.subgraph(members, name=f"{self.tenant}-scope")
        self.graph = graph
        self.graph.name = self.graph.name or self.tenant
        self._sock = sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ReadReplica":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def catch_up(self, until_sequence: int | None = None,
                 timeout: float = 30.0, idle: float = 0.3) -> int:
        """Apply buffered records; returns the replica's global sequence.

        With ``until_sequence`` the call blocks (up to ``timeout``) until the
        replica has applied that sequence, raising
        :class:`~repro.exceptions.ReplicationError` on timeout; without it,
        it drains until the stream has been idle for ``idle`` seconds.
        """
        deadline = threading.Event()
        timer = threading.Timer(timeout, deadline.set)
        timer.daemon = True
        timer.start()
        try:
            while True:
                if until_sequence is not None \
                        and self.sequence >= until_sequence:
                    return self.sequence
                self._sock.settimeout(idle if until_sequence is None else 0.2)
                try:
                    message = recv_frame(self._sock)
                except socket.timeout:
                    if until_sequence is None:
                        return self.sequence
                    if deadline.is_set():
                        raise ReplicationError(
                            f"timed out at sequence {self.sequence}, waiting "
                            f"for {until_sequence}") from None
                    continue
                if message is None:
                    if until_sequence is None:
                        return self.sequence
                    raise ReplicationError(
                        "primary closed the stream at sequence "
                        f"{self.sequence}, before {until_sequence}")
                self._apply(message)
        finally:
            timer.cancel()

    def _apply(self, message: dict[str, Any]) -> None:
        if message.get("type") != "record":
            raise ReplicationError(
                f"unexpected frame type {message.get('type')!r} mid-stream")
        sequence, _source, delta = codec.decode_record(message["record"])
        if sequence <= self.sequence:
            return  # duplicate of the snapshot cut
        if sequence != self.sequence + 1:
            raise ReplicationError(
                f"gap in the stream: expected {self.sequence + 1}, got "
                f"{sequence}")
        if self._view is None:
            delta and self._replay(delta)
        else:
            projection = self._view.project(delta)
            if projection.stale:
                self.rebinds += 1
                self._connect()  # fresh snapshot; sequence resets forward
                return
            if projection.shipped:
                self._replay(projection.shipped)
        self.sequence = sequence
        self.records_applied += 1

    def _replay(self, delta) -> None:
        from repro.graph.delta import replay_delta

        replay_delta(self.graph, delta)

    # ------------------------------------------------------------------
    # serving reads
    # ------------------------------------------------------------------

    def matcher(self) -> Matcher:
        """A fresh optimised matcher over the replica graph."""
        return Matcher(self.graph, MatcherConfig.optimized(),
                       maintain_index=False)

    def find_matches(self, pattern) -> list:
        with_matcher = self.matcher()
        try:
            return with_matcher.find_matches(pattern)
        finally:
            with_matcher.close()

    def match_keys(self, patterns: Iterable) -> dict[str, list]:
        """Sorted match keys per pattern name — the comparable read result
        the replica-equivalence tests and probes assert on."""
        keys: dict[str, list] = {}
        matcher = self.matcher()
        try:
            for pattern in patterns:
                keys[pattern.name] = sorted(
                    repr(match.key()) for match in matcher.find_matches(pattern))
        finally:
            matcher.close()
        return keys


def replica_match_probe(address: tuple[str, int], tenant: str, rules,
                        until_sequence: int, result_queue) -> None:
    """Spawn-process entry point: connect a replica, catch up to
    ``until_sequence``, serve one match pass, report the keys back.

    Top-level (spawn-picklable) so the separate-process replica tests and
    the crash-recovery smoke drive a *real* second process:
    ``Process(target=replica_match_probe, args=(addr, "kg", rules, seq, q))``.
    """
    try:
        with ReadReplica(address, tenant) as replica:
            replica.catch_up(until_sequence=until_sequence)
            result_queue.put(("ok", {
                "sequence": replica.sequence,
                "nodes": replica.graph.num_nodes,
                "edges": replica.graph.num_edges,
                "match_keys": replica.match_keys(
                    [rule.pattern for rule in rules]),
            }))
    except BaseException as exc:  # surface the failure to the parent
        result_queue.put(("error", f"{type(exc).__name__}: {exc}"))
