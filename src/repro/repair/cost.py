"""Repair cost model.

The paper follows the *minimal change* principle: among the repairs that fix
a violation, prefer the one that perturbs the graph least.  Rules in this
library have a fixed operation list, so the planner's job is only to order
pending violations; nevertheless a cost estimate is useful to (a) prefer
cheap repairs when priorities tie and (b) report the total change volume.

Costs follow the same weights as the graph edit distance
(:mod:`repro.graph.edit_distance`): node-level changes cost more than
edge-level changes, and deletions of matched nodes additionally charge for the
incident edges that disappear with them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.property_graph import PropertyGraph
from repro.matching.pattern import Match
from repro.rules.grr import GraphRepairingRule
from repro.rules.operations import (
    AddEdge,
    AddNode,
    DeleteEdge,
    DeleteNode,
    MergeNodes,
    UpdateEdge,
    UpdateNode,
)


@dataclass(frozen=True)
class CostModel:
    """Unit costs per elementary change caused by a repair."""

    add_node: float = 1.0
    add_edge: float = 1.0
    delete_node: float = 1.5
    delete_edge: float = 1.0
    update: float = 0.5
    merge: float = 1.0

    def estimate(self, graph: PropertyGraph, rule: GraphRepairingRule,
                 match: Match) -> float:
        """Estimated cost of applying ``rule`` at ``match`` on ``graph``.

        The estimate inspects the current graph (degree of nodes about to be
        deleted or merged) but does not simulate the repair.
        """
        total = 0.0
        for operation in rule.operations:
            if isinstance(operation, AddNode):
                total += self.add_node
            elif isinstance(operation, AddEdge):
                total += self.add_edge
            elif isinstance(operation, DeleteEdge):
                total += self.delete_edge
            elif isinstance(operation, DeleteNode):
                total += self.delete_node
                node_id = match.node_bindings.get(operation.variable)
                if node_id is not None and graph.has_node(node_id):
                    total += self.delete_edge * graph.degree(node_id)
            elif isinstance(operation, MergeNodes):
                total += self.merge
                merged_id = match.node_bindings.get(operation.merge)
                if merged_id is not None and graph.has_node(merged_id):
                    # redirected edges are cheap; duplicates dropped cost like deletes
                    total += 0.1 * graph.degree(merged_id)
            elif isinstance(operation, (UpdateNode, UpdateEdge)):
                changes = len(operation.set_properties) + len(operation.remove_keys)
                total += self.update * max(changes, 1)
        return total


DEFAULT_COST_MODEL = CostModel()
