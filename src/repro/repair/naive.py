"""The naive (baseline) repairing algorithm.

``NaiveRepairer`` is the straightforward fixpoint loop the paper compares its
efficient algorithm against:

1. enumerate **all** violations of **all** rules on the **whole** graph;
2. sort them (priority, then estimated cost, then detection order);
3. apply them one by one, re-validating each immediately before applying
   (an earlier repair in the same round may have made it obsolete);
4. if anything changed, go back to 1 — full re-detection from scratch.

Correct and simple, but every round pays the full subgraph-matching bill,
which is what makes it slow on large graphs (experiments E2/E3).  Its
fixpoint semantics are identical to the fast repairer's, which is why the two
produce the same repair quality in E1/E4 — only the runtime differs.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from repro.exceptions import RepairBudgetExceeded
from repro.graph.property_graph import PropertyGraph
from repro.matching.matcher import Matcher, MatcherConfig
from repro.repair.config import RepairKnobs
from repro.repair.detector import ViolationDetector
from repro.repair.events import MaintenanceEvent
from repro.repair.executor import RepairExecutor
from repro.repair.report import RepairReport
from repro.repair.violation import Violation, ViolationStatus, sort_key
from repro.rules.grr import RuleSet


@dataclass
class NaiveRepairConfig(RepairKnobs):
    """Budgets and matching configuration of the naive algorithm.

    Inherits the shared cost/ordering/budget knobs from
    :class:`~repro.repair.config.RepairKnobs`.
    """

    matcher_config: MatcherConfig = field(default_factory=MatcherConfig.naive)
    # keyword-only below (see EngineConfig): the shared knobs moved to the
    # base, so trailing positional binding would silently change meaning
    __: dataclasses.KW_ONLY
    max_rounds: int = 100
    raise_on_budget: bool = False


class NaiveRepairer:
    """Fixpoint repair with full re-detection every round."""

    def __init__(self, config: NaiveRepairConfig | None = None, events=None) -> None:
        self.config = config or NaiveRepairConfig()
        self.events = events

    def repair(self, graph: PropertyGraph, rules: RuleSet) -> RepairReport:
        """Repair ``graph`` in place; returns the :class:`RepairReport`."""
        config = self.config
        report = RepairReport(method="naive", graph_name=graph.name,
                              rule_set_name=rules.name,
                              initial_nodes=graph.num_nodes,
                              initial_edges=graph.num_edges)
        started = time.perf_counter()
        executor = RepairExecutor(graph, cost_model=config.cost_model)
        seen_violations: set[tuple] = set()
        failed_keys: set[tuple] = set()
        on_violation = getattr(self.events, "on_violation", None)
        on_repair_applied = getattr(self.events, "on_repair_applied", None)
        on_maintenance = getattr(self.events, "on_maintenance", None)

        for round_index in range(config.max_rounds):
            report.rounds = round_index + 1
            matcher = Matcher(graph, config.matcher_config)
            detector = ViolationDetector(graph, rules, matcher=matcher,
                                         match_limit_per_rule=config.match_limit_per_rule)
            with report.timings.measure("detection"):
                detection = detector.detect()
            report.matches_enumerated += detection.matches_enumerated
            newly_detected = 0
            for violation in detection:
                if violation.key() not in seen_violations:
                    seen_violations.add(violation.key())
                    report.violations_detected += 1
                    newly_detected += 1
                    if on_violation is not None:
                        on_violation(violation)
            if on_maintenance is not None:
                # discovered counts *new* violation identities only, matching
                # the fast backend's newly-queued semantics; passes=0 because
                # a full re-detection is not an incremental maintenance pass
                on_maintenance(MaintenanceEvent(source="detection",
                                                discovered=newly_detected,
                                                passes=0))

            pending = [violation for violation in detection
                       if violation.key() not in failed_keys]
            if not pending:
                report.reached_fixpoint = True
                report.remaining_violations = sum(
                    1 for violation in detection if violation.key() in failed_keys)
                report.matching_stats.merge(matcher.stats)
                matcher.close()
                break

            ordered = sorted(
                ((config.cost_model.estimate(graph, violation.rule, violation.match),
                  sequence, violation)
                 for sequence, violation in enumerate(pending)),
                key=lambda item: sort_key(item[2], cost=item[0], sequence=item[1]))

            applied_this_round = 0
            for cost, _sequence, violation in ordered:
                if config.max_repairs is not None and \
                        report.repairs_applied >= config.max_repairs:
                    break
                with report.timings.measure("validation"):
                    still_valid = violation.is_still_valid(graph, matcher)
                if not still_valid:
                    violation.status = ViolationStatus.OBSOLETE
                    report.repairs_obsolete += 1
                    continue
                with report.timings.measure("execution"):
                    outcome = executor.apply(violation.rule, violation.match)
                if outcome.applied:
                    violation.status = ViolationStatus.REPAIRED
                    report.repairs_applied += 1
                    applied_this_round += 1
                    if on_repair_applied is not None:
                        on_repair_applied(violation, outcome)
                else:
                    violation.status = ViolationStatus.FAILED
                    report.repairs_failed += 1
                    failed_keys.add(violation.key())
            report.matching_stats.merge(matcher.stats)
            matcher.close()

            if config.max_repairs is not None and report.repairs_applied >= config.max_repairs:
                break
            if applied_this_round == 0:
                # Nothing applied although violations remain (all failed/obsolete):
                # a further round would not make progress.
                report.remaining_violations = len(pending)
                report.reached_fixpoint = False
                break
        else:
            if config.raise_on_budget:
                raise RepairBudgetExceeded(
                    f"naive repair did not reach a fixpoint in {config.max_rounds} rounds",
                    iterations=config.max_rounds)

        if not report.reached_fixpoint and report.remaining_violations == 0:
            # Budget ended the loop; count what is left with one last detection.
            with report.timings.measure("final-check"):
                final_matcher = Matcher(graph, config.matcher_config)
                final_detection = ViolationDetector(
                    graph, rules, matcher=final_matcher,
                    match_limit_per_rule=config.match_limit_per_rule).detect()
                report.matching_stats.merge(final_matcher.stats)
                final_matcher.close()
            report.remaining_violations = len(final_detection)
            report.reached_fixpoint = report.remaining_violations == 0

        report.log = executor.log
        report.elapsed_seconds = time.perf_counter() - started
        report.final_nodes = graph.num_nodes
        report.final_edges = graph.num_edges
        return report
