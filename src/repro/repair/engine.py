"""The legacy repair engine facade (deprecation shim).

:class:`RepairEngine` predates the session API: pick a method (``"fast"`` or
``"naive"``), optionally run the rule-set consistency analysis first, and
repair a graph either in place or on a copy.  Since the ``repro.api``
redesign it is a thin shim: every call opens a short-lived
:class:`~repro.api.RepairSession` with the equivalent
:class:`~repro.api.RepairConfig` and drives it to completion, so both entry
points share one code path.  New code should use the session directly —
see ``docs/MIGRATION.md``.

:class:`EngineConfig` remains the configuration object of this facade (and of
the E5 ablation variants); it inherits the shared cost/ordering knobs from
:class:`~repro.repair.config.RepairKnobs` and converts losslessly to the
api-level config via :meth:`EngineConfig.to_repair_config`.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field, replace

from repro.graph.property_graph import PropertyGraph
from repro.repair.config import RepairKnobs
from repro.repair.report import RepairReport
from repro.rules.grr import RuleSet

_DEPRECATION = ("%s is deprecated; open a repro.api.RepairSession (see "
                "docs/MIGRATION.md) for long-lived, transactional repairing")


@dataclass
class EngineConfig(RepairKnobs):
    """Configuration of a repair run.

    ``method`` is ``"fast"`` or ``"naive"``.  The ``use_*`` flags select
    the optimisations of the fast method (ignored by the naive method, except
    that ``use_candidate_index``/``use_decomposition`` also configure the
    naive method's matcher so that E5's "no incremental maintenance" variant
    is exactly "naive loop + optimised matching").  ``check_consistency``
    runs the static analysis before repairing; ``require_consistency``
    escalates an *Inconsistent* verdict from a warning to an error.
    """

    method: str = "fast"
    # keyword-only below: the shared knobs moved to the RepairKnobs base, so
    # trailing positional binding would silently mean something new — force
    # an immediate TypeError instead
    __: dataclasses.KW_ONLY
    use_candidate_index: bool = True
    use_decomposition: bool = True
    use_incremental: bool = True
    use_cost_planner: bool = True
    max_rounds: int = 100
    check_consistency: bool = False
    require_consistency: bool = False

    @classmethod
    def fast(cls, **overrides) -> "EngineConfig":
        return replace(cls(method="fast"), **overrides)

    @classmethod
    def naive(cls, **overrides) -> "EngineConfig":
        config = cls(method="naive", use_candidate_index=False,
                     use_decomposition=False, use_incremental=False,
                     use_cost_planner=False)
        return replace(config, **overrides)

    @classmethod
    def ablation(cls, disable: str) -> "EngineConfig":
        """The E5 ablation variants: ``disable`` ∈ {"none", "index",
        "decomposition", "incremental", "planner"}."""
        if disable == "none":
            return cls.fast()
        if disable == "index":
            return cls.fast(use_candidate_index=False)
        if disable == "decomposition":
            return cls.fast(use_decomposition=False)
        if disable == "planner":
            # Static decomposition order, everything else optimised: isolates
            # the cost-based planner's contribution.
            return cls.fast(use_cost_planner=False)
        if disable == "incremental":
            # No incremental maintenance: the naive loop, but with the
            # optimised matcher so only the maintenance strategy differs.
            return cls(method="naive", use_candidate_index=True,
                       use_decomposition=True, use_incremental=False)
        raise ValueError(f"unknown ablation target {disable!r}")

    def to_repair_config(self):
        """The equivalent api-level :class:`~repro.api.RepairConfig`."""
        from repro.api.config import RepairConfig

        return RepairConfig.from_engine_config(self)


@dataclass
class RepairEngine:
    """Repairs graphs with a rule set according to an :class:`EngineConfig`.

    Deprecated facade: each call is routed through a short-lived
    :class:`~repro.api.RepairSession`.
    """

    config: EngineConfig = field(default_factory=EngineConfig)

    def repair(self, graph: PropertyGraph, rules: RuleSet) -> RepairReport:
        """Repair ``graph`` **in place** and return the report."""
        warnings.warn(_DEPRECATION % "RepairEngine", DeprecationWarning,
                      stacklevel=2)
        return self._repair(graph, rules)

    def repair_copy(self, graph: PropertyGraph,
                    rules: RuleSet) -> tuple[PropertyGraph, RepairReport]:
        """Repair a copy of ``graph``; returns ``(repaired copy, report)``."""
        warnings.warn(_DEPRECATION % "RepairEngine", DeprecationWarning,
                      stacklevel=2)
        clone = graph.copy(name=f"{graph.name}-repaired")
        report = self._repair(clone, rules)
        return clone, report

    def _repair(self, graph: PropertyGraph, rules: RuleSet) -> RepairReport:
        from repro.api.session import RepairSession

        with RepairSession(graph, rules,
                           config=self.config.to_repair_config()) as session:
            return session.repair()


def repair_graph(graph: PropertyGraph, rules: RuleSet, method: str = "fast",
                 in_place: bool = False,
                 **config_overrides) -> tuple[PropertyGraph, RepairReport]:
    """Convenience one-call repair (deprecated shim over the session API).

    Returns ``(repaired graph, report)``; with ``in_place=False`` (default)
    the input graph is left untouched.
    """
    warnings.warn(_DEPRECATION % "repair_graph", DeprecationWarning,
                  stacklevel=2)
    from repro.api.session import RepairSession

    base = EngineConfig.fast() if method == "fast" else EngineConfig.naive()
    config = replace(base, method=method, **config_overrides)
    target = graph if in_place else graph.copy(name=f"{graph.name}-repaired")
    with RepairSession(target, rules,
                       config=config.to_repair_config()) as session:
        report = session.repair()
    return target, report
