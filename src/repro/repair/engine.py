"""The repair engine facade.

:class:`RepairEngine` is the entry point most users need: pick a method
(``"fast"`` by default, ``"naive"`` for the baseline), optionally run the
rule-set consistency analysis first, and repair a graph either in place or on
a copy.  The engine is also where the ablation variants used by experiment E5
are materialised from a single :class:`EngineConfig`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

from repro.exceptions import InconsistentRuleSetError
from repro.graph.property_graph import PropertyGraph
from repro.matching.matcher import MatcherConfig
from repro.repair.cost import DEFAULT_COST_MODEL, CostModel
from repro.repair.fast import FastRepairConfig, FastRepairer
from repro.repair.naive import NaiveRepairConfig, NaiveRepairer
from repro.repair.report import RepairReport
from repro.rules.grr import RuleSet


@dataclass
class EngineConfig:
    """Configuration of a repair run.

    ``method`` is ``"fast"`` or ``"naive"``.  The three ``use_*`` flags select
    the optimisations of the fast method (ignored by the naive method, except
    that ``use_candidate_index``/``use_decomposition`` also configure the
    naive method's matcher so that E5's "no incremental maintenance" variant
    is exactly "naive loop + optimised matching").  ``check_consistency``
    runs the static analysis before repairing; ``require_consistency``
    escalates an *Inconsistent* verdict from a warning to an error.
    """

    method: str = "fast"
    use_candidate_index: bool = True
    use_decomposition: bool = True
    use_incremental: bool = True
    cost_model: CostModel = DEFAULT_COST_MODEL
    max_repairs: int | None = None
    max_rounds: int = 100
    match_limit_per_rule: int | None = None
    check_consistency: bool = False
    require_consistency: bool = False

    @classmethod
    def fast(cls, **overrides) -> "EngineConfig":
        return replace(cls(method="fast"), **overrides)

    @classmethod
    def naive(cls, **overrides) -> "EngineConfig":
        config = cls(method="naive", use_candidate_index=False,
                     use_decomposition=False, use_incremental=False)
        return replace(config, **overrides)

    @classmethod
    def ablation(cls, disable: str) -> "EngineConfig":
        """The E5 ablation variants: ``disable`` ∈ {"none", "index",
        "decomposition", "incremental"}."""
        if disable == "none":
            return cls.fast()
        if disable == "index":
            return cls.fast(use_candidate_index=False)
        if disable == "decomposition":
            return cls.fast(use_decomposition=False)
        if disable == "incremental":
            # No incremental maintenance: the naive loop, but with the
            # optimised matcher so only the maintenance strategy differs.
            return cls(method="naive", use_candidate_index=True,
                       use_decomposition=True, use_incremental=False)
        raise ValueError(f"unknown ablation target {disable!r}")


@dataclass
class RepairEngine:
    """Repairs graphs with a rule set according to an :class:`EngineConfig`."""

    config: EngineConfig = field(default_factory=EngineConfig)

    def repair(self, graph: PropertyGraph, rules: RuleSet) -> RepairReport:
        """Repair ``graph`` **in place** and return the report."""
        if self.config.check_consistency or self.config.require_consistency:
            self._check_rules(rules)
        repairer = self._build_repairer()
        return repairer.repair(graph, rules)

    def repair_copy(self, graph: PropertyGraph,
                    rules: RuleSet) -> tuple[PropertyGraph, RepairReport]:
        """Repair a copy of ``graph``; returns ``(repaired copy, report)``."""
        clone = graph.copy(name=f"{graph.name}-repaired")
        report = self.repair(clone, rules)
        return clone, report

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _build_repairer(self):
        config = self.config
        if config.method == "naive" or not config.use_incremental:
            matcher_config = MatcherConfig(
                use_candidate_index=config.use_candidate_index,
                use_decomposition=config.use_decomposition)
            return NaiveRepairer(NaiveRepairConfig(
                matcher_config=matcher_config,
                cost_model=config.cost_model,
                max_rounds=config.max_rounds,
                max_repairs=config.max_repairs,
                match_limit_per_rule=config.match_limit_per_rule))
        if config.method == "fast":
            return FastRepairer(FastRepairConfig(
                use_candidate_index=config.use_candidate_index,
                use_decomposition=config.use_decomposition,
                cost_model=config.cost_model,
                max_repairs=config.max_repairs,
                match_limit_per_rule=config.match_limit_per_rule))
        raise ValueError(f"unknown repair method {self.config.method!r}")

    def _check_rules(self, rules: RuleSet) -> None:
        from repro.analysis.consistency import ConsistencyVerdict, check_consistency

        result = check_consistency(rules)
        if result.verdict is ConsistencyVerdict.INCONSISTENT:
            message = ("rule set failed the consistency check: "
                       + "; ".join(result.reasons))
            if self.config.require_consistency:
                raise InconsistentRuleSetError(message, evidence=result)
            warnings.warn(message, stacklevel=3)


def repair_graph(graph: PropertyGraph, rules: RuleSet, method: str = "fast",
                 in_place: bool = False,
                 **config_overrides) -> tuple[PropertyGraph, RepairReport]:
    """Convenience one-call repair.

    Returns ``(repaired graph, report)``; with ``in_place=False`` (default)
    the input graph is left untouched.
    """
    base = EngineConfig.fast() if method == "fast" else EngineConfig.naive()
    config = replace(base, **config_overrides)
    engine = RepairEngine(config)
    if in_place:
        report = engine.repair(graph, rules)
        return graph, report
    return engine.repair_copy(graph, rules)
