"""Violation records.

A violation is one concrete error instance: a rule together with a match of
its evidence pattern that the rule's semantics classifies as erroneous (for
incompleteness rules, a match whose missing extension is absent; for conflict
and redundancy rules, any match).  Violations are the unit the repair planner
queues, prioritises, validates, and repairs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.matching.pattern import Match
from repro.rules.grr import GraphRepairingRule
from repro.rules.semantics import Semantics


class ViolationStatus(enum.Enum):
    """Lifecycle of a violation inside the repair loop."""

    PENDING = "pending"        # detected, waiting in the queue
    REPAIRED = "repaired"      # a repair was applied for it
    OBSOLETE = "obsolete"      # invalidated by another repair before being handled
    FAILED = "failed"          # the repair raised an execution error
    SKIPPED = "skipped"        # left unrepaired (budget exhausted)


@dataclass
class Violation:
    """One rule violation at one match."""

    rule: GraphRepairingRule
    match: Match
    status: ViolationStatus = ViolationStatus.PENDING
    details: dict[str, Any] = field(default_factory=dict)

    def key(self) -> tuple:
        """Stable identity: rule name + match identity."""
        return (self.rule.name, self.match.key())

    @property
    def semantics(self) -> Semantics:
        return self.rule.semantics

    @property
    def priority(self) -> int:
        return self.rule.priority

    def involved_node_ids(self) -> set[str]:
        return self.match.bound_node_ids()

    def involved_edge_ids(self) -> set[str]:
        return self.match.bound_edge_ids()

    def is_still_valid(self, graph, matcher) -> bool:
        """Re-check the violation against the current graph state.

        A violation survives if its match still holds *and* the rule still
        classifies it as erroneous (the missing extension is still absent for
        incompleteness rules).
        """
        if not self.match.is_valid(graph):
            return False
        return self.rule.is_violation(matcher, self.match)

    def describe(self) -> str:
        bindings = ", ".join(f"{variable}={node_id}"
                             for variable, node_id in sorted(self.match.node_bindings.items()))
        return (f"[{self.semantics.value}] {self.rule.name} at {{{bindings}}} "
                f"({self.status.value})")

    def __repr__(self) -> str:
        return f"Violation({self.describe()})"


def sort_key(violation: Violation, cost: float = 0.0, sequence: int = 0) -> tuple:
    """The planner's ordering: higher priority first, then cheaper repairs,
    then a deterministic match key, then detection order.

    The match key ranks ahead of the detection sequence so that the order of
    two violations is a function of *what* they are, not of when they were
    found: a shard worker enumerating a subgraph and the coordinator
    enumerating the full graph then agree on the processing order of every
    violation they both see — the property the sharded backend's
    sequential-equivalence guarantee rests on.
    """
    return (-violation.priority, cost, violation.key(), sequence)
