"""The result object a repair run returns.

Both repair algorithms produce the same :class:`RepairReport`, so the
experiment harness, the metrics layer, and the examples can treat them
uniformly.  The report records counts (violations seen, repairs applied /
failed / remaining), the full provenance log, the per-phase timing breakdown,
and whether a fixpoint was actually reached or a budget cut the run short.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.matching.vf2 import MatchingStats
from repro.repair.provenance import RepairLog
from repro.utils.timing import TimingBreakdown


@dataclass
class RepairReport:
    """Summary of one repair run over one graph with one rule set."""

    method: str
    graph_name: str
    rule_set_name: str
    rounds: int = 0
    violations_detected: int = 0
    repairs_applied: int = 0
    repairs_failed: int = 0
    repairs_obsolete: int = 0
    remaining_violations: int = 0
    reached_fixpoint: bool = False
    matches_enumerated: int = 0
    seeded_searches: int = 0
    # aggregated search-engine counters from every matcher the run used
    # (initial detection, seeded incremental searches, existence probes)
    matching_stats: MatchingStats = field(default_factory=MatchingStats)
    elapsed_seconds: float = 0.0
    initial_nodes: int = 0
    initial_edges: int = 0
    final_nodes: int = 0
    final_edges: int = 0
    log: RepairLog = field(default_factory=RepairLog)
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------

    def absorb(self, other: "RepairReport") -> "RepairReport":
        """Fold another run's report into this one (cumulative session view).

        Counts, stats, timings, provenance, and elapsed time accumulate;
        terminal state (remaining violations, fixpoint, final sizes, method)
        is taken from ``other``, the most recent run.  Returns ``self``.
        """
        self.method = other.method
        self.rounds += other.rounds
        self.violations_detected += other.violations_detected
        self.repairs_applied += other.repairs_applied
        self.repairs_failed += other.repairs_failed
        self.repairs_obsolete += other.repairs_obsolete
        self.remaining_violations = other.remaining_violations
        self.reached_fixpoint = other.reached_fixpoint
        self.matches_enumerated += other.matches_enumerated
        self.seeded_searches += other.seeded_searches
        self.matching_stats.merge(other.matching_stats)
        self.elapsed_seconds += other.elapsed_seconds
        self.final_nodes = other.final_nodes
        self.final_edges = other.final_edges
        self.log.actions.extend(other.log.actions)
        self.timings = self.timings.merge(other.timings)
        return self

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------

    def repairs_per_rule(self) -> dict[str, int]:
        return self.log.actions_per_rule()

    def repairs_per_semantics(self) -> dict[str, int]:
        return self.log.actions_per_semantics()

    def change_counts(self) -> dict[str, int]:
        return self.log.change_counts()

    def total_changes(self) -> int:
        return sum(self.change_counts().values())

    def as_dict(self) -> dict[str, Any]:
        """Flat dictionary for the experiment harness' result tables."""
        return {
            "method": self.method,
            "graph": self.graph_name,
            "rules": self.rule_set_name,
            "rounds": self.rounds,
            "violations_detected": self.violations_detected,
            "repairs_applied": self.repairs_applied,
            "repairs_failed": self.repairs_failed,
            "repairs_obsolete": self.repairs_obsolete,
            "remaining_violations": self.remaining_violations,
            "reached_fixpoint": self.reached_fixpoint,
            "matches_enumerated": self.matches_enumerated,
            "seeded_searches": self.seeded_searches,
            "nodes_tried": self.matching_stats.nodes_tried,
            "backtracks": self.matching_stats.backtracks,
            "maintenance_passes": self.matching_stats.maintenance_passes,
            "label_bucket_candidates": self.matching_stats.label_bucket_candidates,
            "value_bucket_candidates": self.matching_stats.value_bucket_candidates,
            "range_bucket_candidates": self.matching_stats.range_bucket_candidates,
            "predicate_survivors": self.matching_stats.predicate_survivors,
            "planner_plans": self.matching_stats.planner_plans,
            "planner_replans": self.matching_stats.planner_replans,
            "planner_orders": {name: list(order) for name, order
                               in self.matching_stats.planner_orders.items()},
            "planner_estimated": {name: dict(per_variable) for name, per_variable
                                  in self.matching_stats.planner_estimated.items()},
            "planner_actual": {name: dict(per_variable) for name, per_variable
                               in self.matching_stats.planner_actual.items()},
            "elapsed_seconds": self.elapsed_seconds,
            "total_changes": self.total_changes(),
            "initial_nodes": self.initial_nodes,
            "initial_edges": self.initial_edges,
            "final_nodes": self.final_nodes,
            "final_edges": self.final_edges,
            "timings": self.timings.as_dict(),
            "repairs_per_semantics": self.repairs_per_semantics(),
        }

    def describe(self) -> str:
        lines = [
            f"RepairReport [{self.method}] on {self.graph_name!r} with {self.rule_set_name!r}",
            f"  violations detected: {self.violations_detected}, repairs applied: "
            f"{self.repairs_applied}, failed: {self.repairs_failed}, "
            f"remaining: {self.remaining_violations}",
            f"  fixpoint: {self.reached_fixpoint}, rounds: {self.rounds}, "
            f"elapsed: {self.elapsed_seconds:.3f}s",
            f"  matching: {self.matching_stats.nodes_tried} nodes tried, "
            f"{self.matching_stats.backtracks} backtracks",
            f"  index pruning: {self.matching_stats.label_bucket_candidates} label-bucket "
            f"candidates, {self.matching_stats.value_bucket_candidates} value-bucket, "
            f"{self.matching_stats.range_bucket_candidates} range/membership, "
            f"{self.matching_stats.predicate_survivors} predicate survivors",
            f"  planner: {self.matching_stats.planner_plans} plans, "
            f"{self.matching_stats.planner_replans} replans, orders: "
            f"{self.matching_stats.planner_orders}",
            f"  graph: {self.initial_nodes}/{self.initial_edges} -> "
            f"{self.final_nodes}/{self.final_edges} (nodes/edges)",
            f"  changes: {self.change_counts()}",
            f"  per semantics: {self.repairs_per_semantics()}",
            f"  timing: { {k: round(v, 4) for k, v in self.timings.as_dict().items()} }",
        ]
        return "\n".join(lines)
