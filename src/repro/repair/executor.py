"""Repair execution: apply one rule at one match, with delta capture.

The executor is the only component that mutates the graph during repair.  It
wraps the rule's operation list in a :class:`ChangeRecorder` so that every
elementary change is captured as a :class:`GraphDelta` (consumed by the fast
repairer's incremental machinery and summarised into provenance), and it
translates operation failures into a clean outcome instead of leaving the
loop in an undefined state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import RepairExecutionError
from repro.graph.delta import ChangeRecorder, GraphDelta
from repro.graph.property_graph import PropertyGraph
from repro.matching.pattern import Match
from repro.repair.cost import DEFAULT_COST_MODEL, CostModel
from repro.repair.provenance import RepairLog
from repro.rules.grr import GraphRepairingRule


@dataclass
class ExecutionOutcome:
    """What happened when one repair was attempted."""

    applied: bool
    delta: GraphDelta = field(default_factory=GraphDelta)
    error: str | None = None
    created_node_ids: tuple[str, ...] = ()

    @property
    def changed_anything(self) -> bool:
        return self.applied and bool(self.delta)


class RepairExecutor:
    """Applies repairs to one graph and records provenance."""

    def __init__(self, graph: PropertyGraph, cost_model: CostModel | None = None,
                 log: RepairLog | None = None) -> None:
        self.graph = graph
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.log = log if log is not None else RepairLog()

    def apply(self, rule: GraphRepairingRule, match: Match) -> ExecutionOutcome:
        """Apply ``rule`` at ``match``.

        On success the outcome carries the full delta and the repair is added
        to the provenance log.  On failure (an operation raised
        :class:`RepairExecutionError`) the outcome reports the error; any
        changes made by earlier operations of the same rule remain in the
        graph — partial repairs are reported honestly rather than rolled back,
        because the delta is what downstream consumers reason about.
        """
        recorder = ChangeRecorder()
        self.graph.add_listener(recorder)
        cost = self.cost_model.estimate(self.graph, rule, match)
        error: str | None = None
        created: tuple[str, ...] = ()
        try:
            context = rule.execute(self.graph, match)
            created = tuple(context.new_nodes.values())
        except RepairExecutionError as exc:
            error = str(exc)
        finally:
            self.graph.remove_listener(recorder)
        delta = recorder.drain()
        if error is not None:
            return ExecutionOutcome(applied=False, delta=delta, error=error,
                                    created_node_ids=created)
        self.log.record(rule, match, delta, cost, created_node_ids=created)
        return ExecutionOutcome(applied=True, delta=delta, created_node_ids=created)
