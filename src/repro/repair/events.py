"""Progress-event surface of the repair machinery.

Callers that want to stream progress — rather than wait for the terminal
:class:`~repro.repair.report.RepairReport` — hand a :class:`RepairEvents`
(re-exported as ``repro.api.SessionEvents``) to a repairer or a
:class:`~repro.api.RepairSession`.  The three hooks fire at the natural
observation points of the plan/apply/maintain lifecycle:

* ``on_violation(violation)`` — a new violation entered the pending queue
  (initial detection, post-repair discovery, or a session commit);
* ``on_repair_applied(violation, outcome)`` — a repair was executed, with its
  :class:`~repro.repair.executor.ExecutionOutcome` (delta included);
* ``on_maintenance(event)`` — one incremental-maintenance pass finished, with
  a :class:`MaintenanceEvent` describing its work.

Hooks default to ``None`` (disabled) and must not mutate the graph or the
rule set; exceptions they raise propagate and abort the repair run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


@dataclass
class MaintenanceEvent:
    """One incremental-maintenance pass (or full re-detection round).

    ``source`` names the trigger: ``"repair"`` (after one applied repair),
    ``"repair-batch"`` (one merged pass for a whole batch of independent
    repairs), ``"commit"`` (a session commit of staged edits), or
    ``"detection"`` (a full re-detection round of a non-incremental backend).
    """

    source: str
    delta_changes: int = 0
    invalidated: int = 0
    discovered: int = 0
    seeded_searches: int = 0
    rechecked: int = 0
    passes: int = 1


@dataclass
class RepairEvents:
    """Optional progress hooks (all disabled by default)."""

    on_violation: Callable[[Any], None] | None = None
    on_repair_applied: Callable[[Any, Any], None] | None = None
    on_maintenance: Callable[[MaintenanceEvent], None] | None = None
