"""Shared repair-configuration knobs.

``RepairKnobs`` declares — exactly once — the cost/ordering/budget knobs that
every repair configuration needs.  :class:`~repro.repair.fast.FastRepairConfig`,
:class:`~repro.repair.naive.NaiveRepairConfig`,
:class:`~repro.repair.engine.EngineConfig`, and the api-level
:class:`~repro.api.RepairConfig` all inherit from it, so adding a knob here
reaches every surface without the per-config re-declaration drift the old
three-config split suffered from (each used to copy ``cost_model`` /
``max_repairs`` / ``match_limit_per_rule`` by hand).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.repair.cost import DEFAULT_COST_MODEL, CostModel


@dataclass
class RepairKnobs:
    """Cost/ordering/budget knobs shared by every repair configuration.

    ``cost_model`` orders pending violations (cheapest first within a
    priority tier); ``max_repairs`` caps the number of repairs applied
    (None = unbounded); ``match_limit_per_rule`` caps match enumeration per
    rule pattern during detection (None = unbounded).

    The fields are keyword-only so that inheriting configs keep their own
    declared fields first positionally — legacy positional construction like
    ``EngineConfig("naive")`` still means ``method="naive"``.
    """

    _: dataclasses.KW_ONLY
    cost_model: CostModel = DEFAULT_COST_MODEL
    max_repairs: int | None = None
    match_limit_per_rule: int | None = None
