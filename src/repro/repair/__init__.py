"""Repair algorithms: detection, planning, execution, provenance, and the
naive / fast repairers behind the engine facade (system S5 in DESIGN.md)."""

from repro.repair.config import RepairKnobs
from repro.repair.cost import DEFAULT_COST_MODEL, CostModel
from repro.repair.detector import DetectionResult, ViolationDetector, detect_violations
from repro.repair.engine import EngineConfig, RepairEngine, repair_graph
from repro.repair.events import MaintenanceEvent, RepairEvents
from repro.repair.executor import ExecutionOutcome, RepairExecutor
from repro.repair.fast import (
    AppliedRepair,
    FastRepairConfig,
    FastRepairCore,
    FastRepairer,
    repair_shard,
)
from repro.repair.naive import NaiveRepairConfig, NaiveRepairer
from repro.repair.provenance import RepairAction, RepairLog
from repro.repair.report import RepairReport
from repro.repair.violation import Violation, ViolationStatus

__all__ = [
    "Violation",
    "ViolationStatus",
    "RepairKnobs",
    "RepairEvents",
    "MaintenanceEvent",
    "FastRepairCore",
    "ViolationDetector",
    "DetectionResult",
    "detect_violations",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "RepairExecutor",
    "ExecutionOutcome",
    "RepairAction",
    "RepairLog",
    "RepairReport",
    "NaiveRepairer",
    "NaiveRepairConfig",
    "FastRepairer",
    "FastRepairConfig",
    "AppliedRepair",
    "repair_shard",
    "RepairEngine",
    "EngineConfig",
    "repair_graph",
]
