"""Repair provenance: who changed what, and why.

Every applied repair is recorded as a :class:`RepairAction` carrying the rule,
the match it was applied at, the per-kind counts of elementary graph changes
it caused, and its estimated cost.  The :class:`RepairLog` aggregates actions
and answers the questions the evaluation needs (changes per rule, per
semantics, per change kind) as well as the questions a user of the library
would ask of a cleaning run ("why was this edge deleted?").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.graph.delta import GraphDelta
from repro.rules.semantics import Semantics


@dataclass
class RepairAction:
    """One applied repair."""

    sequence: int
    rule_name: str
    semantics: Semantics
    node_bindings: dict[str, str]
    edge_bindings: dict[str, str]
    change_counts: dict[str, int]
    cost: float = 0.0
    created_node_ids: tuple[str, ...] = ()

    @property
    def total_changes(self) -> int:
        return sum(self.change_counts.values())

    def touches_node(self, node_id: str) -> bool:
        return node_id in self.node_bindings.values() or node_id in self.created_node_ids

    def describe(self) -> str:
        bindings = ", ".join(f"{variable}={node_id}"
                             for variable, node_id in sorted(self.node_bindings.items()))
        changes = ", ".join(f"{kind}×{count}"
                            for kind, count in sorted(self.change_counts.items()))
        return (f"#{self.sequence} {self.rule_name} [{self.semantics.value}] "
                f"at {{{bindings}}} -> {changes or 'no change'}")


@dataclass
class RepairLog:
    """Ordered list of applied repairs with aggregate views."""

    actions: list[RepairAction] = field(default_factory=list)

    def record(self, rule, match, delta: GraphDelta, cost: float,
               created_node_ids: tuple[str, ...] = ()) -> RepairAction:
        """Append an action for a repair of ``rule`` at ``match`` causing ``delta``."""
        action = RepairAction(
            sequence=len(self.actions),
            rule_name=rule.name,
            semantics=rule.semantics,
            node_bindings=dict(match.node_bindings),
            edge_bindings=dict(match.edge_bindings),
            change_counts=delta.summary(),
            cost=cost,
            created_node_ids=created_node_ids,
        )
        self.actions.append(action)
        return action

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self) -> Iterator[RepairAction]:
        return iter(self.actions)

    # ------------------------------------------------------------------
    # aggregations
    # ------------------------------------------------------------------

    def actions_per_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for action in self.actions:
            counts[action.rule_name] = counts.get(action.rule_name, 0) + 1
        return counts

    def actions_per_semantics(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for action in self.actions:
            key = action.semantics.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def change_counts(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for action in self.actions:
            for kind, count in action.change_counts.items():
                totals[kind] = totals.get(kind, 0) + count
        return totals

    def total_cost(self) -> float:
        return sum(action.cost for action in self.actions)

    def actions_touching(self, node_id: str) -> list[RepairAction]:
        """All repairs that bound or created the given node (provenance query)."""
        return [action for action in self.actions if action.touches_node(node_id)]

    def describe(self, limit: int | None = 20) -> str:
        lines = [f"RepairLog: {len(self.actions)} repairs, "
                 f"total cost {self.total_cost():.1f}"]
        shown = self.actions if limit is None else self.actions[:limit]
        lines.extend("  " + action.describe() for action in shown)
        if limit is not None and len(self.actions) > limit:
            lines.append(f"  ... and {len(self.actions) - limit} more")
        return "\n".join(lines)
