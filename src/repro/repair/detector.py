"""Violation detection.

The detector enumerates matches of every rule's evidence pattern and filters
them through the rule's violation semantics.  It is the detection component
shared by the naive repairer (which calls it every round), by the fast
repairer (which calls it once for the initial queue, then maintains matches
incrementally), and by the detection-only baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.graph.property_graph import PropertyGraph
from repro.matching.matcher import Matcher, MatcherConfig
from repro.repair.violation import Violation
from repro.rules.grr import GraphRepairingRule, RuleSet
from repro.rules.semantics import Semantics
from repro.utils.timing import TimingBreakdown


@dataclass
class DetectionResult:
    """All violations found in one detection pass."""

    violations: list[Violation] = field(default_factory=list)
    matches_enumerated: int = 0
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)

    def __len__(self) -> int:
        return len(self.violations)

    def __iter__(self):
        return iter(self.violations)

    def per_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule.name] = counts.get(violation.rule.name, 0) + 1
        return counts

    def per_semantics(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            key = violation.semantics.value
            counts[key] = counts.get(key, 0) + 1
        return counts


class ViolationDetector:
    """Finds violations of a rule set on a graph."""

    def __init__(self, graph: PropertyGraph, rules: RuleSet | Iterable[GraphRepairingRule],
                 matcher: Matcher | None = None,
                 matcher_config: MatcherConfig | None = None,
                 match_limit_per_rule: int | None = None) -> None:
        self.graph = graph
        self.rules = rules if isinstance(rules, RuleSet) else RuleSet(rules)
        self.matcher = matcher or Matcher(graph, matcher_config or MatcherConfig())
        self.match_limit_per_rule = match_limit_per_rule

    def detect(self, rules: Iterable[GraphRepairingRule] | None = None) -> DetectionResult:
        """Enumerate all violations of the given rules (default: all rules)."""
        result = DetectionResult()
        target_rules = list(rules) if rules is not None else self.rules.rules()
        for rule in target_rules:
            with result.timings.measure("matching"):
                matches = self.matcher.find_matches(rule.pattern,
                                                    limit=self.match_limit_per_rule)
            result.matches_enumerated += len(matches)
            with result.timings.measure("violation-check"):
                for match in matches:
                    if rule.is_violation(self.matcher, match):
                        result.violations.append(Violation(rule=rule, match=match))
        return result

    def detect_for_rule(self, rule_name: str) -> DetectionResult:
        """Violations of a single rule (by name)."""
        return self.detect([self.rules.get(rule_name)])

    def count_by_semantics(self) -> dict[str, int]:
        """Convenience: number of violations per error class."""
        return self.detect().per_semantics()

    def has_violations(self) -> bool:
        """Short-circuiting check whether any rule is violated at all."""
        for rule in self.rules:
            for match in self.matcher.find_matches(rule.pattern,
                                                   limit=self.match_limit_per_rule):
                if rule.is_violation(self.matcher, match):
                    return True
        return False


def detect_violations(graph: PropertyGraph, rules: RuleSet,
                      optimized: bool = True,
                      match_limit_per_rule: int | None = None) -> DetectionResult:
    """One-shot detection helper used by examples and the detection-only baseline."""
    config = MatcherConfig.optimized() if optimized else MatcherConfig.naive()
    detector = ViolationDetector(graph, rules, matcher_config=config,
                                 match_limit_per_rule=match_limit_per_rule)
    return detector.detect()
