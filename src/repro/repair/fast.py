"""The efficient repairing algorithm (index + decomposition + incremental).

``FastRepairer`` reaches the same fixpoint as the naive algorithm but avoids
its per-round full re-matching:

* the **candidate index** is built once and maintained from the graph's
  change feed;
* initial violations are enumerated once using **decomposed** (pivot-ordered)
  pattern search;
* a priority queue holds pending violations; after each applied repair the
  resulting :class:`GraphDelta` drives **incremental match maintenance** —
  only matches overlapping the affected region are invalidated or discovered,
  via seeded searches from the touched nodes;
* repairs that *delete* structure additionally re-check stored evidence
  matches of incompleteness rules in the affected region, because deleting a
  previously-present extension can turn an existing match into a new
  violation.

The three optimisations can be toggled independently for the ablation
experiment (E5); turning incremental maintenance off is equivalent to running
the naive loop with an optimised matcher, which the experiment harness does
via :class:`~repro.repair.naive.NaiveRepairer`.

Termination: every violation instance (rule + match identity) is handled at
most once.  For consistent rule sets this changes nothing — a repaired
violation never legitimately reappears — while for inconsistent (oscillating)
rule sets it guarantees the run ends and reports the leftover violations and
``reached_fixpoint=False`` instead of looping forever.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.graph.property_graph import PropertyGraph
from repro.matching.incremental import IncrementalMatcher
from repro.matching.index import CandidateIndex
from repro.matching.pattern import Pattern
from repro.matching.vf2 import VF2Matcher
from repro.repair.cost import DEFAULT_COST_MODEL, CostModel
from repro.repair.executor import RepairExecutor
from repro.repair.report import RepairReport
from repro.repair.violation import Violation, ViolationStatus, sort_key
from repro.rules.grr import GraphRepairingRule, RuleSet
from repro.rules.semantics import Semantics


@dataclass
class FastRepairConfig:
    """Optimisation switches and budgets of the fast algorithm."""

    use_candidate_index: bool = True
    use_decomposition: bool = True
    cost_model: CostModel = DEFAULT_COST_MODEL
    max_repairs: int | None = None
    match_limit_per_rule: int | None = None


class _ExtensionChecker:
    """Minimal ``exists_extension`` provider shared with the rules' violation check.

    One :class:`VF2Matcher` instance is reused for every existence probe, so
    the per-pattern search plans are compiled once per repair run and the
    probes' :class:`~repro.matching.vf2.MatchingStats` accumulate (merged into
    the repair report).
    """

    def __init__(self, graph: PropertyGraph, index: CandidateIndex | None,
                 use_decomposition: bool) -> None:
        self._engine = VF2Matcher(graph=graph, candidate_index=index,
                                  use_decomposition=use_decomposition)

    @property
    def stats(self):
        return self._engine.stats

    def exists_extension(self, pattern: Pattern, bindings: Mapping[str, str]) -> bool:
        seed = {variable: node_id for variable, node_id in bindings.items()
                if pattern.has_variable(variable)}
        return self._engine.exists(pattern, seed=seed)


class FastRepairer:
    """Queue-driven repair with incremental match maintenance."""

    def __init__(self, config: FastRepairConfig | None = None) -> None:
        self.config = config or FastRepairConfig()

    def repair(self, graph: PropertyGraph, rules: RuleSet) -> RepairReport:
        """Repair ``graph`` in place; returns the :class:`RepairReport`."""
        config = self.config
        report = RepairReport(method="fast", graph_name=graph.name,
                              rule_set_name=rules.name,
                              initial_nodes=graph.num_nodes,
                              initial_edges=graph.num_edges)
        started = time.perf_counter()

        index: CandidateIndex | None = None
        if config.use_candidate_index:
            with report.timings.measure("index-build"):
                index = CandidateIndex(graph)
            index.attach()

        incremental = IncrementalMatcher(graph, candidate_index=index,
                                         use_decomposition=config.use_decomposition)
        checker = _ExtensionChecker(graph, index, config.use_decomposition)
        executor = RepairExecutor(graph, cost_model=config.cost_model)

        rules_by_pattern: dict[str, GraphRepairingRule] = {}
        with report.timings.measure("initial-detection"):
            for rule in rules:
                rules_by_pattern[rule.pattern.name] = rule
                incremental.register(rule.pattern, enumerate_now=True,
                                     limit=config.match_limit_per_rule)

        # Priority queue of pending violations.
        queue: list[tuple[tuple, int, Violation]] = []
        counter = itertools.count()
        queued_keys: set[tuple] = set()
        processed_keys: set[tuple] = set()

        def push(violation: Violation) -> None:
            key = violation.key()
            if key in queued_keys or key in processed_keys:
                return
            cost = config.cost_model.estimate(graph, violation.rule, violation.match)
            sequence = next(counter)
            heapq.heappush(queue, (sort_key(violation, cost=cost, sequence=sequence),
                                   sequence, violation))
            queued_keys.add(key)
            report.violations_detected += 1

        with report.timings.measure("initial-detection"):
            for store in incremental.stores():
                rule = rules_by_pattern[store.pattern.name]
                for match in store:
                    if rule.is_violation(checker, match):
                        push(Violation(rule=rule, match=match))

        # Main loop.
        while queue:
            if config.max_repairs is not None and report.repairs_applied >= config.max_repairs:
                break
            _, _, violation = heapq.heappop(queue)
            key = violation.key()
            queued_keys.discard(key)
            if key in processed_keys:
                continue

            with report.timings.measure("validation"):
                still_valid = (violation.match.is_valid(graph)
                               and violation.rule.is_violation(checker, violation.match))
            if not still_valid:
                violation.status = ViolationStatus.OBSOLETE
                report.repairs_obsolete += 1
                processed_keys.add(key)
                continue

            with report.timings.measure("execution"):
                outcome = executor.apply(violation.rule, violation.match)
            processed_keys.add(key)
            if not outcome.applied:
                violation.status = ViolationStatus.FAILED
                report.repairs_failed += 1
                continue
            violation.status = ViolationStatus.REPAIRED
            report.repairs_applied += 1

            delta = outcome.delta
            if not delta:
                continue

            # Incrementally maintain the match stores and harvest new violations.
            with report.timings.measure("incremental-maintenance"):
                updates = incremental.apply_delta(delta)
            for pattern_name, update in updates.items():
                rule = rules_by_pattern[pattern_name]
                report.seeded_searches += update.seeded_searches
                for match in update.discovered:
                    if rule.is_violation(checker, match):
                        push(Violation(rule=rule, match=match))

            # Deletions can turn existing incompleteness matches into violations:
            # their required extension may just have disappeared.  The stores'
            # inverted element→match index narrows the recheck to the matches
            # actually overlapping the delta.
            if delta.has_subtractive_effect:
                touched = delta.touched_nodes
                removed_edges = delta.removed_edge_ids
                with report.timings.measure("incompleteness-recheck"):
                    for store in incremental.stores():
                        rule = rules_by_pattern[store.pattern.name]
                        if rule.semantics is not Semantics.INCOMPLETENESS:
                            continue
                        for match in store.matches_touching(node_ids=touched,
                                                            edge_ids=removed_edges):
                            if rule.is_violation(checker, match):
                                push(Violation(rule=rule, match=match))

        # Final accounting: anything left in the stores that still violates its rule.
        with report.timings.measure("final-check"):
            remaining = 0
            for store in incremental.stores():
                rule = rules_by_pattern[store.pattern.name]
                for match in store:
                    if not match.is_valid(graph):
                        continue
                    if rule.is_violation(checker, match):
                        remaining += 1
            report.remaining_violations = remaining
            report.reached_fixpoint = remaining == 0 and not queue

        if index is not None:
            index.detach()

        report.rounds = 1
        report.matching_stats.merge(incremental.stats)
        report.matching_stats.merge(checker.stats)
        report.matches_enumerated = incremental.total_matches()
        report.log = executor.log
        report.elapsed_seconds = time.perf_counter() - started
        report.final_nodes = graph.num_nodes
        report.final_edges = graph.num_edges
        return report
