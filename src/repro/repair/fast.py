"""The efficient repairing algorithm (index + decomposition + incremental).

``FastRepairer`` reaches the same fixpoint as the naive algorithm but avoids
its per-round full re-matching:

* the **candidate index** is built once and maintained from the graph's
  change feed;
* initial violations are enumerated once using **decomposed** (pivot-ordered)
  pattern search;
* a priority queue holds pending violations; after each applied repair the
  resulting :class:`GraphDelta` drives **incremental match maintenance** —
  only matches overlapping the affected region are invalidated or discovered,
  via seeded searches from the touched nodes;
* repairs that *delete* structure additionally re-check stored evidence
  matches of incompleteness rules in the affected region, because deleting a
  previously-present extension can turn an existing match into a new
  violation.  (The maintainer keeps a pre-filtered list of incompleteness
  stores, so this recheck never touches the other rules' stores at all.)

The state behind the algorithm — index, match stores, violation queue,
extension prober — lives in :class:`FastRepairCore`, which is shared between
the one-shot :class:`FastRepairer` facade and the long-lived
:class:`~repro.api.RepairSession`: a session keeps one core alive across many
``repair()`` / ``commit()`` calls, which is what makes its repairs
incremental *across* invocations, not just within one.

With ``batch_repairs=True`` the core drains the queue in *batches* of
mutually independent violations (no shared bound nodes): every repair in a
batch is validated against the live graph and applied, their deltas are
merged, and **one** incremental-maintenance pass covers the whole batch —
amortising seeded-search startup across independent repairs (the ROADMAP
"batch deltas across repairs" item).  Because independence is defined by
region disjointness, a batch of non-overlapping violations produces the same
fixpoint as applying them one at a time.

The three optimisations can be toggled independently for the ablation
experiment (E5); turning incremental maintenance off is equivalent to running
the naive loop with an optimised matcher, which the experiment harness does
via :class:`~repro.repair.naive.NaiveRepairer`.

Termination: every violation instance (rule + match identity) is handled at
most once.  For consistent rule sets this changes nothing — a repaired
violation never legitimately reappears — while for inconsistent (oscillating)
rule sets it guarantees the run ends and reports the leftover violations and
``reached_fixpoint=False`` instead of looping forever.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Mapping

from repro.graph.delta import GraphDelta
from repro.graph.property_graph import PropertyGraph
from repro.matching.incremental import IncrementalMatcher
from repro.matching.index import CandidateIndex
from repro.matching.pattern import Match, Pattern
from repro.matching.vf2 import MatchingStats, VF2Matcher
from repro.repair.config import RepairKnobs
from repro.repair.events import MaintenanceEvent
from repro.repair.executor import ExecutionOutcome, RepairExecutor
from repro.repair.report import RepairReport
from repro.repair.violation import Violation, ViolationStatus, sort_key
from repro.rules.grr import GraphRepairingRule, RuleSet
from repro.rules.semantics import Semantics


@dataclass
class FastRepairConfig(RepairKnobs):
    """Optimisation switches and budgets of the fast algorithm.

    Inherits the shared cost/ordering/budget knobs from
    :class:`~repro.repair.config.RepairKnobs`.  ``batch_repairs`` switches the
    queue drain to batched mode (independent violations repaired under one
    merged maintenance pass); ``max_batch`` caps the batch size (None =
    unbounded).
    """

    use_candidate_index: bool = True
    # keyword-only below (see EngineConfig): the shared knobs moved to the
    # base, so trailing positional binding would silently change meaning
    __: dataclasses.KW_ONLY
    use_decomposition: bool = True
    use_cost_planner: bool = True
    batch_repairs: bool = False
    max_batch: int | None = None


@dataclass
class AppliedRepair:
    """One successfully applied repair, in the shape the parallel merger needs.

    ``region`` is the set of node ids the violation's match had bound when the
    repair fired (the independence region); ``delta`` is the full recorded
    change list; ``match`` is the violation's match, shipped so the
    coordinator can stream faithful ``on_repair_applied`` events and retire
    the violation's identity in its own queue.  Collected by
    :meth:`FastRepairCore.drain` when a ``collector`` is supplied — the unit
    of work a shard worker ships back to the coordinator.
    """

    rule_name: str
    region: frozenset[str]
    delta: GraphDelta
    match: "Match | None" = None


class _ExtensionChecker:
    """Minimal ``exists_extension`` provider shared with the rules' violation check.

    One :class:`VF2Matcher` instance is reused for every existence probe, so
    the per-pattern search plans are compiled once per repair run and the
    probes' :class:`~repro.matching.vf2.MatchingStats` accumulate (merged into
    the repair report).
    """

    def __init__(self, graph: PropertyGraph, index: CandidateIndex | None,
                 use_decomposition: bool, use_cost_planner: bool = True) -> None:
        self._engine = VF2Matcher(graph=graph, candidate_index=index,
                                  use_decomposition=use_decomposition,
                                  use_cost_planner=use_cost_planner)

    @property
    def stats(self):
        return self._engine.stats

    def exists_extension(self, pattern: Pattern, bindings: Mapping[str, str]) -> bool:
        seed = {variable: node_id for variable, node_id in bindings.items()
                if pattern.has_variable(variable)}
        return self._engine.exists(pattern, seed=seed)


class FastRepairCore:
    """Persistent state and lifecycle of the fast algorithm.

    Exposes the unified ``plan`` / ``apply`` / ``maintain`` lifecycle the
    :class:`~repro.api.Repairer` protocol names:

    * construction binds the core to one graph + rule set, builds the
      candidate index, enumerates initial matches, and seeds the violation
      queue (the *plan*);
    * :meth:`validate` + :meth:`execute` apply one queued violation;
    * :meth:`maintain` folds one :class:`GraphDelta` (a repair's, or a
      session's committed staged edits) into the match stores and requeues
      newly discovered violations;
    * :meth:`drain` runs the standard repair loop (sequential or batched) and
      :meth:`finalize` settles the report.

    The core stays usable after ``drain`` — a :class:`~repro.api.RepairSession`
    keeps calling ``maintain``/``drain`` as new edits arrive.  ``close`` only
    detaches the candidate index from the graph's change feed.
    """

    def __init__(self, graph: PropertyGraph, rules: RuleSet,
                 config: FastRepairConfig | None = None, events=None) -> None:
        self.graph = graph
        self.rules = rules
        self.config = config or FastRepairConfig()
        self._on_violation = getattr(events, "on_violation", None)
        self._on_repair_applied = getattr(events, "on_repair_applied", None)
        self._on_maintenance = getattr(events, "on_maintenance", None)
        self.report = RepairReport(
            method="fast", graph_name=graph.name, rule_set_name=rules.name,
            initial_nodes=graph.num_nodes, initial_edges=graph.num_edges)
        started = time.perf_counter()
        # work time only: a long-lived session may sit idle between calls, so
        # wall-clock is accumulated around construction / drains / maintains,
        # never measured across the core's lifetime
        self._elapsed = 0.0
        self._timing_depth = 0
        # repairs applied when the current drain started: max_repairs caps
        # each drain (each session repair() call), matching the per-call
        # budget semantics of the naive and greedy backends
        self._drain_baseline = 0
        # valid remaining-violation count from the last full scan; None while
        # stores may have changed since (keeps no-op repair() calls O(1))
        self._remaining_cache: int | None = None
        self._closed = False

        config = self.config
        self.index: CandidateIndex | None = None
        if config.use_candidate_index:
            with self.report.timings.measure("index-build"):
                self.index = CandidateIndex(graph)
            self.index.attach()

        self.incremental = IncrementalMatcher(
            graph, candidate_index=self.index,
            use_decomposition=config.use_decomposition,
            use_cost_planner=config.use_cost_planner)
        self.checker = _ExtensionChecker(graph, self.index, config.use_decomposition,
                                         config.use_cost_planner)
        self.executor = RepairExecutor(graph, cost_model=config.cost_model)

        self.rules_by_pattern: dict[str, GraphRepairingRule] = {}
        self._queue: list[tuple[tuple, int, Violation]] = []
        self._counter = itertools.count()
        self._queued_keys: set[tuple] = set()
        self._processed_keys: set[tuple] = set()

        with self.report.timings.measure("initial-detection"):
            for rule in rules:
                self.rules_by_pattern[rule.pattern.name] = rule
                self.incremental.register(
                    rule.pattern, enumerate_now=True,
                    limit=config.match_limit_per_rule,
                    incompleteness=rule.semantics is Semantics.INCOMPLETENESS)
            for store in self.incremental.stores():
                rule = self.rules_by_pattern[store.pattern.name]
                for match in store:
                    if rule.is_violation(self.checker, match):
                        self.push(Violation(rule=rule, match=match))
        self._elapsed += time.perf_counter() - started

    # ------------------------------------------------------------------
    # queue
    # ------------------------------------------------------------------

    def push(self, violation: Violation, requeue: bool = False) -> bool:
        """Queue a violation unless its identity was already queued/handled.

        ``requeue=True`` forgets that the identity was handled before — used
        when an *external* (committed) edit re-creates a violation that an
        earlier repair had already addressed, which must become repairable
        again.  Repair-driven maintenance never requeues, preserving the
        handle-each-instance-once termination guarantee within a drain.
        """
        key = violation.key()
        if requeue:
            self._processed_keys.discard(key)
        if key in self._queued_keys or key in self._processed_keys:
            return False
        cost = self.config.cost_model.estimate(self.graph, violation.rule,
                                               violation.match)
        sequence = next(self._counter)
        self._push_entry((sort_key(violation, cost=cost, sequence=sequence),
                          sequence, violation))
        self.report.violations_detected += 1
        if self._on_violation is not None:
            self._on_violation(violation)
        return True

    def _push_entry(self, entry: tuple[tuple, int, Violation]) -> None:
        """(Re-)insert a fully formed queue entry without re-counting it as a
        new detection (no counter bump, no ``on_violation`` event)."""
        heapq.heappush(self._queue, entry)
        self._queued_keys.add(entry[2].key())

    def has_pending(self) -> bool:
        return bool(self._queue)

    def mark_handled(self, key: tuple) -> None:
        """Retire a violation identity that was repaired *outside* this core.

        The sharded coordinator calls this for every worker repair it merged:
        the identity's queue entry (detected at bind time) is skipped by the
        settle drain instead of being popped, validated, and miscounted as
        obsolete — the repair was applied, just not by this core's executor.
        """
        self._processed_keys.add(key)

    def pending(self) -> list[Violation]:
        """Snapshot of the queued violations in processing order."""
        return [entry[2] for entry in sorted(self._queue)
                if entry[2].key() not in self._processed_keys]

    def _pop_entry(self) -> tuple[tuple, int, Violation] | None:
        """Next queue entry whose identity was not handled yet."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            key = entry[2].key()
            self._queued_keys.discard(key)
            if key not in self._processed_keys:
                return entry
        return None

    def _pop(self) -> Violation | None:
        """Next queued violation whose identity was not handled yet."""
        entry = self._pop_entry()
        return entry[2] if entry is not None else None

    # ------------------------------------------------------------------
    # plan / apply / maintain lifecycle pieces
    # ------------------------------------------------------------------

    def validate(self, violation: Violation) -> bool:
        """Re-check a violation against the current graph; obsolete ones are
        retired (counted, status set) and ``False`` is returned."""
        with self._timed(), self.report.timings.measure("validation"):
            still_valid = (violation.match.is_valid(self.graph)
                           and violation.rule.is_violation(self.checker,
                                                           violation.match))
        if not still_valid:
            violation.status = ViolationStatus.OBSOLETE
            self.report.repairs_obsolete += 1
            self._processed_keys.add(violation.key())
        return still_valid

    def execute(self, violation: Violation) -> ExecutionOutcome:
        """Apply one violation's repair (no maintenance); updates counters."""
        with self._timed(), self.report.timings.measure("execution"):
            outcome = self.executor.apply(violation.rule, violation.match)
        self._processed_keys.add(violation.key())
        if outcome.delta:
            # even a failed repair may have mutated the graph (partial
            # repairs are kept, not rolled back)
            self._remaining_cache = None
        if not outcome.applied:
            violation.status = ViolationStatus.FAILED
            self.report.repairs_failed += 1
            return outcome
        violation.status = ViolationStatus.REPAIRED
        self.report.repairs_applied += 1
        if self._on_repair_applied is not None:
            self._on_repair_applied(violation, outcome)
        return outcome

    def maintain(self, delta: GraphDelta, source: str = "repair") -> MaintenanceEvent:
        """Fold one delta into the match stores; queue newly found violations.

        One call is one incremental-maintenance pass, whatever the delta size
        — batching independent repairs' deltas into a single call is exactly
        how the batched mode amortises maintenance.  A ``"commit"``-sourced
        delta comes from *external* edits, which may legitimately re-create a
        violation an earlier repair already handled — those are requeued;
        repair-driven deltas never requeue (termination guarantee).
        """
        event = MaintenanceEvent(source=source, delta_changes=len(delta))
        if not delta:
            event.passes = 0
            return event
        self._remaining_cache = None
        requeue = source == "commit"

        with self._timed():
            with self.report.timings.measure("incremental-maintenance"):
                updates = self.incremental.apply_delta(delta)
            for pattern_name, update in updates.items():
                rule = self.rules_by_pattern[pattern_name]
                self.report.seeded_searches += update.seeded_searches
                event.seeded_searches += update.seeded_searches
                event.invalidated += len(update.invalidated)
                for match in update.discovered:
                    if rule.is_violation(self.checker, match):
                        if self.push(Violation(rule=rule, match=match),
                                     requeue=requeue):
                            event.discovered += 1

            # Deletions can turn existing incompleteness matches into
            # violations: their required extension may just have disappeared.
            # The maintainer's pre-filtered incompleteness-store list plus the
            # stores' inverted element→match index narrow the recheck to
            # exactly the incompleteness-rule matches overlapping the delta.
            if delta.has_subtractive_effect:
                touched = delta.touched_nodes
                removed_edges = delta.removed_edge_ids
                with self.report.timings.measure("incompleteness-recheck"):
                    for store in self.incremental.incompleteness_stores():
                        rule = self.rules_by_pattern[store.pattern.name]
                        for match in store.matches_touching(
                                node_ids=touched, edge_ids=removed_edges):
                            event.rechecked += 1
                            if rule.is_violation(self.checker, match):
                                if self.push(Violation(rule=rule, match=match),
                                             requeue=requeue):
                                    event.discovered += 1
        if self._on_maintenance is not None:
            self._on_maintenance(event)
        return event

    # ------------------------------------------------------------------
    # drains
    # ------------------------------------------------------------------

    def _budget_left(self) -> bool:
        max_repairs = self.config.max_repairs
        if max_repairs is None:
            return True
        return self.report.repairs_applied - self._drain_baseline < max_repairs

    @contextmanager
    def _timed(self):
        """Accumulate wall-clock into the report's work time (re-entrant:
        nested sections — maintain inside drain — are counted once)."""
        if self._timing_depth:
            self._timing_depth += 1
            try:
                yield
            finally:
                self._timing_depth -= 1
            return
        self._timing_depth = 1
        started = time.perf_counter()
        try:
            yield
        finally:
            self._timing_depth = 0
            self._elapsed += time.perf_counter() - started

    def drain(self, accept=None, collector: list[AppliedRepair] | None = None) -> None:
        """Process the queue to exhaustion (or budget), per the config's mode.

        ``max_repairs`` budgets each drain call independently — a session
        that exhausted the budget once can repair again on its next call.

        ``accept`` (optional ``violation -> bool``) restricts the drain to
        the violations it approves; rejected ones are retired unrepaired
        (status ``SKIPPED``, identity marked handled so this drain never
        revisits them).  A shard worker passes ownership — *bound nodes all
        inside my core* — here, leaving frontier violations to the
        coordinator.  ``collector`` (optional list) receives one
        :class:`AppliedRepair` per successfully applied repair, in
        application order.
        """
        self._drain_baseline = self.report.repairs_applied
        with self._timed():
            if self.config.batch_repairs:
                self._drain_batched(accept, collector)
            else:
                self._drain_sequential(accept, collector)

    def _skip(self, violation: Violation) -> None:
        """Retire a violation without repairing it (rejected by an ``accept``
        filter): not an obsoletion, not a failure — just not ours to repair."""
        violation.status = ViolationStatus.SKIPPED
        self._processed_keys.add(violation.key())

    def _collect(self, collector: list[AppliedRepair] | None,
                 violation: Violation, outcome: ExecutionOutcome) -> None:
        if collector is not None:
            collector.append(AppliedRepair(
                rule_name=violation.rule.name,
                region=frozenset(violation.match.bound_node_ids()),
                delta=outcome.delta,
                match=violation.match))

    def _drain_sequential(self, accept=None,
                          collector: list[AppliedRepair] | None = None) -> None:
        while self._queue and self._budget_left():
            violation = self._pop()
            if violation is None:
                break
            if accept is not None and not accept(violation):
                self._skip(violation)
                continue
            if not self.validate(violation):
                continue
            outcome = self.execute(violation)
            if outcome.applied and outcome.delta:
                self._collect(collector, violation, outcome)
                self.maintain(outcome.delta, source="repair")

    def _drain_batched(self, accept=None,
                       collector: list[AppliedRepair] | None = None) -> None:
        while self._queue and self._budget_left():
            batch = self._pop_independent_batch()
            if not batch:
                break
            merged = GraphDelta()
            for entry in batch:
                violation = entry[2]
                if accept is not None and not accept(violation):
                    self._skip(violation)
                    continue
                if not self._budget_left():
                    # over budget mid-batch: restore the untouched remainder
                    # verbatim (no re-count, no duplicate events)
                    self._push_entry(entry)
                    continue
                if not self.validate(violation):
                    continue
                outcome = self.execute(violation)
                if outcome.applied and outcome.delta:
                    self._collect(collector, violation, outcome)
                    merged.extend(outcome.delta.changes)
            if merged:
                self.maintain(merged, source="repair-batch")

    def _pop_independent_batch(self) -> list[tuple[tuple, int, Violation]]:
        """Pop a maximal prefix (in priority order) of region-independent
        queue entries; conflicting entries are restored for the next batch
        (verbatim — deferral is not a re-detection).

        Independence = disjoint bound-node sets.  Because every edge a match
        binds (edge variable or witness) has both endpoints among its bound
        nodes, node-disjoint matches share no structure, so their repairs
        cannot invalidate one another and their deltas can be maintained as
        one merged pass.
        """
        max_batch = self.config.max_batch
        batch: list[tuple[tuple, int, Violation]] = []
        region: set[str] = set()
        deferred: list[tuple[tuple, int, Violation]] = []
        while self._queue:
            if max_batch is not None and len(batch) >= max_batch:
                break
            entry = self._pop_entry()
            if entry is None:
                break
            nodes = entry[2].match.bound_node_ids()
            if batch and region & nodes:
                deferred.append(entry)
                continue
            batch.append(entry)
            region |= nodes
        for entry in deferred:
            self._push_entry(entry)
        return batch

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def count_remaining(self) -> int:
        """Stored matches that still violate their rule (the fixpoint check).

        The count is cached between calls and invalidated by applied repairs
        and maintenance passes, so a no-op ``repair()`` on an already-settled
        session does not pay a full store rescan.
        """
        if self._remaining_cache is not None:
            return self._remaining_cache
        with self._timed(), self.report.timings.measure("final-check"):
            remaining = 0
            for store in self.incremental.stores():
                rule = self.rules_by_pattern[store.pattern.name]
                for match in store:
                    if not match.is_valid(self.graph):
                        continue
                    if rule.is_violation(self.checker, match):
                        remaining += 1
        self._remaining_cache = remaining
        return remaining

    def finalize(self) -> RepairReport:
        """Settle the report against the current state; the core stays usable."""
        report = self.report
        report.remaining_violations = self.count_remaining()
        report.reached_fixpoint = (report.remaining_violations == 0
                                   and not self._queue)
        report.rounds = 1
        report.matching_stats = self.stats
        report.matches_enumerated = self.incremental.total_matches()
        report.log = self.executor.log
        # accumulated work time, not core lifetime: a session core may sit
        # idle between calls and that idle time is not repair time
        report.elapsed_seconds = self._elapsed
        report.final_nodes = self.graph.num_nodes
        report.final_edges = self.graph.num_edges
        return report

    @property
    def stats(self) -> MatchingStats:
        """Live aggregated matcher counters (maintenance + extension probes)."""
        stats = MatchingStats()
        stats.merge(self.incremental.stats)
        stats.merge(self.checker.stats)
        return stats

    def close(self) -> None:
        """Detach the candidate index from the graph's change feed."""
        if self._closed:
            return
        self._closed = True
        if self.index is not None:
            self.index.detach()


class FastRepairer:
    """Queue-driven repair with incremental match maintenance (one-shot facade
    over :class:`FastRepairCore`)."""

    def __init__(self, config: FastRepairConfig | None = None, events=None) -> None:
        self.config = config or FastRepairConfig()
        self.events = events

    def repair(self, graph: PropertyGraph, rules: RuleSet) -> RepairReport:
        """Repair ``graph`` in place; returns the :class:`RepairReport`."""
        core = FastRepairCore(graph, rules, config=self.config, events=self.events)
        try:
            core.drain()
            return core.finalize()
        finally:
            core.close()


def make_ownership_filter(graph: PropertyGraph, owned: frozenset[str]):
    """The priority-safe shard ownership ``accept`` filter (one
    implementation shared by :func:`repair_shard` and the warm pool's
    standing shard workers).

    Accepts violations whose matches bind owned nodes exclusively.  Once a
    still-valid violation is deferred — not owned, or overlapping an earlier
    deferral — its region is blocked and every later violation touching that
    region defers too: a deferred higher-priority repair could invalidate an
    overlapping lower-priority one, so the worker must not pre-empt the
    coordinator inside such regions.  Stale queue entries (matches no longer
    valid) never sterilise their region.
    """
    blocked: set[str] = set()

    def accept(violation: Violation) -> bool:
        region = violation.match.bound_node_ids()
        if region <= owned and not (region & blocked):
            return True
        if violation.match.is_valid(graph):
            blocked.update(region)
        return False

    return accept


def repair_shard(graph: PropertyGraph, rules: RuleSet,
                 config: FastRepairConfig | None = None,
                 owned_nodes: frozenset[str] | set[str] | None = None,
                 ) -> tuple[list[AppliedRepair], RepairReport]:
    """The shard-executable entry point of the fast algorithm.

    Runs one full :class:`FastRepairCore` lifecycle over ``graph`` —
    typically a shard working copy extracted by
    :mod:`repro.parallel.partition` — restricted, when ``owned_nodes`` is
    given, to violations whose matches bind only owned nodes (everything a
    repair mutates stays within one hop of its bound nodes, so owned repairs
    cannot reach past the shard's halo).

    Ownership is *priority-safe*: the queue pops in global priority order,
    and once a still-valid violation is deferred — not owned, or overlapping
    an earlier deferral — its region is blocked and every later violation
    touching that region is deferred too.  A deferred higher-priority repair
    could invalidate (or reshape) an overlapping lower-priority one, so the
    worker must not pre-empt the coordinator inside such regions; this is
    what keeps shard-local decisions identical to the sequential drain's.

    Returns the applied repairs in application order plus the core's
    finalized report; the graph is mutated in place, and the deltas inside
    the :class:`AppliedRepair` records are what a coordinator replays onto
    the primary graph.
    """
    core = FastRepairCore(graph, rules, config=config)
    try:
        collected: list[AppliedRepair] = []
        accept = None
        if owned_nodes is not None:
            accept = make_ownership_filter(graph, frozenset(owned_nodes))
        core.drain(accept=accept, collector=collected)
        return collected, core.finalize()
    finally:
        core.close()
