"""Canonical witness graphs for rules.

The static analysis reasons about small *witness graphs*: a concrete graph
that exhibits exactly one violation of one rule.  The witness is obtained by
materialising the rule's evidence pattern (variables become nodes, pattern
edges become edges) and choosing property values so that the rule's unary
predicates and cross-variable comparisons hold:

* ``exists(key)`` / ``eq(key, v)`` predicates set the property;
* ``same_value(x.k, y.k)`` comparisons give both sides the same synthetic
  value;
* ``different_value(x.k, y.k)`` comparisons give them distinct values;
* ordered comparisons pick numerically ordered values.

For incompleteness rules the witness deliberately omits the missing pattern,
so the materialised match *is* a violation; for conflict and redundancy rules
any evidence match is a violation by definition.
"""

from __future__ import annotations

from repro.graph.property_graph import PropertyGraph
from repro.matching.pattern import Pattern
from repro.matching.predicates import Comparison, ComparisonOp, PredicateOp
from repro.rules.grr import GraphRepairingRule


def _apply_unary_predicates(graph: PropertyGraph, pattern: Pattern) -> None:
    """Give witness nodes properties satisfying EXISTS / EQ / ordered predicates."""
    for node in pattern.nodes:
        for predicate in node.predicates:
            if predicate.op is PredicateOp.MISSING:
                continue
            if predicate.op is PredicateOp.EXISTS:
                graph.update_node(node.variable, {predicate.key: f"value-{predicate.key}"})
            elif predicate.op is PredicateOp.EQ:
                graph.update_node(node.variable, {predicate.key: predicate.value})
            elif predicate.op in (PredicateOp.GT, PredicateOp.GE):
                base = predicate.value if isinstance(predicate.value, (int, float)) else 0
                graph.update_node(node.variable, {predicate.key: base + 1})
            elif predicate.op in (PredicateOp.LT, PredicateOp.LE):
                base = predicate.value if isinstance(predicate.value, (int, float)) else 2
                graph.update_node(node.variable, {predicate.key: base - 1})
            elif predicate.op is PredicateOp.IN and predicate.value:
                graph.update_node(node.variable, {predicate.key: list(predicate.value)[0]})


def _apply_comparisons(graph: PropertyGraph, comparisons: tuple[Comparison, ...]) -> None:
    """Choose property values that satisfy the cross-variable comparisons.

    Works for node *and* edge variables: the materialised witness names its
    edges after the pattern's edge variables, so confidence-style policies on
    edges (e.g. ``e1.confidence >= e2.confidence``) are satisfiable too.
    """
    fresh = [100]

    def next_value() -> int:
        fresh[0] += 1
        return fresh[0]

    def has_element(variable: str) -> bool:
        return graph.has_node(variable) or graph.has_edge(variable)

    def get_property(variable: str, key: str):
        if graph.has_node(variable):
            return graph.node(variable).properties.get(key)
        if graph.has_edge(variable):
            return graph.edge(variable).properties.get(key)
        return None

    def set_property(variable: str, key: str, value) -> None:
        if graph.has_node(variable):
            graph.update_node(variable, {key: value})
        elif graph.has_edge(variable):
            graph.update_edge(variable, {key: value})

    for comparison in comparisons:
        left_var, left_key = comparison.left
        if not has_element(left_var):
            continue
        if comparison.right_literal:
            if comparison.op in (ComparisonOp.EQ, ComparisonOp.GE, ComparisonOp.LE):
                set_property(left_var, left_key, comparison.right_value)
            elif comparison.op is ComparisonOp.NE:
                set_property(left_var, left_key, f"not-{comparison.right_value}")
            elif comparison.op is ComparisonOp.GT and isinstance(comparison.right_value, (int, float)):
                set_property(left_var, left_key, comparison.right_value + 1)
            elif comparison.op is ComparisonOp.LT and isinstance(comparison.right_value, (int, float)):
                set_property(left_var, left_key, comparison.right_value - 1)
            continue
        if comparison.right is None:
            continue
        right_var, right_key = comparison.right
        if not has_element(right_var):
            continue
        if comparison.op in (ComparisonOp.EQ, ComparisonOp.GE, ComparisonOp.LE):
            shared = get_property(left_var, left_key)
            if shared is None:
                shared = get_property(right_var, right_key)
            if shared is None:
                shared = next_value()
            set_property(left_var, left_key, shared)
            set_property(right_var, right_key, shared)
        elif comparison.op is ComparisonOp.NE:
            set_property(left_var, left_key, next_value())
            set_property(right_var, right_key, next_value())
        elif comparison.op is ComparisonOp.GT:
            high, low = next_value(), fresh[0] - 10
            set_property(left_var, left_key, high)
            set_property(right_var, right_key, low)
        elif comparison.op is ComparisonOp.LT:
            low, high = next_value(), fresh[0] + 10
            set_property(left_var, left_key, low)
            set_property(right_var, right_key, high)


def materialize_pattern(pattern: Pattern, name: str | None = None,
                        wildcard_label: str = "Thing") -> PropertyGraph:
    """Materialise a pattern into a concrete graph whose nodes are the variables."""
    graph = PropertyGraph(name=name or f"witness-{pattern.name}")
    for node in pattern.nodes:
        graph.add_node(node.label or wildcard_label, node_id=node.variable)
    for edge in pattern.edges:
        graph.add_edge(edge.source, edge.target, edge.label or "related",
                       edge_id=edge.variable or None)
    _apply_unary_predicates(graph, pattern)
    _apply_comparisons(graph, pattern.comparisons)
    return graph


def witness_for_rule(rule: GraphRepairingRule) -> PropertyGraph:
    """A small graph containing exactly one violation of ``rule``."""
    return materialize_pattern(rule.pattern, name=f"witness-{rule.name}")


def witness_violation_count(rule: GraphRepairingRule, graph: PropertyGraph) -> int:
    """Number of violations of ``rule`` on ``graph`` (used to verify witnesses)."""
    from repro.repair.detector import detect_violations
    from repro.rules.grr import RuleSet

    return len(detect_violations(graph, RuleSet([rule], name="witness-check")))
