"""Rule dependency analysis: which rules can trigger, disable, or undo which.

All three relations are derived *syntactically* from each rule's pattern
requirements and repair-effect summaries (see
:meth:`repro.rules.grr.GraphRepairingRule.effects`), so they are safe
over-approximations: if the analysis says "r1 cannot trigger r2" that is
guaranteed; if it says "may trigger" the rules might still never interact on
real data.  The consistency and termination checkers build on these
over-approximations, which is exactly why their positive verdicts are sound
and their negative verdicts are only warnings (or, in exact mode, backed by a
chase witness).

Relations
---------
``r1 may trigger r2``
    r1's repair can create structure r2's violation needs: it adds labels
    r2's evidence pattern requires, or removes / rewrites structure that
    r2's *missing* pattern needs (for incompleteness rules, destroying the
    required extension creates a violation).

``r1 may disable r2``
    r1's repair can destroy structure r2's evidence needs, or supply r2's
    missing extension.

``r1 may undo r2`` (conflict pair)
    r1 deletes the kind of structure r2 adds, or vice versa — the raw
    material of repair oscillation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.rules.grr import GraphRepairingRule, RuleSet
from repro.rules.semantics import Semantics

WILDCARD = "*"


def _labels_overlap(first: set[str], second: set[str]) -> bool:
    """Label-set overlap where the wildcard ``"*"`` matches anything (if the
    other side is non-empty)."""
    if not first or not second:
        return False
    if WILDCARD in first or WILDCARD in second:
        return True
    return bool(first & second)


@dataclass(frozen=True)
class RuleRelation:
    """One directed relation between two rules, with a human-readable reason."""

    source: str
    target: str
    kind: str  # "triggers" | "disables" | "undoes"
    reason: str


@dataclass
class DependencyGraph:
    """All pairwise relations of a rule set."""

    rules: RuleSet
    relations: list[RuleRelation] = field(default_factory=list)

    def triggers(self) -> list[RuleRelation]:
        return [relation for relation in self.relations if relation.kind == "triggers"]

    def disables(self) -> list[RuleRelation]:
        return [relation for relation in self.relations if relation.kind == "disables"]

    def undoes(self) -> list[RuleRelation]:
        return [relation for relation in self.relations if relation.kind == "undoes"]

    def trigger_adjacency(self) -> dict[str, set[str]]:
        adjacency: dict[str, set[str]] = {name: set() for name in self.rules.names()}
        for relation in self.triggers():
            adjacency[relation.source].add(relation.target)
        return adjacency

    def trigger_cycles(self) -> list[list[str]]:
        """Elementary cycles of the trigger graph (via simple DFS enumeration)."""
        adjacency = self.trigger_adjacency()
        cycles: list[list[str]] = []
        seen_cycle_keys: set[tuple] = set()

        def dfs(start: str, current: str, path: list[str], visited: set[str]) -> None:
            for successor in sorted(adjacency.get(current, ())):
                if successor == start:
                    cycle = path[:]
                    key = tuple(sorted(cycle))
                    if key not in seen_cycle_keys:
                        seen_cycle_keys.add(key)
                        cycles.append(cycle)
                elif successor not in visited and successor > start:
                    # restrict to successors > start so each cycle is found from
                    # its smallest node only
                    visited.add(successor)
                    dfs(start, successor, path + [successor], visited)
                    visited.discard(successor)

        for name in sorted(adjacency):
            dfs(name, name, [name], {name})
        return cycles

    def relations_between(self, first: str, second: str) -> list[RuleRelation]:
        return [relation for relation in self.relations
                if {relation.source, relation.target} == {first, second}
                or (relation.source == first and relation.target == second)]

    def describe(self) -> str:
        lines = [f"DependencyGraph over {len(self.rules)} rules: "
                 f"{len(self.triggers())} trigger, {len(self.disables())} disable, "
                 f"{len(self.undoes())} undo relations"]
        for relation in self.relations:
            lines.append(f"  {relation.source} --{relation.kind}--> {relation.target}"
                         f"  ({relation.reason})")
        return "\n".join(lines)

    def __iter__(self) -> Iterator[RuleRelation]:
        return iter(self.relations)


def _may_trigger(first: GraphRepairingRule, second: GraphRepairingRule) -> str | None:
    """Reason string if ``first``'s repair may create a violation of ``second``."""
    effects = first.effects()
    # Adding evidence structure second's pattern requires.
    if _labels_overlap(effects.added_edge_labels, second.required_edge_labels()):
        return "adds edge labels the target's evidence pattern requires"
    if _labels_overlap(effects.added_node_labels, second.required_node_labels()):
        return "adds node labels the target's evidence pattern requires"
    if _labels_overlap(effects.updated_node_labels, second.required_node_labels()):
        return "updates nodes of labels the target's evidence pattern constrains"
    # For incompleteness targets: destroying the required extension creates violations.
    if second.semantics is Semantics.INCOMPLETENESS:
        if _labels_overlap(effects.removed_edge_labels, second.forbidden_edge_labels()):
            return "removes edges the target's missing pattern requires"
        if _labels_overlap(effects.removed_node_labels,
                           set(second.missing.node_labels()) if second.missing else set()):
            return "removes nodes the target's missing pattern requires"
    return None


def _may_disable(first: GraphRepairingRule, second: GraphRepairingRule) -> str | None:
    """Reason string if ``first``'s repair may remove a violation of ``second``."""
    effects = first.effects()
    if _labels_overlap(effects.removed_edge_labels, second.required_edge_labels()):
        return "removes edge labels the target's evidence pattern requires"
    if _labels_overlap(effects.removed_node_labels, second.required_node_labels()):
        return "removes node labels the target's evidence pattern requires"
    if second.semantics is Semantics.INCOMPLETENESS:
        if _labels_overlap(effects.added_edge_labels, second.forbidden_edge_labels()):
            return "adds the edges the target's missing pattern asks for"
    return None


def _may_undo(first: GraphRepairingRule, second: GraphRepairingRule) -> str | None:
    """Reason string if the two rules' repairs work against each other (either
    direction: what one adds, the other deletes)."""
    first_effects = first.effects()
    second_effects = second.effects()
    if _labels_overlap(first_effects.removed_edge_labels, second_effects.added_edge_labels) \
            or _labels_overlap(second_effects.removed_edge_labels,
                               first_effects.added_edge_labels):
        return "one rule deletes edge labels the other adds"
    if _labels_overlap(first_effects.removed_node_labels, second_effects.added_node_labels) \
            or _labels_overlap(second_effects.removed_node_labels,
                               first_effects.added_node_labels):
        return "one rule deletes node labels the other adds"
    return None


def build_dependency_graph(rules: RuleSet) -> DependencyGraph:
    """Compute all pairwise relations of ``rules``."""
    graph = DependencyGraph(rules=rules)
    rule_list = rules.rules()
    for first in rule_list:
        for second in rule_list:
            if first.name == second.name:
                # self-triggering is possible for additive rules whose output
                # matches their own evidence; record it so cycle detection sees it.
                reason = _may_trigger(first, second)
                if reason is not None:
                    graph.relations.append(RuleRelation(first.name, second.name,
                                                        "triggers", reason))
                continue
            trigger_reason = _may_trigger(first, second)
            if trigger_reason is not None:
                graph.relations.append(RuleRelation(first.name, second.name,
                                                    "triggers", trigger_reason))
            disable_reason = _may_disable(first, second)
            if disable_reason is not None:
                graph.relations.append(RuleRelation(first.name, second.name,
                                                    "disables", disable_reason))
            if first.name < second.name:
                undo_reason = _may_undo(first, second)
                if undo_reason is not None:
                    graph.relations.append(RuleRelation(first.name, second.name,
                                                        "undoes", undo_reason))
    return graph
