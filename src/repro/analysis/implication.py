"""Rule implication / redundancy analysis.

A rule r is *redundant* with respect to a rule set R (r ∈ R) if removing r
does not change what the set can repair: every violation r would fix is
already fixed by the remaining rules.  Exactly like consistency, the general
problem is intractable, so the practical check is witness-based:

1. materialise r's canonical witness graph (one violation of r, nothing else);
2. repair the witness with R \\ {r};
3. if the result no longer violates r, the other rules subsumed r's repair on
   its own canonical instance — r is reported redundant.

This is a sound *heuristic* in the direction that matters for rule-set
minimisation: a rule reported non-redundant is definitely needed (its witness
survives the others); a rule reported redundant could in principle still be
useful on exotic instances, which the report records as a caveat.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.witness import witness_for_rule
from repro.rules.grr import GraphRepairingRule, RuleSet


@dataclass
class ImplicationResult:
    """Redundancy verdict for one rule."""

    rule_name: str
    redundant: bool
    remaining_violations_after_others: int
    repairs_by_others: int

    def describe(self) -> str:
        status = "redundant" if self.redundant else "necessary"
        return (f"{self.rule_name}: {status} "
                f"(others applied {self.repairs_by_others} repairs, "
                f"{self.remaining_violations_after_others} violation(s) of the rule left)")


@dataclass
class RedundancyReport:
    """Redundancy verdicts for a whole rule set."""

    results: list[ImplicationResult] = field(default_factory=list)

    def redundant_rules(self) -> list[str]:
        return [result.rule_name for result in self.results if result.redundant]

    def necessary_rules(self) -> list[str]:
        return [result.rule_name for result in self.results if not result.redundant]

    def describe(self) -> str:
        lines = [f"Redundancy analysis: {len(self.redundant_rules())} of "
                 f"{len(self.results)} rules look redundant"]
        lines.extend("  " + result.describe() for result in self.results)
        return "\n".join(lines)


def is_rule_redundant(rule: GraphRepairingRule, rules: RuleSet,
                      max_repairs: int = 100) -> ImplicationResult:
    """Witness-based redundancy check of one rule against the rest of the set."""
    from repro.repair.detector import detect_violations
    from repro.repair.fast import FastRepairConfig, FastRepairer

    others = RuleSet((other for other in rules if other.name != rule.name),
                     name=f"{rules.name}-minus-{rule.name}")
    witness = witness_for_rule(rule)
    single = RuleSet([rule], name=f"only-{rule.name}")

    if not others.rules():
        remaining = len(detect_violations(witness, single))
        return ImplicationResult(rule_name=rule.name, redundant=False,
                                 remaining_violations_after_others=remaining,
                                 repairs_by_others=0)

    repairer = FastRepairer(FastRepairConfig(max_repairs=max_repairs))
    report = repairer.repair(witness, others)
    remaining = len(detect_violations(witness, single))
    return ImplicationResult(rule_name=rule.name,
                             redundant=remaining == 0,
                             remaining_violations_after_others=remaining,
                             repairs_by_others=report.repairs_applied)


def analyze_redundancy(rules: RuleSet, max_repairs: int = 100) -> RedundancyReport:
    """Run the redundancy check for every rule of the set."""
    report = RedundancyReport()
    for rule in rules:
        report.results.append(is_rule_redundant(rule, rules, max_repairs=max_repairs))
    return report
