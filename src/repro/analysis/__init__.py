"""Static analysis of rule sets: dependencies, consistency, termination, and
redundancy (system S4 in DESIGN.md)."""

from repro.analysis.consistency import (
    ConsistencyReport,
    ConsistencyVerdict,
    check_consistency,
)
from repro.analysis.dependency import (
    DependencyGraph,
    RuleRelation,
    build_dependency_graph,
)
from repro.analysis.implication import (
    ImplicationResult,
    RedundancyReport,
    analyze_redundancy,
    is_rule_redundant,
)
from repro.analysis.termination import (
    TerminationReport,
    TerminationVerdict,
    analyze_termination,
)
from repro.analysis.witness import (
    materialize_pattern,
    witness_for_rule,
    witness_violation_count,
)

__all__ = [
    "DependencyGraph",
    "RuleRelation",
    "build_dependency_graph",
    "ConsistencyReport",
    "ConsistencyVerdict",
    "check_consistency",
    "TerminationReport",
    "TerminationVerdict",
    "analyze_termination",
    "ImplicationResult",
    "RedundancyReport",
    "analyze_redundancy",
    "is_rule_redundant",
    "materialize_pattern",
    "witness_for_rule",
    "witness_violation_count",
]
