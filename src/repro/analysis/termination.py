"""Termination analysis of rule sets.

A repairing run terminates if it cannot apply repairs forever.  The exact
question is undecidable in general (repairs can grow the graph), so this
module implements the standard sufficient conditions over the syntactic
trigger graph (see :mod:`repro.analysis.dependency`):

* if the trigger graph is **acyclic**, every repair cascade has bounded
  length — the rule set terminates;
* if every trigger cycle consists solely of **subtractive** rules (rules that
  only delete / merge), the cascade strictly shrinks the graph on every lap of
  the cycle and therefore terminates;
* a cycle containing an **additive** rule is a potential source of
  non-termination; the verdict is *unknown* (it may still terminate on all
  real graphs, which is why the repair engine keeps an iteration budget as a
  backstop).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.dependency import DependencyGraph, build_dependency_graph
from repro.rules.grr import GraphRepairingRule, RuleSet


class TerminationVerdict(enum.Enum):
    TERMINATING = "terminating"
    UNKNOWN = "unknown"


@dataclass
class TerminationReport:
    """Outcome of the termination analysis."""

    verdict: TerminationVerdict
    trigger_cycles: list[list[str]] = field(default_factory=list)
    risky_cycles: list[list[str]] = field(default_factory=list)
    reasons: list[str] = field(default_factory=list)

    @property
    def is_terminating(self) -> bool:
        return self.verdict is TerminationVerdict.TERMINATING

    def describe(self) -> str:
        lines = [f"Termination: {self.verdict.value}"]
        lines.extend(f"  - {reason}" for reason in self.reasons)
        for cycle in self.risky_cycles:
            lines.append(f"  risky cycle: {' -> '.join(cycle + [cycle[0]])}")
        return "\n".join(lines)


def _is_additive(rule: GraphRepairingRule) -> bool:
    return rule.effects().is_additive


def analyze_termination(rules: RuleSet,
                        dependency_graph: DependencyGraph | None = None) -> TerminationReport:
    """Run the sufficient-condition termination analysis."""
    dependency_graph = dependency_graph or build_dependency_graph(rules)
    cycles = dependency_graph.trigger_cycles()

    if not cycles:
        return TerminationReport(
            verdict=TerminationVerdict.TERMINATING,
            reasons=["the trigger graph is acyclic: repair cascades have bounded length"])

    risky = []
    for cycle in cycles:
        if any(_is_additive(rules.get(name)) for name in cycle):
            risky.append(cycle)

    if not risky:
        return TerminationReport(
            verdict=TerminationVerdict.TERMINATING,
            trigger_cycles=cycles,
            reasons=["all trigger cycles consist of subtractive rules only; every lap "
                     "of a cycle strictly shrinks the graph"])

    return TerminationReport(
        verdict=TerminationVerdict.UNKNOWN,
        trigger_cycles=cycles,
        risky_cycles=risky,
        reasons=[f"{len(risky)} trigger cycle(s) contain additive rules; the analysis "
                 "cannot guarantee termination (the repair engine's iteration budget "
                 "still bounds every run)"])
