"""Consistency checking of rule sets.

A rule set is *consistent* if, on every graph, the repairing process
terminates and does not oscillate (no two rules keep undoing each other's
repairs), so that every run ends in a graph with no remaining violations of
the set.  Deciding this exactly is intractable (it quantifies over all
graphs), which is precisely why the paper studies the static-analysis problem.
This module offers the two practical layers:

* **Sufficient conditions** (the default, polynomial in the number of rules):
  combine the termination analysis with the pairwise *undo* relation.  If the
  trigger graph is benign and no pair of rules adds and deletes the same kind
  of structure, the set is reported *consistent*; detected mutual-undo pairs
  that also trigger each other are reported *inconsistent*; everything else is
  *unknown*.
* **Exact (bounded-chase) checking** (``exact=True``, exponential — intended
  for small rule sets): for every rule, materialise its canonical witness
  graph and run the actual repair engine with a generous budget.  If some
  witness does not reach a violation-free fixpoint within the budget, the pair
  of rules still fighting over it is reported with the witness as evidence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.dependency import DependencyGraph, build_dependency_graph
from repro.analysis.termination import TerminationVerdict, analyze_termination
from repro.analysis.witness import witness_for_rule
from repro.rules.grr import RuleSet


class ConsistencyVerdict(enum.Enum):
    CONSISTENT = "consistent"
    INCONSISTENT = "inconsistent"
    UNKNOWN = "unknown"


@dataclass
class ConsistencyReport:
    """Outcome of the consistency analysis."""

    verdict: ConsistencyVerdict
    reasons: list[str] = field(default_factory=list)
    conflicting_pairs: list[tuple[str, str]] = field(default_factory=list)
    non_converging_rules: list[str] = field(default_factory=list)
    checked_exactly: bool = False

    @property
    def is_consistent(self) -> bool:
        return self.verdict is ConsistencyVerdict.CONSISTENT

    def describe(self) -> str:
        lines = [f"Consistency: {self.verdict.value}"
                 f"{' (exact bounded-chase check)' if self.checked_exactly else ''}"]
        lines.extend(f"  - {reason}" for reason in self.reasons)
        for first, second in self.conflicting_pairs:
            lines.append(f"  conflicting pair: {first} <-> {second}")
        for name in self.non_converging_rules:
            lines.append(f"  witness of rule {name!r} did not converge")
        return "\n".join(lines)


def _sufficient_conditions(rules: RuleSet,
                           dependency_graph: DependencyGraph) -> ConsistencyReport:
    termination = analyze_termination(rules, dependency_graph)
    undo_pairs = [(relation.source, relation.target)
                  for relation in dependency_graph.undoes()]
    trigger_adjacency = dependency_graph.trigger_adjacency()

    # Mutual-undo pairs that can also re-activate each other are the classic
    # oscillation shape: r1 deletes what r2 adds *and* r1's repair re-creates a
    # violation of r2 (or vice versa).
    oscillating: list[tuple[str, str]] = []
    for first, second in undo_pairs:
        if second in trigger_adjacency.get(first, set()) and \
                first in trigger_adjacency.get(second, set()):
            oscillating.append((first, second))

    if oscillating:
        return ConsistencyReport(
            verdict=ConsistencyVerdict.INCONSISTENT,
            reasons=["found rule pairs that delete what the other adds and mutually "
                     "re-trigger each other (repair oscillation)"],
            conflicting_pairs=oscillating)

    if termination.verdict is TerminationVerdict.TERMINATING and not undo_pairs:
        return ConsistencyReport(
            verdict=ConsistencyVerdict.CONSISTENT,
            reasons=["the trigger graph guarantees termination and no rule deletes "
                     "the kind of structure another rule adds"])

    reasons = []
    if termination.verdict is not TerminationVerdict.TERMINATING:
        reasons.append("termination could not be established "
                       "(trigger cycles involve additive rules)")
    if undo_pairs:
        reasons.append(f"{len(undo_pairs)} rule pair(s) add and delete overlapping "
                       "structure; they do not provably oscillate, but the sufficient "
                       "conditions cannot rule it out")
    return ConsistencyReport(verdict=ConsistencyVerdict.UNKNOWN, reasons=reasons,
                             conflicting_pairs=undo_pairs)


def _exact_check(rules: RuleSet, base: ConsistencyReport,
                 max_repairs_per_witness: int) -> ConsistencyReport:
    """Bounded chase on every rule's canonical witness graph."""
    from repro.repair.fast import FastRepairConfig, FastRepairer

    non_converging: list[str] = []
    for rule in rules:
        witness = witness_for_rule(rule)
        repairer = FastRepairer(FastRepairConfig(max_repairs=max_repairs_per_witness))
        report = repairer.repair(witness, rules)
        if not report.reached_fixpoint:
            non_converging.append(rule.name)

    if non_converging:
        return ConsistencyReport(
            verdict=ConsistencyVerdict.INCONSISTENT,
            reasons=[f"bounded chase ({max_repairs_per_witness} repairs) on the canonical "
                     "witness graph of the listed rules did not reach a violation-free "
                     "fixpoint"],
            conflicting_pairs=base.conflicting_pairs,
            non_converging_rules=non_converging,
            checked_exactly=True)

    # Every witness converged.  Together with no observed oscillation this is
    # strong evidence; it upgrades an UNKNOWN (or a syntactic false alarm) to
    # CONSISTENT — still a bounded check, which ``checked_exactly`` records.
    reasons = list(base.reasons)
    if base.verdict is ConsistencyVerdict.INCONSISTENT:
        reasons.append("the syntactic oscillation alarm was not confirmed by the "
                       "bounded chase")
    reasons.append("every rule's canonical witness graph converged to a "
                   "violation-free fixpoint under the full rule set")
    return ConsistencyReport(
        verdict=ConsistencyVerdict.CONSISTENT,
        reasons=reasons,
        conflicting_pairs=[],
        checked_exactly=True)


def check_consistency(rules: RuleSet, exact: bool = False,
                      max_repairs_per_witness: int = 200,
                      dependency_graph: DependencyGraph | None = None) -> ConsistencyReport:
    """Check a rule set for consistency.

    With ``exact=False`` only the polynomial sufficient conditions run.  With
    ``exact=True`` the bounded-chase refinement runs on top; it can both
    upgrade an *unknown* verdict to *consistent* and produce concrete
    non-convergence evidence.  Exact checking materialises one witness per
    rule and runs the repair engine on it, so its cost grows quickly with rule
    count and pattern size — that trade-off is measured in experiment E6.
    """
    dependency_graph = dependency_graph or build_dependency_graph(rules)
    base = _sufficient_conditions(rules, dependency_graph)
    if not exact:
        return base
    return _exact_check(rules, base, max_repairs_per_witness)
