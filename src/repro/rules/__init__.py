"""Graph repairing rules: operations, semantics, rule objects, builder, DSL
parser, and the canned domain libraries (system S3 in DESIGN.md)."""

from repro.rules.builder import (
    RuleBuilder,
    conflict_rule,
    incompleteness_rule,
    redundancy_rule,
)
from repro.rules.grr import GraphRepairingRule, RuleEffects, RuleSet
from repro.rules.library import (
    KG,
    MOVIES,
    RULE_LIBRARIES,
    SOCIAL,
    knowledge_graph_rules,
    movie_rules,
    rules_for_domain,
    social_rules,
)
from repro.rules.operations import (
    AddEdge,
    AddNode,
    DeleteEdge,
    DeleteNode,
    ExecutionContext,
    MergeNodes,
    OperationKind,
    RepairOperation,
    UpdateEdge,
    UpdateNode,
    ValueRef,
)
from repro.rules.parser import parse_rules, parse_rules_file
from repro.rules.semantics import ALLOWED_OPERATIONS, Semantics

__all__ = [
    "GraphRepairingRule",
    "RuleSet",
    "RuleEffects",
    "Semantics",
    "ALLOWED_OPERATIONS",
    "OperationKind",
    "RepairOperation",
    "AddNode",
    "AddEdge",
    "DeleteEdge",
    "DeleteNode",
    "UpdateNode",
    "UpdateEdge",
    "MergeNodes",
    "ValueRef",
    "ExecutionContext",
    "RuleBuilder",
    "incompleteness_rule",
    "conflict_rule",
    "redundancy_rule",
    "parse_rules",
    "parse_rules_file",
    "knowledge_graph_rules",
    "movie_rules",
    "social_rules",
    "rules_for_domain",
    "RULE_LIBRARIES",
    "KG",
    "MOVIES",
    "SOCIAL",
]
