"""The seven primitive repair operations of graph repairing rules.

A GRR's right-hand side is a sequence of operations over the variables bound
by its pattern:

=============  =============================================================
``ADD_NODE``    create a node (introduces a *new* variable usable afterwards)
``ADD_EDGE``    create an edge between matched or newly created nodes
``DELETE_EDGE`` remove a matched edge (by edge variable, or by endpoints+label)
``DELETE_NODE`` remove a matched node together with its incident edges
``UPDATE_NODE`` set / copy / remove node properties, or relabel the node
``UPDATE_EDGE`` set / copy / remove edge properties, or relabel the edge
``MERGE_NODES`` fuse one matched node into another, redirecting edges
=============  =============================================================

Operations are declarative dataclasses; execution happens through
:meth:`RepairOperation.apply` against an :class:`ExecutionContext` that
carries the graph, the match bindings, and the ids of nodes created earlier in
the same repair.  Property values may be literals or :class:`ValueRef`
references that copy a value from another matched element at execution time
(e.g. *"set the person's nationality to the country's name"*).

Each operation also exposes a static *effect summary* (which labels it can
add or remove) used by the rule-set analysis to build the trigger/conflict
dependency graph without executing anything.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import InvalidRuleError, RepairExecutionError
from repro.graph.property_graph import PropertyGraph
from repro.matching.pattern import Match


class OperationKind(enum.Enum):
    """The seven primitive operation kinds."""

    ADD_NODE = "add_node"
    ADD_EDGE = "add_edge"
    DELETE_EDGE = "delete_edge"
    DELETE_NODE = "delete_node"
    UPDATE_NODE = "update_node"
    UPDATE_EDGE = "update_edge"
    MERGE_NODES = "merge_nodes"


@dataclass(frozen=True)
class ValueRef:
    """A reference to a property of a matched element, resolved at execution time.

    ``variable`` may be a node or edge variable of the rule's pattern (or a
    node created earlier by ``ADD_NODE``); ``key`` is the property to read.
    """

    variable: str
    key: str

    def describe(self) -> str:
        return f"{self.variable}.{self.key}"


@dataclass
class ExecutionContext:
    """Everything an operation needs to execute against a concrete match."""

    graph: PropertyGraph
    match: Match
    new_nodes: dict[str, str] = field(default_factory=dict)

    # -- resolution helpers -------------------------------------------------

    def node_id(self, variable: str) -> str:
        """Resolve a variable to a node id (pattern binding or newly created node)."""
        if variable in self.new_nodes:
            return self.new_nodes[variable]
        if variable in self.match.node_bindings:
            return self.match.node_bindings[variable]
        raise RepairExecutionError(f"variable {variable!r} is not bound to a node")

    def edge_id(self, variable: str) -> str:
        if variable in self.match.edge_bindings:
            return self.match.edge_bindings[variable]
        raise RepairExecutionError(f"variable {variable!r} is not bound to an edge")

    def resolve_value(self, value: Any) -> Any:
        """Literals pass through; :class:`ValueRef` reads the referenced property."""
        if not isinstance(value, ValueRef):
            return value
        variable = value.variable
        if variable in self.match.edge_bindings:
            edge_id = self.match.edge_bindings[variable]
            if not self.graph.has_edge(edge_id):
                raise RepairExecutionError(
                    f"cannot read {value.describe()}: edge no longer exists")
            return self.graph.edge(edge_id).properties.get(value.key)
        node_id = self.node_id(variable)
        if not self.graph.has_node(node_id):
            raise RepairExecutionError(
                f"cannot read {value.describe()}: node no longer exists")
        return self.graph.node(node_id).properties.get(value.key)

    def resolve_properties(self, properties: Mapping[str, Any]) -> dict[str, Any]:
        return {key: self.resolve_value(value) for key, value in properties.items()}


class RepairOperation:
    """Base class of the seven operations."""

    kind: OperationKind

    def apply(self, context: ExecutionContext) -> None:
        """Execute against the graph; raises :class:`RepairExecutionError` on failure."""
        raise NotImplementedError

    # -- static effect summaries used by the analysis layer -----------------

    def variables_read(self) -> set[str]:
        """Pattern variables this operation needs bound."""
        return set()

    def variables_introduced(self) -> set[str]:
        """New variables this operation makes available to later operations."""
        return set()

    def added_node_labels(self) -> set[str]:
        return set()

    def added_edge_labels(self) -> set[str]:
        return set()

    def removed_node_variables(self) -> set[str]:
        return set()

    def removed_edge_variables(self) -> set[str]:
        return set()

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


@dataclass(repr=False)
class AddNode(RepairOperation):
    """Create a node labelled ``label`` and bind it to ``variable``."""

    variable: str
    label: str
    properties: dict[str, Any] = field(default_factory=dict)
    kind = OperationKind.ADD_NODE

    def apply(self, context: ExecutionContext) -> None:
        if self.variable in context.match.node_bindings or self.variable in context.new_nodes:
            raise RepairExecutionError(
                f"ADD_NODE variable {self.variable!r} is already bound")
        node = context.graph.add_node(self.label,
                                      context.resolve_properties(self.properties))
        context.new_nodes[self.variable] = node.id

    def variables_read(self) -> set[str]:
        return {value.variable for value in self.properties.values()
                if isinstance(value, ValueRef)}

    def variables_introduced(self) -> set[str]:
        return {self.variable}

    def added_node_labels(self) -> set[str]:
        return {self.label}

    def describe(self) -> str:
        return f"ADD_NODE {self.variable}:{self.label} {self.properties}"


@dataclass(repr=False)
class AddEdge(RepairOperation):
    """Create an edge ``source -[label]-> target`` between resolved variables."""

    source: str
    target: str
    label: str
    properties: dict[str, Any] = field(default_factory=dict)
    skip_if_present: bool = True
    kind = OperationKind.ADD_EDGE

    def apply(self, context: ExecutionContext) -> None:
        source_id = context.node_id(self.source)
        target_id = context.node_id(self.target)
        for node_id in (source_id, target_id):
            if not context.graph.has_node(node_id):
                raise RepairExecutionError(
                    f"ADD_EDGE endpoint {node_id!r} no longer exists")
        if self.skip_if_present and context.graph.has_edge_between(source_id, target_id,
                                                                   self.label):
            return
        context.graph.add_edge(source_id, target_id, self.label,
                               context.resolve_properties(self.properties))

    def variables_read(self) -> set[str]:
        read = {self.source, self.target}
        read.update(value.variable for value in self.properties.values()
                    if isinstance(value, ValueRef))
        return read

    def added_edge_labels(self) -> set[str]:
        return {self.label}

    def describe(self) -> str:
        return f"ADD_EDGE ({self.source})-[{self.label}]->({self.target})"


@dataclass(repr=False)
class DeleteEdge(RepairOperation):
    """Remove a matched edge.

    Either ``edge_variable`` names an edge bound by the pattern, or
    ``source``/``target``/``label`` identify the edge(s) to delete between two
    matched nodes (all matching edges are deleted in that form).
    """

    edge_variable: str | None = None
    source: str | None = None
    target: str | None = None
    label: str | None = None
    kind = OperationKind.DELETE_EDGE

    def __post_init__(self) -> None:
        if self.edge_variable is None and (self.source is None or self.target is None):
            raise InvalidRuleError(
                "DELETE_EDGE needs either an edge variable or source and target variables")

    def apply(self, context: ExecutionContext) -> None:
        if self.edge_variable is not None:
            edge_id = context.edge_id(self.edge_variable)
            if context.graph.has_edge(edge_id):
                context.graph.remove_edge(edge_id)
            return
        source_id = context.node_id(self.source)  # type: ignore[arg-type]
        target_id = context.node_id(self.target)  # type: ignore[arg-type]
        if not (context.graph.has_node(source_id) and context.graph.has_node(target_id)):
            return
        for edge in context.graph.edges_between(source_id, target_id, self.label):
            context.graph.remove_edge(edge.id)

    def variables_read(self) -> set[str]:
        if self.edge_variable is not None:
            return {self.edge_variable}
        return {self.source, self.target}  # type: ignore[arg-type]

    def removed_edge_variables(self) -> set[str]:
        return {self.edge_variable} if self.edge_variable is not None else set()

    def describe(self) -> str:
        if self.edge_variable is not None:
            return f"DELETE_EDGE {self.edge_variable}"
        return f"DELETE_EDGE ({self.source})-[{self.label or '*'}]->({self.target})"


@dataclass(repr=False)
class DeleteNode(RepairOperation):
    """Remove a matched node and all its incident edges."""

    variable: str
    kind = OperationKind.DELETE_NODE

    def apply(self, context: ExecutionContext) -> None:
        node_id = context.node_id(self.variable)
        if context.graph.has_node(node_id):
            context.graph.remove_node(node_id)

    def variables_read(self) -> set[str]:
        return {self.variable}

    def removed_node_variables(self) -> set[str]:
        return {self.variable}

    def describe(self) -> str:
        return f"DELETE_NODE {self.variable}"


@dataclass(repr=False)
class UpdateNode(RepairOperation):
    """Set / copy / remove properties of a matched node, or relabel it."""

    variable: str
    set_properties: dict[str, Any] = field(default_factory=dict)
    remove_keys: tuple[str, ...] = ()
    new_label: str | None = None
    kind = OperationKind.UPDATE_NODE

    def apply(self, context: ExecutionContext) -> None:
        node_id = context.node_id(self.variable)
        if not context.graph.has_node(node_id):
            raise RepairExecutionError(f"UPDATE_NODE target {node_id!r} no longer exists")
        if self.set_properties or self.remove_keys:
            context.graph.update_node(node_id,
                                      context.resolve_properties(self.set_properties),
                                      remove_keys=self.remove_keys)
        if self.new_label is not None:
            context.graph.relabel_node(node_id, self.new_label)

    def variables_read(self) -> set[str]:
        read = {self.variable}
        read.update(value.variable for value in self.set_properties.values()
                    if isinstance(value, ValueRef))
        return read

    def added_node_labels(self) -> set[str]:
        return {self.new_label} if self.new_label is not None else set()

    def describe(self) -> str:
        parts = [f"UPDATE_NODE {self.variable}"]
        if self.set_properties:
            parts.append(f"set {self.set_properties}")
        if self.remove_keys:
            parts.append(f"remove {list(self.remove_keys)}")
        if self.new_label:
            parts.append(f"relabel {self.new_label}")
        return " ".join(parts)


@dataclass(repr=False)
class UpdateEdge(RepairOperation):
    """Set / copy / remove properties of a matched edge, or relabel it."""

    edge_variable: str
    set_properties: dict[str, Any] = field(default_factory=dict)
    remove_keys: tuple[str, ...] = ()
    new_label: str | None = None
    kind = OperationKind.UPDATE_EDGE

    def apply(self, context: ExecutionContext) -> None:
        edge_id = context.edge_id(self.edge_variable)
        if not context.graph.has_edge(edge_id):
            raise RepairExecutionError(f"UPDATE_EDGE target {edge_id!r} no longer exists")
        if self.set_properties or self.remove_keys:
            context.graph.update_edge(edge_id,
                                      context.resolve_properties(self.set_properties),
                                      remove_keys=self.remove_keys)
        if self.new_label is not None:
            context.graph.relabel_edge(edge_id, self.new_label)

    def variables_read(self) -> set[str]:
        read = {self.edge_variable}
        read.update(value.variable for value in self.set_properties.values()
                    if isinstance(value, ValueRef))
        return read

    def added_edge_labels(self) -> set[str]:
        return {self.new_label} if self.new_label is not None else set()

    def describe(self) -> str:
        parts = [f"UPDATE_EDGE {self.edge_variable}"]
        if self.set_properties:
            parts.append(f"set {self.set_properties}")
        if self.remove_keys:
            parts.append(f"remove {list(self.remove_keys)}")
        if self.new_label:
            parts.append(f"relabel {self.new_label}")
        return " ".join(parts)


@dataclass(repr=False)
class MergeNodes(RepairOperation):
    """Fuse the node bound by ``merge`` into the node bound by ``keep``."""

    keep: str
    merge: str
    prefer_kept_properties: bool = True
    kind = OperationKind.MERGE_NODES

    def apply(self, context: ExecutionContext) -> None:
        keep_id = context.node_id(self.keep)
        merge_id = context.node_id(self.merge)
        if keep_id == merge_id:
            return
        if not context.graph.has_node(keep_id) or not context.graph.has_node(merge_id):
            return
        context.graph.merge_nodes(keep_id, merge_id,
                                  prefer_kept_properties=self.prefer_kept_properties)

    def variables_read(self) -> set[str]:
        return {self.keep, self.merge}

    def removed_node_variables(self) -> set[str]:
        return {self.merge}

    def describe(self) -> str:
        return f"MERGE_NODES keep={self.keep} merge={self.merge}"


ALL_OPERATION_KINDS: tuple[OperationKind, ...] = tuple(OperationKind)

ADDITIVE_OPERATIONS = frozenset({OperationKind.ADD_NODE, OperationKind.ADD_EDGE})
SUBTRACTIVE_OPERATIONS = frozenset({OperationKind.DELETE_EDGE, OperationKind.DELETE_NODE,
                                    OperationKind.MERGE_NODES})
MUTATING_OPERATIONS = frozenset({OperationKind.UPDATE_NODE, OperationKind.UPDATE_EDGE})
