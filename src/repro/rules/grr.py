"""Graph Repairing Rules (GRRs) — the paper's core artefact.

A :class:`GraphRepairingRule` couples

* a **semantics** (incompleteness / conflict / redundancy),
* an **evidence pattern** whose matches locate candidate errors,
* for incompleteness rules, a **missing pattern** that shares variables with
  the evidence and describes what must additionally exist (its absence is the
  violation),
* a sequence of **repair operations** over the matched variables, and
* a **priority** used by the repair planner to order violations of different
  rules.

Construction performs full static validation: operation kinds must be legal
for the semantics, every variable an operation reads must be bound by the
evidence pattern (or introduced by an earlier ``ADD_NODE`` in the same rule),
and incompleteness rules must have a missing pattern overlapping the evidence.
The class also exposes *effect summaries* (which node/edge labels the rule can
add or remove) consumed by the rule-set analysis in :mod:`repro.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import InvalidRuleError
from repro.matching.pattern import Match, Pattern
from repro.rules.operations import (
    AddEdge,
    AddNode,
    DeleteEdge,
    DeleteNode,
    ExecutionContext,
    MergeNodes,
    OperationKind,
    RepairOperation,
    UpdateEdge,
    UpdateNode,
)
from repro.rules.semantics import Semantics, validate_operations_for_semantics


@dataclass
class RuleEffects:
    """Static summary of what a rule's repairs can do to the graph.

    Labels are concrete strings where the rule names them; the wildcard
    ``"*"`` stands for "some label we cannot determine statically" (e.g. a
    deleted node variable with no label constraint).
    """

    added_node_labels: set[str] = field(default_factory=set)
    added_edge_labels: set[str] = field(default_factory=set)
    removed_node_labels: set[str] = field(default_factory=set)
    removed_edge_labels: set[str] = field(default_factory=set)
    updated_node_labels: set[str] = field(default_factory=set)
    updated_edge_labels: set[str] = field(default_factory=set)

    @property
    def is_additive(self) -> bool:
        return bool(self.added_node_labels or self.added_edge_labels)

    @property
    def is_subtractive(self) -> bool:
        return bool(self.removed_node_labels or self.removed_edge_labels)


class GraphRepairingRule:
    """A single graph repairing rule.

    Parameters
    ----------
    name:
        Unique rule name (used in provenance, reports, and analysis).
    semantics:
        One of :class:`~repro.rules.semantics.Semantics`.
    pattern:
        The evidence pattern.
    operations:
        The repair operations, executed in order on each violation.
    missing:
        For incompleteness rules, the pattern that must be absent; it must
        share at least one node variable with ``pattern``.
    priority:
        Larger = repaired earlier when violations of several rules are
        pending (default 0).
    description:
        Free-text documentation shown in reports.
    """

    def __init__(self, name: str, semantics: Semantics, pattern: Pattern,
                 operations: Iterable[RepairOperation], missing: Pattern | None = None,
                 priority: int = 0, description: str = "") -> None:
        self.name = name
        self.semantics = semantics
        self.pattern = pattern
        self.missing = missing
        self.operations: tuple[RepairOperation, ...] = tuple(operations)
        self.priority = priority
        self.description = description
        self._validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        validate_operations_for_semantics(self.semantics, list(self.operations))

        if self.semantics is Semantics.INCOMPLETENESS:
            if self.missing is None:
                raise InvalidRuleError(
                    f"incompleteness rule {self.name!r} needs a missing pattern")
            shared = set(self.pattern.variables) & set(self.missing.variables)
            if not shared:
                raise InvalidRuleError(
                    f"rule {self.name!r}: the missing pattern must share at least one "
                    "variable with the evidence pattern")
        elif self.missing is not None:
            raise InvalidRuleError(
                f"{self.semantics.value} rule {self.name!r} must not have a missing "
                "pattern (only incompleteness rules are defined by an absent extension)")

        bound: set[str] = set(self.pattern.variables) | set(self.pattern.edge_variables)
        for operation in self.operations:
            unknown = operation.variables_read() - bound
            if unknown:
                raise InvalidRuleError(
                    f"rule {self.name!r}: operation {operation.describe()} reads "
                    f"unbound variable(s) {sorted(unknown)}")
            clash = operation.variables_introduced() & bound
            if clash:
                raise InvalidRuleError(
                    f"rule {self.name!r}: operation {operation.describe()} re-introduces "
                    f"already-bound variable(s) {sorted(clash)}")
            bound |= operation.variables_introduced()

    # ------------------------------------------------------------------
    # violation semantics
    # ------------------------------------------------------------------

    def is_violation(self, matcher, match: Match) -> bool:
        """Decide whether ``match`` constitutes a violation of this rule.

        ``matcher`` is any object providing ``exists_extension(pattern,
        bindings)`` (see :class:`repro.matching.matcher.Matcher`).  For
        conflict and redundancy rules every pattern match is a violation; for
        incompleteness rules the match is a violation only if the missing
        pattern has *no* extension consistent with the shared variables.
        """
        if self.semantics is not Semantics.INCOMPLETENESS:
            return True
        assert self.missing is not None
        return not matcher.exists_extension(self.missing, match.node_bindings)

    def execute(self, graph, match: Match) -> ExecutionContext:
        """Apply the rule's operations to ``graph`` at ``match``.

        Returns the execution context (exposing ids of nodes created by
        ``ADD_NODE``).  The caller — the repair executor — is responsible for
        wrapping this in provenance and delta recording.
        """
        context = ExecutionContext(graph=graph, match=match)
        for operation in self.operations:
            operation.apply(context)
        return context

    # ------------------------------------------------------------------
    # static effect summaries (consumed by the analysis layer)
    # ------------------------------------------------------------------

    def _label_of_node_variable(self, variable: str) -> str:
        if variable in self.pattern.variables:
            label = self.pattern.node_variable(variable).label
            return label if label is not None else "*"
        return "*"

    def _label_of_edge_variable(self, variable: str) -> str:
        for edge in self.pattern.edges:
            if edge.variable == variable:
                return edge.label if edge.label is not None else "*"
        return "*"

    def effects(self) -> RuleEffects:
        """Aggregate the operations' effects, resolving variables to pattern labels."""
        effects = RuleEffects()
        for operation in self.operations:
            effects.added_node_labels |= operation.added_node_labels()
            effects.added_edge_labels |= operation.added_edge_labels()
            for variable in operation.removed_node_variables():
                effects.removed_node_labels.add(self._label_of_node_variable(variable))
            for variable in operation.removed_edge_variables():
                effects.removed_edge_labels.add(self._label_of_edge_variable(variable))
            if isinstance(operation, DeleteEdge) and operation.edge_variable is None:
                effects.removed_edge_labels.add(operation.label if operation.label else "*")
            if isinstance(operation, DeleteNode):
                # incident edges of a deleted node disappear too
                effects.removed_edge_labels.add("*")
            if isinstance(operation, MergeNodes):
                # merging can drop duplicate edges of any label incident to the merged node
                effects.removed_edge_labels.add("*")
                effects.updated_node_labels.add(self._label_of_node_variable(operation.keep))
            if isinstance(operation, UpdateNode):
                effects.updated_node_labels.add(self._label_of_node_variable(operation.variable))
            if isinstance(operation, UpdateEdge):
                effects.updated_edge_labels.add(self._label_of_edge_variable(operation.edge_variable))
        return effects

    def required_node_labels(self) -> set[str]:
        """Node labels the evidence pattern requires (wildcard variables excluded)."""
        return self.pattern.node_labels()

    def required_edge_labels(self) -> set[str]:
        """Edge labels the evidence pattern requires (wildcard edges excluded)."""
        return self.pattern.edge_labels()

    def forbidden_edge_labels(self) -> set[str]:
        """Edge labels whose *presence* the rule treats as part of the error.

        For incompleteness rules these are the labels of the missing pattern
        (adding them can satisfy the rule); returns the missing pattern's edge
        labels so the analysis can detect rules that repair each other.
        """
        if self.missing is None:
            return set()
        return self.missing.edge_labels()

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    @property
    def operation_kinds(self) -> list[OperationKind]:
        return [operation.kind for operation in self.operations]

    def describe(self) -> str:
        lines = [f"Rule {self.name!r} [{self.semantics.value}] priority={self.priority}"]
        if self.description:
            lines.append(f"  # {self.description}")
        lines.append(f"  evidence: {self.pattern.describe()}")
        if self.missing is not None:
            lines.append(f"  missing:  {self.missing.describe()}")
        for operation in self.operations:
            lines.append(f"  do: {operation.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"GraphRepairingRule(name={self.name!r}, semantics={self.semantics.value}, "
                f"pattern={self.pattern.name!r}, operations={len(self.operations)})")


class RuleSet:
    """An ordered, name-indexed collection of rules.

    Keeps rules in insertion order (which the repair planner uses as the final
    tie-break) and enforces unique names.
    """

    def __init__(self, rules: Iterable[GraphRepairingRule] = (), name: str = "ruleset") -> None:
        self.name = name
        self._rules: dict[str, GraphRepairingRule] = {}
        for rule in rules:
            self.add(rule)

    def add(self, rule: GraphRepairingRule) -> None:
        if rule.name in self._rules:
            raise InvalidRuleError(f"duplicate rule name {rule.name!r}")
        self._rules[rule.name] = rule

    def remove(self, name: str) -> GraphRepairingRule:
        try:
            return self._rules.pop(name)
        except KeyError:
            raise InvalidRuleError(f"no rule named {name!r}") from None

    def get(self, name: str) -> GraphRepairingRule:
        try:
            return self._rules[name]
        except KeyError:
            raise InvalidRuleError(f"no rule named {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(list(self._rules.values()))

    def rules(self) -> list[GraphRepairingRule]:
        return list(self._rules.values())

    def names(self) -> list[str]:
        return list(self._rules.keys())

    def by_semantics(self, semantics: Semantics) -> list[GraphRepairingRule]:
        return [rule for rule in self._rules.values() if rule.semantics is semantics]

    def subset(self, names: Iterable[str], name: str | None = None) -> "RuleSet":
        return RuleSet((self.get(rule_name) for rule_name in names),
                       name=name or f"{self.name}-subset")

    def merged_with(self, other: "RuleSet", name: str | None = None) -> "RuleSet":
        merged = RuleSet(self.rules(), name=name or f"{self.name}+{other.name}")
        for rule in other:
            merged.add(rule)
        return merged

    def describe(self) -> str:
        header = f"RuleSet {self.name!r} ({len(self)} rules)"
        return "\n\n".join([header] + [rule.describe() for rule in self])

    def __repr__(self) -> str:
        return f"RuleSet(name={self.name!r}, rules={len(self)})"
