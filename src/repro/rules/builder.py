"""Fluent builder for graph repairing rules.

Rule definitions in examples, the canned libraries, and the random rule
generator all go through :class:`RuleBuilder`, which assembles the evidence
pattern, the optional missing pattern, and the operation list, and finally
delegates to :class:`~repro.rules.grr.GraphRepairingRule` for validation.

Example
-------
::

    rule = (RuleBuilder("add-nationality", Semantics.INCOMPLETENESS)
            .node("p", "Person")
            .node("c", "City")
            .node("k", "Country")
            .edge("p", "c", "bornIn")
            .edge("c", "k", "inCountry")
            .missing_edge("p", "k", "nationality")
            .add_edge("p", "k", "nationality")
            .priority(5)
            .described_as("a person born in a city has the city's nationality")
            .build())
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.exceptions import InvalidRuleError
from repro.matching.pattern import Pattern, PatternEdge, PatternNode
from repro.matching.predicates import Comparison, PropertyPredicate
from repro.rules.grr import GraphRepairingRule
from repro.rules.operations import (
    AddEdge,
    AddNode,
    DeleteEdge,
    DeleteNode,
    MergeNodes,
    RepairOperation,
    UpdateEdge,
    UpdateNode,
)
from repro.rules.semantics import Semantics


class RuleBuilder:
    """Accumulates the parts of a rule and builds the validated object."""

    def __init__(self, name: str, semantics: Semantics) -> None:
        self._name = name
        self._semantics = semantics
        self._nodes: dict[str, PatternNode] = {}
        self._edges: list[PatternEdge] = []
        self._comparisons: list[Comparison] = []
        self._missing_nodes: dict[str, PatternNode] = {}
        self._missing_edges: list[PatternEdge] = []
        self._missing_comparisons: list[Comparison] = []
        self._operations: list[RepairOperation] = []
        self._priority = 0
        self._description = ""

    # ------------------------------------------------------------------
    # evidence pattern
    # ------------------------------------------------------------------

    def node(self, variable: str, label: str | None = None,
             predicates: Iterable[PropertyPredicate] = ()) -> "RuleBuilder":
        """Declare an evidence node variable."""
        if variable in self._nodes:
            raise InvalidRuleError(f"evidence variable {variable!r} declared twice")
        self._nodes[variable] = PatternNode(variable=variable, label=label,
                                            predicates=tuple(predicates))
        return self

    def edge(self, source: str, target: str, label: str | None = None,
             variable: str | None = None,
             predicates: Iterable[PropertyPredicate] = ()) -> "RuleBuilder":
        """Declare an evidence edge constraint."""
        self._edges.append(PatternEdge(source=source, target=target, label=label,
                                       variable=variable, predicates=tuple(predicates)))
        return self

    def compare(self, comparison: Comparison) -> "RuleBuilder":
        """Add a cross-variable comparison to the evidence pattern."""
        self._comparisons.append(comparison)
        return self

    # ------------------------------------------------------------------
    # missing pattern (incompleteness rules)
    # ------------------------------------------------------------------

    def missing_node(self, variable: str, label: str | None = None,
                     predicates: Iterable[PropertyPredicate] = ()) -> "RuleBuilder":
        """Declare a node variable that exists only in the missing pattern."""
        if variable in self._missing_nodes or variable in self._nodes:
            raise InvalidRuleError(f"missing-pattern variable {variable!r} declared twice")
        self._missing_nodes[variable] = PatternNode(variable=variable, label=label,
                                                    predicates=tuple(predicates))
        return self

    def missing_edge(self, source: str, target: str, label: str | None = None,
                     variable: str | None = None,
                     predicates: Iterable[PropertyPredicate] = ()) -> "RuleBuilder":
        """Declare an edge constraint of the missing pattern.

        Endpoints may be evidence variables (shared) or missing-only variables.
        """
        self._missing_edges.append(PatternEdge(source=source, target=target, label=label,
                                               variable=variable,
                                               predicates=tuple(predicates)))
        return self

    def missing_compare(self, comparison: Comparison) -> "RuleBuilder":
        self._missing_comparisons.append(comparison)
        return self

    def missing_property(self, variable: str, key: str) -> "RuleBuilder":
        """Shorthand: the violation is that ``variable`` lacks property ``key``.

        Implemented by adding an ``exists(key)`` requirement on the shared
        variable in the missing pattern.
        """
        from repro.matching.predicates import exists

        if variable not in self._nodes:
            raise InvalidRuleError(
                f"missing_property refers to undeclared evidence variable {variable!r}")
        base = self._nodes[variable]
        self._missing_nodes[f"__{variable}__with_{key}"] = PatternNode(
            variable=variable, label=base.label,
            predicates=base.predicates + (exists(key),))
        return self

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def add_node(self, variable: str, label: str,
                 properties: dict[str, Any] | None = None) -> "RuleBuilder":
        self._operations.append(AddNode(variable=variable, label=label,
                                        properties=dict(properties or {})))
        return self

    def add_edge(self, source: str, target: str, label: str,
                 properties: dict[str, Any] | None = None,
                 skip_if_present: bool = True) -> "RuleBuilder":
        self._operations.append(AddEdge(source=source, target=target, label=label,
                                        properties=dict(properties or {}),
                                        skip_if_present=skip_if_present))
        return self

    def delete_edge(self, edge_variable: str | None = None, source: str | None = None,
                    target: str | None = None, label: str | None = None) -> "RuleBuilder":
        self._operations.append(DeleteEdge(edge_variable=edge_variable, source=source,
                                           target=target, label=label))
        return self

    def delete_node(self, variable: str) -> "RuleBuilder":
        self._operations.append(DeleteNode(variable=variable))
        return self

    def update_node(self, variable: str, set_properties: dict[str, Any] | None = None,
                    remove_keys: Iterable[str] = (),
                    new_label: str | None = None) -> "RuleBuilder":
        self._operations.append(UpdateNode(variable=variable,
                                           set_properties=dict(set_properties or {}),
                                           remove_keys=tuple(remove_keys),
                                           new_label=new_label))
        return self

    def update_edge(self, edge_variable: str, set_properties: dict[str, Any] | None = None,
                    remove_keys: Iterable[str] = (),
                    new_label: str | None = None) -> "RuleBuilder":
        self._operations.append(UpdateEdge(edge_variable=edge_variable,
                                           set_properties=dict(set_properties or {}),
                                           remove_keys=tuple(remove_keys),
                                           new_label=new_label))
        return self

    def merge(self, keep: str, merge: str,
              prefer_kept_properties: bool = True) -> "RuleBuilder":
        self._operations.append(MergeNodes(keep=keep, merge=merge,
                                           prefer_kept_properties=prefer_kept_properties))
        return self

    def operation(self, operation: RepairOperation) -> "RuleBuilder":
        """Append an already-constructed operation."""
        self._operations.append(operation)
        return self

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------

    def priority(self, value: int) -> "RuleBuilder":
        self._priority = int(value)
        return self

    def described_as(self, text: str) -> "RuleBuilder":
        self._description = text
        return self

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------

    def _build_evidence(self) -> Pattern:
        if not self._nodes:
            raise InvalidRuleError(f"rule {self._name!r} declares no evidence nodes")
        return Pattern(nodes=list(self._nodes.values()), edges=self._edges,
                       comparisons=self._comparisons, name=f"{self._name}::evidence")

    def _build_missing(self) -> Pattern | None:
        if not self._missing_nodes and not self._missing_edges:
            return None
        # Collect the node variables the missing pattern needs: declared
        # missing-only nodes plus evidence nodes referenced by missing edges
        # or missing comparisons (these are the shared variables).
        nodes: dict[str, PatternNode] = {}
        for key, node in self._missing_nodes.items():
            nodes[node.variable] = node
        referenced: set[str] = set()
        for edge in self._missing_edges:
            referenced.add(edge.source)
            referenced.add(edge.target)
        for comparison in self._missing_comparisons:
            referenced.update(comparison.variables())
        for variable in referenced:
            if variable in nodes:
                continue
            if variable in self._nodes:
                nodes[variable] = self._nodes[variable]
            elif variable not in {edge.variable for edge in self._missing_edges}:
                raise InvalidRuleError(
                    f"missing pattern of rule {self._name!r} references unknown "
                    f"variable {variable!r}")
        return Pattern(nodes=list(nodes.values()), edges=self._missing_edges,
                       comparisons=self._missing_comparisons,
                       name=f"{self._name}::missing")

    def build(self) -> GraphRepairingRule:
        """Assemble and validate the rule."""
        return GraphRepairingRule(
            name=self._name,
            semantics=self._semantics,
            pattern=self._build_evidence(),
            missing=self._build_missing(),
            operations=self._operations,
            priority=self._priority,
            description=self._description,
        )


def incompleteness_rule(name: str) -> RuleBuilder:
    """Start building an incompleteness rule."""
    return RuleBuilder(name, Semantics.INCOMPLETENESS)


def conflict_rule(name: str) -> RuleBuilder:
    """Start building a conflict rule."""
    return RuleBuilder(name, Semantics.CONFLICT)


def redundancy_rule(name: str) -> RuleBuilder:
    """Start building a redundancy rule."""
    return RuleBuilder(name, Semantics.REDUNDANCY)
