"""A small textual DSL for graph repairing rules.

The DSL keeps rule sets readable in examples and experiment configs without
writing Python.  One file contains any number of rules::

    RULE add-nationality INCOMPLETENESS PRIORITY 5
      # a person born in a city gets the city's country as nationality
      MATCH (p:Person)-[:bornIn]->(c:City)
      MATCH (c)-[:inCountry]->(k:Country)
      MISSING (p)-[:nationality]->(k)
      REPAIR ADD_EDGE (p)-[:nationality]->(k)

    RULE single-birthyear CONFLICT
      MATCH (p:Person)-[e1:bornOn]->(y1:Year)
      MATCH (p)-[e2:bornOn]->(y2:Year)
      WHERE y1.value != y2.value
      REPAIR DELETE_EDGE e2

    RULE dedup-person REDUNDANCY
      MATCH (a:Person)
      MATCH (b:Person)
      WHERE a.name == b.name
      REPAIR MERGE b INTO a

Grammar summary
---------------
* ``RULE <name> <SEMANTICS> [PRIORITY <int>]`` starts a rule.
* ``MATCH`` / ``MISSING`` lines contain a chain of node references
  ``(var[:Label])`` connected by edges ``-[var?:label?]->`` or ``<-[...]-``.
  A ``MATCH`` line may also be a single node reference.
* ``WHERE`` lines contain one comparison ``lhs OP rhs`` where each side is
  ``var.key`` or a literal, and OP ∈ {==, !=, <, <=, >, >=}; plus the unary
  forms ``HAS var.key`` and ``MISSING var.key``.
* ``REPAIR`` lines contain one operation (see :func:`_parse_operation`).
* ``#`` starts a comment; blank lines are ignored.
"""

from __future__ import annotations

import re
from typing import Any

from repro.exceptions import RuleParseError
from repro.matching.predicates import (
    Comparison,
    ComparisonOp,
    PropertyPredicate,
    exists as pred_exists,
    missing as pred_missing,
)
from repro.rules.builder import RuleBuilder
from repro.rules.grr import GraphRepairingRule, RuleSet
from repro.rules.operations import ValueRef
from repro.rules.semantics import Semantics

_NODE_REF = re.compile(r"\(\s*(?P<var>[A-Za-z_][\w]*)\s*(?::\s*(?P<label>[\w:-]+))?\s*\)")
_EDGE_FORWARD = re.compile(r"^-\[\s*(?:(?P<evar>[A-Za-z_][\w]*)\s*)?:?\s*(?P<label>[\w:-]+)?\s*\]->")
_EDGE_BACKWARD = re.compile(r"^<-\[\s*(?:(?P<evar>[A-Za-z_][\w]*)\s*)?:?\s*(?P<label>[\w:-]+)?\s*\]-")
_RULE_HEADER = re.compile(
    r"^RULE\s+(?P<name>[\w.-]+)\s+(?P<semantics>INCOMPLETENESS|CONFLICT|REDUNDANCY)"
    r"(?:\s+PRIORITY\s+(?P<priority>-?\d+))?\s*$", re.IGNORECASE)
_COMPARISON = re.compile(
    r"^(?P<lhs>\S+)\s*(?P<op>==|!=|<=|>=|<|>)\s*(?P<rhs>.+)$")
_PROPERTY_REF = re.compile(r"^(?P<var>[A-Za-z_][\w]*)\.(?P<key>[\w-]+)$")
_MERGE_OP = re.compile(r"^MERGE\s+(?P<merge>[A-Za-z_]\w*)\s+INTO\s+(?P<keep>[A-Za-z_]\w*)$",
                       re.IGNORECASE)
_ADD_NODE_REF = re.compile(
    r"^\(\s*(?P<var>[A-Za-z_][\w]*)\s*:\s*(?P<label>[\w:-]+)\s*"
    r"(?:\{(?P<props>[^}]*)\})?\s*\)$")
_SET_ITEM = re.compile(r"(?P<key>[\w-]+)\s*=\s*(?P<value>[^,]+)")

_COMPARISON_OPS = {
    "==": ComparisonOp.EQ,
    "!=": ComparisonOp.NE,
    "<": ComparisonOp.LT,
    "<=": ComparisonOp.LE,
    ">": ComparisonOp.GT,
    ">=": ComparisonOp.GE,
}


def _parse_literal(text: str) -> Any:
    """Parse a literal: quoted string, int, float, true/false/null."""
    text = text.strip()
    if (text.startswith('"') and text.endswith('"')) or \
            (text.startswith("'") and text.endswith("'")):
        return text[1:-1]
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in {"null", "none"}:
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text  # bare word: treat as string


def _parse_value(text: str) -> Any:
    """A SET value: either ``var.key`` (a :class:`ValueRef`) or a literal."""
    text = text.strip()
    reference = _PROPERTY_REF.match(text)
    if reference and not (text.startswith('"') or text.startswith("'")):
        return ValueRef(reference.group("var"), reference.group("key"))
    return _parse_literal(text)


class _PathParser:
    """Parses a MATCH/MISSING path expression into node refs and edge refs."""

    def __init__(self, text: str, line_no: int) -> None:
        self.text = text.strip()
        self.position = 0
        self.line_no = line_no
        self.nodes: list[tuple[str, str | None]] = []
        self.edges: list[tuple[str, str, str | None, str | None]] = []  # source, target, label, evar

    def fail(self, message: str) -> RuleParseError:
        return RuleParseError(f"{message} in {self.text!r}", line=self.line_no)

    def parse(self) -> None:
        remaining = self.text
        node_match = _NODE_REF.match(remaining)
        if not node_match:
            raise self.fail("expected a node reference")
        previous_var = node_match.group("var")
        self.nodes.append((previous_var, node_match.group("label")))
        remaining = remaining[node_match.end():].strip()
        while remaining:
            forward = _EDGE_FORWARD.match(remaining)
            backward = _EDGE_BACKWARD.match(remaining)
            if forward:
                edge_match, direction = forward, "forward"
            elif backward:
                edge_match, direction = backward, "backward"
            else:
                raise self.fail("expected an edge ('-[:label]->' or '<-[:label]-')")
            remaining = remaining[edge_match.end():].strip()
            node_match = _NODE_REF.match(remaining)
            if not node_match:
                raise self.fail("expected a node reference after an edge")
            current_var = node_match.group("var")
            self.nodes.append((current_var, node_match.group("label")))
            remaining = remaining[node_match.end():].strip()
            label = edge_match.group("label")
            edge_variable = edge_match.group("evar")
            if direction == "forward":
                self.edges.append((previous_var, current_var, label, edge_variable))
            else:
                self.edges.append((current_var, previous_var, label, edge_variable))
            previous_var = current_var


def _parse_comparison_or_predicate(text: str, line_no: int):
    """Parse a WHERE clause body.

    Returns either ``("comparison", Comparison)`` or
    ``("predicate", variable, PropertyPredicate)``.
    """
    stripped = text.strip()
    upper = stripped.upper()
    if upper.startswith("HAS ") or upper.startswith("MISSING "):
        keyword, _, reference = stripped.partition(" ")
        reference = reference.strip()
        property_ref = _PROPERTY_REF.match(reference)
        if not property_ref:
            raise RuleParseError(f"expected var.key after {keyword}", line=line_no)
        predicate = (pred_exists(property_ref.group("key"))
                     if keyword.upper() == "HAS"
                     else pred_missing(property_ref.group("key")))
        return ("predicate", property_ref.group("var"), predicate)

    comparison_match = _COMPARISON.match(stripped)
    if not comparison_match:
        raise RuleParseError(f"cannot parse WHERE clause {stripped!r}", line=line_no)
    lhs_text = comparison_match.group("lhs").strip()
    rhs_text = comparison_match.group("rhs").strip()
    op = _COMPARISON_OPS[comparison_match.group("op")]

    lhs_ref = _PROPERTY_REF.match(lhs_text)
    if not lhs_ref:
        raise RuleParseError(
            f"left side of a comparison must be var.key, got {lhs_text!r}", line=line_no)
    rhs_ref = _PROPERTY_REF.match(rhs_text)
    if rhs_ref and not (rhs_text.startswith('"') or rhs_text.startswith("'")):
        comparison = Comparison((lhs_ref.group("var"), lhs_ref.group("key")), op,
                                (rhs_ref.group("var"), rhs_ref.group("key")))
    else:
        comparison = Comparison((lhs_ref.group("var"), lhs_ref.group("key")), op,
                                right_value=_parse_literal(rhs_text), right_literal=True)
    return ("comparison", comparison)


def _parse_operation(builder: RuleBuilder, text: str, line_no: int) -> None:
    """Parse one REPAIR operation and add it to the builder."""
    stripped = text.strip()
    upper = stripped.upper()

    merge_match = _MERGE_OP.match(stripped)
    if merge_match:
        builder.merge(keep=merge_match.group("keep"), merge=merge_match.group("merge"))
        return

    if upper.startswith("ADD_NODE"):
        body = stripped[len("ADD_NODE"):].strip()
        node_match = _ADD_NODE_REF.match(body)
        if not node_match:
            raise RuleParseError(
                "ADD_NODE expects (var:Label) or (var:Label {key = value, ...})",
                line=line_no)
        properties: dict[str, Any] = {}
        props_body = node_match.group("props")
        if props_body:
            for item in _SET_ITEM.finditer(props_body):
                properties[item.group("key")] = _parse_value(item.group("value"))
        builder.add_node(node_match.group("var"), node_match.group("label"), properties)
        return

    if upper.startswith("ADD_EDGE"):
        body = stripped[len("ADD_EDGE"):].strip()
        path = _PathParser(body, line_no)
        path.parse()
        if len(path.edges) != 1:
            raise RuleParseError("ADD_EDGE expects exactly one edge", line=line_no)
        source, target, label, _ = path.edges[0]
        if label is None:
            raise RuleParseError("ADD_EDGE requires an edge label", line=line_no)
        builder.add_edge(source, target, label)
        return

    if upper.startswith("DELETE_EDGE"):
        body = stripped[len("DELETE_EDGE"):].strip()
        if body.startswith("("):
            path = _PathParser(body, line_no)
            path.parse()
            if len(path.edges) != 1:
                raise RuleParseError("DELETE_EDGE expects exactly one edge", line=line_no)
            source, target, label, _ = path.edges[0]
            builder.delete_edge(source=source, target=target, label=label)
        else:
            builder.delete_edge(edge_variable=body.split()[0])
        return

    if upper.startswith("DELETE_NODE"):
        body = stripped[len("DELETE_NODE"):].strip()
        if not body:
            raise RuleParseError("DELETE_NODE expects a variable", line=line_no)
        builder.delete_node(body.split()[0])
        return

    if upper.startswith("UPDATE_NODE") or upper.startswith("UPDATE_EDGE"):
        is_node = upper.startswith("UPDATE_NODE")
        body = stripped[len("UPDATE_NODE"):].strip()
        parts = body.split(None, 1)
        if not parts:
            raise RuleParseError("UPDATE expects a variable", line=line_no)
        variable = parts[0]
        clause = parts[1] if len(parts) > 1 else ""
        set_properties: dict[str, Any] = {}
        remove_keys: list[str] = []
        new_label: str | None = None
        clause_upper = clause.upper()
        if clause_upper.startswith("SET "):
            for item in _SET_ITEM.finditer(clause[4:]):
                set_properties[item.group("key")] = _parse_value(item.group("value"))
        elif clause_upper.startswith("REMOVE "):
            remove_keys = [key.strip() for key in clause[7:].split(",") if key.strip()]
        elif clause_upper.startswith("LABEL "):
            new_label = clause[6:].strip()
        elif clause:
            raise RuleParseError(
                f"UPDATE clause must start with SET, REMOVE, or LABEL: {clause!r}",
                line=line_no)
        if is_node:
            builder.update_node(variable, set_properties, remove_keys, new_label)
        else:
            builder.update_edge(variable, set_properties, remove_keys, new_label)
        return

    raise RuleParseError(f"unknown repair operation {stripped!r}", line=line_no)


def _add_path(builder: RuleBuilder, path: _PathParser, missing: bool,
              declared: set[str]) -> None:
    """Register a parsed path's nodes and edges on the builder."""
    for variable, label in path.nodes:
        if missing:
            if variable in declared:
                continue  # shared with evidence; builder copies it automatically
            try:
                builder.missing_node(variable, label)
            except Exception:
                # silent-ok: already declared as a missing node on a
                # previous line of the same rule — re-declaring is a no-op
                pass
        else:
            if variable in declared:
                continue
            builder.node(variable, label)
            declared.add(variable)
    for source, target, label, edge_variable in path.edges:
        if missing:
            builder.missing_edge(source, target, label, variable=edge_variable)
        else:
            builder.edge(source, target, label, variable=edge_variable)


def parse_rule_block(lines: list[tuple[int, str]]) -> GraphRepairingRule:
    """Parse one rule's worth of (line number, text) pairs."""
    header_no, header = lines[0]
    header_match = _RULE_HEADER.match(header.strip())
    if not header_match:
        raise RuleParseError(f"invalid RULE header {header.strip()!r}", line=header_no)
    semantics = Semantics[header_match.group("semantics").upper()]
    builder = RuleBuilder(header_match.group("name"), semantics)
    if header_match.group("priority") is not None:
        builder.priority(int(header_match.group("priority")))

    declared: set[str] = set()
    descriptions: list[str] = []
    node_predicates: dict[str, list[PropertyPredicate]] = {}
    pending: list[tuple[str, int, str]] = []

    for line_no, raw in lines[1:]:
        text = raw.strip()
        if not text:
            continue
        if text.startswith("#"):
            descriptions.append(text.lstrip("# ").strip())
            continue
        keyword, _, body = text.partition(" ")
        pending.append((keyword.upper(), line_no, body.strip()))

    # First pass: evidence MATCH lines (so WHERE predicates can attach to them).
    for keyword, line_no, body in pending:
        if keyword == "MATCH":
            path = _PathParser(body, line_no)
            path.parse()
            _add_path(builder, path, missing=False, declared=declared)

    # Second pass: everything else, in order.
    for keyword, line_no, body in pending:
        if keyword == "MATCH":
            continue
        if keyword == "MISSING":
            path = _PathParser(body, line_no)
            path.parse()
            _add_path(builder, path, missing=True, declared=declared)
        elif keyword == "WHERE":
            parsed = _parse_comparison_or_predicate(body, line_no)
            if parsed[0] == "comparison":
                builder.compare(parsed[1])
            else:
                _, variable, predicate = parsed
                node_predicates.setdefault(variable, []).append(predicate)
        elif keyword == "REPAIR":
            _parse_operation(builder, body, line_no)
        else:
            raise RuleParseError(f"unknown keyword {keyword!r}", line=line_no)

    # Re-declare nodes that accumulated WHERE predicates.
    if node_predicates:
        for variable, predicates in node_predicates.items():
            existing = builder._nodes.get(variable)
            if existing is None:
                raise RuleParseError(
                    f"WHERE predicate refers to undeclared variable {variable!r}",
                    line=lines[0][0])
            builder._nodes[variable] = type(existing)(
                variable=existing.variable, label=existing.label,
                predicates=existing.predicates + tuple(predicates))

    if descriptions:
        builder.described_as(" ".join(descriptions))
    return builder.build()


def parse_rules(text: str, name: str = "ruleset") -> RuleSet:
    """Parse a DSL document into a :class:`RuleSet`."""
    blocks: list[list[tuple[int, str]]] = []
    current: list[tuple[int, str]] | None = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if stripped.upper().startswith("RULE "):
            current = [(line_no, raw)]
            blocks.append(current)
        elif current is not None:
            current.append((line_no, raw))
        elif stripped and not stripped.startswith("#"):
            raise RuleParseError(f"content outside of a RULE block: {stripped!r}",
                                 line=line_no)
    if not blocks:
        raise RuleParseError("no RULE blocks found")
    return RuleSet((parse_rule_block(block) for block in blocks), name=name)


def parse_rules_file(path, name: str | None = None) -> RuleSet:
    """Parse a DSL file."""
    from pathlib import Path

    path = Path(path)
    return parse_rules(path.read_text(encoding="utf-8"), name=name or path.stem)
