"""The three semantic classes of graph repairing rules.

The paper classifies graph errors — and therefore the rules that repair them
— into three semantics:

* **Incompleteness** — something that should be in the graph is missing.
  The rule's pattern describes the *evidence*; a separate *missing* pattern
  (sharing variables with the evidence) describes what must also exist.  A
  violation is an evidence match with no consistent extension into the
  missing pattern; repairs are additive.
* **Conflict** — the graph asserts contradictory facts.  The pattern itself
  describes the contradictory configuration (typically via ``different_value``
  comparisons or two functional edges from one source); repairs delete or
  update one side.
* **Redundancy** — the same entity or fact is represented more than once.
  The pattern describes the duplication (typically via ``same_value``
  comparisons or parallel duplicate edges); repairs merge or delete.

Each semantics constrains which of the seven operation kinds a rule may use —
an incompleteness rule that deletes nodes, for instance, is almost certainly a
modelling mistake, so :func:`validate_operations_for_semantics` rejects it at
rule-construction time.
"""

from __future__ import annotations

import enum

from repro.exceptions import InvalidRuleError
from repro.rules.operations import OperationKind, RepairOperation


class Semantics(enum.Enum):
    """The error class a rule detects and repairs."""

    INCOMPLETENESS = "incompleteness"
    CONFLICT = "conflict"
    REDUNDANCY = "redundancy"

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]


_DESCRIPTIONS = {
    Semantics.INCOMPLETENESS: "missing information that should be present",
    Semantics.CONFLICT: "mutually contradictory information",
    Semantics.REDUNDANCY: "duplicate or derivable information",
}


# Which operation kinds make sense for each semantics.
ALLOWED_OPERATIONS: dict[Semantics, frozenset[OperationKind]] = {
    Semantics.INCOMPLETENESS: frozenset({
        OperationKind.ADD_NODE,
        OperationKind.ADD_EDGE,
        OperationKind.UPDATE_NODE,
        OperationKind.UPDATE_EDGE,
    }),
    Semantics.CONFLICT: frozenset({
        OperationKind.DELETE_EDGE,
        OperationKind.DELETE_NODE,
        OperationKind.UPDATE_NODE,
        OperationKind.UPDATE_EDGE,
    }),
    Semantics.REDUNDANCY: frozenset({
        OperationKind.MERGE_NODES,
        OperationKind.DELETE_EDGE,
        OperationKind.DELETE_NODE,
        OperationKind.UPDATE_NODE,
    }),
}


def validate_operations_for_semantics(semantics: Semantics,
                                      operations: list[RepairOperation]) -> None:
    """Raise :class:`InvalidRuleError` if an operation kind is not allowed.

    Also requires at least one operation: a rule that detects but never
    repairs belongs to the detection-only baseline, not to a GRR set.
    """
    if not operations:
        raise InvalidRuleError(
            f"a {semantics.value} rule must have at least one repair operation")
    allowed = ALLOWED_OPERATIONS[semantics]
    for operation in operations:
        if operation.kind not in allowed:
            raise InvalidRuleError(
                f"operation {operation.kind.value} is not allowed in a "
                f"{semantics.value} rule (allowed: "
                f"{sorted(kind.value for kind in allowed)})")


def requires_missing_pattern(semantics: Semantics) -> bool:
    """Incompleteness rules are the only ones defined by an *absent* extension."""
    return semantics is Semantics.INCOMPLETENESS
