"""The ingestion front: per-tenant edit queues plus the background
repair scheduler.

:class:`IngestFront` sits in front of a
:class:`~repro.service.GraphRepairService` and turns its synchronous
edit/repair API into an ingestion pipeline:

* **submit** — producers hand deltas (or callable edits) to bounded
  per-tenant :class:`~repro.ingest.queues.EditQueue` objects and get a
  :class:`~repro.ingest.queues.SubmitAck` back.  Admission control
  (block / reject / shed-oldest, per-tenant quotas) happens here, at
  submit time, so a flooding tenant feels backpressure immediately and
  never grows another tenant's queue.
* **tick** — one scheduling pass: every tenant's queued deltas are
  *coalesced* (staged together, committed under ONE maintenance pass via
  :meth:`RepairSession.apply_many`), then the dirtiest tenants are
  repaired — ordered by a staleness/SLA priority score with a bounded
  pending-work boost, so flooding raises a tenant's priority only up to
  a cap and staleness eventually wins (no starvation).  Sharded tenants'
  repairs run under a :meth:`WorkerPool.lease`, so concurrent direct
  callers time-slice the shared pool fairly with the scheduler.
* **start/stop** — a daemon thread calls ``tick`` every
  ``tick_interval`` seconds.  ``tick`` may also be driven manually (do
  not ``start`` then) for deterministic tests and benchmarks.
* **wait_for_repair** — read-your-writes: blocks until every changefeed
  record up to a sequence has been reconciled by a repair.  The
  callback-based :meth:`add_repair_waiter` underneath is what the
  asyncio facade multiplexes thousands of clients over.

Every per-tenant phase is error-isolated: one tenant's failing commit or
repair fails *that tenant's* acks and is recorded in :meth:`stats`; the
scheduler carries on with the others.  A tenant whose *repairs* keep
failing additionally backs off exponentially
(``IngestConfig.repair_backoff_base`` doubling per consecutive failure up
to ``repair_backoff_max``) so a poisoned tenant stops burning a repair
slot in every tick; the first successful repair resets the backoff.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from typing import Callable, Optional

from repro import telemetry
from repro.exceptions import AdmissionError, IngestError, ServiceError
from repro.ingest.config import IngestConfig, TenantQuota
from repro.ingest.queues import EditQueue, SubmitAck

#: Cap on per-tenant latency samples kept for :meth:`IngestFront.stats`.
_LATENCY_SAMPLES = 8192
#: Cap on the pending-work boost in the priority score: queue flooding
#: raises priority by at most this much, so staleness always wins
#: eventually and no tenant is starved by another's volume.
_PENDING_BOOST_CAP = 10


class _TenantFront:
    """Per-tenant scheduler state (queue, counters, inflight commits)."""

    __slots__ = ("queue", "quota", "force_dirty", "last_served", "inflight",
                 "submitted", "rejected", "shed", "committed", "commits",
                 "coalesced", "repairs", "latencies", "last_error",
                 "consecutive_failures", "backoff_until", "backoffs")

    def __init__(self, name: str, quota: TenantQuota) -> None:
        self.queue = EditQueue(name, quota)
        self.quota = quota
        self.force_dirty = False
        self.last_served = time.monotonic()
        self.inflight: list[tuple[int, float]] = []  # (sequence, publish time)
        self.submitted = 0
        self.rejected = 0
        self.shed = 0
        self.committed = 0
        self.commits = 0
        self.coalesced = 0
        self.repairs = 0
        self.latencies: list[float] = []
        self.last_error: Optional[str] = None
        # retry backoff for failing repairs (see IngestConfig): the
        # scheduler skips this tenant's repairs until backoff_until
        self.consecutive_failures = 0
        self.backoff_until = 0.0
        self.backoffs = 0


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


class IngestFront:
    """Async ingestion front over a :class:`GraphRepairService`.

    Usable three ways: fully manual (``submit`` + ``tick`` — tests,
    benchmarks), background (``start``/``stop`` — production shape), or
    through :class:`~repro.ingest.aio.AsyncRepairService` for asyncio
    clients.  Thread-safe throughout; ``close`` fails every unresolved
    ack so no producer waits forever.
    """

    def __init__(self, service, config: IngestConfig | None = None) -> None:
        self._service = service
        self._config = config or IngestConfig()
        self._tenants: dict[str, _TenantFront] = {}
        self._lock = threading.RLock()          # registry + counters
        self._tick_lock = threading.RLock()     # one scheduling pass at a time
        self._waiters: list[tuple[str, int, Callable[[bool], None]]] = []
        self._waiter_lock = threading.Lock()
        self._ticks = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._last_tick_error: Optional[str] = None

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register(self, name: str, quota: TenantQuota | None = None) -> None:
        """Open an edit queue for an already-served tenant.

        For tenants the service *restored*, the scheduler seeds its dirty
        set from the recovery record: unless the recovered WAL proves the
        tenant clean (a repair record newer than every commit), the
        tenant is marked dirty and repaired on the first pass — uncertain
        recovery state is treated as dirty, never as clean.
        """
        self._require_open()
        if name not in self._service.names():
            raise IngestError(f"tenant {name!r} is not served; serve() or "
                              "restore() it before registering")
        with self._lock:
            if name in self._tenants:
                raise IngestError(f"tenant {name!r} is already registered")
            state = _TenantFront(name, quota or self._config.default_quota)
            try:
                recovered = self._service.recovery_info(name)
            except ServiceError:
                recovered = None
            if recovered is not None and not recovered.known_clean:
                state.force_dirty = True
            self._tenants[name] = state

    def deregister(self, name: str) -> None:
        """Close one tenant's queue, failing its unresolved acks."""
        with self._lock:
            state = self._tenants.pop(name, None)
        if state is not None:
            self._fail_leftovers(name, state)

    def tenants(self) -> list[str]:
        """Registered tenant names, sorted."""
        with self._lock:
            return sorted(self._tenants)

    # ------------------------------------------------------------------
    # submission (producer side)
    # ------------------------------------------------------------------

    def submit(self, name: str, edit) -> SubmitAck:
        """Queue one edit (a :class:`GraphDelta` or a callable receiving
        the graph) for the named tenant; returns the ack.

        Applies the tenant's admission policy at the queue bound — may
        block (policy ``block``), raise
        :class:`~repro.exceptions.AdmissionError` (``reject`` /
        ``block`` timeout), or shed the tenant's oldest queued edit
        (``shed_oldest``, failing *that* edit's ack).
        """
        state = self._state(name)
        ack = SubmitAck(name)
        try:
            shed = state.queue.put(edit, ack)
        except AdmissionError as exc:
            with self._lock:
                state.rejected += 1
            if telemetry.TELEMETRY.enabled:
                telemetry.inc("repro_ingest_rejected_total", tenant=name,
                              reason=exc.reason)
            raise
        with self._lock:
            state.submitted += 1
            state.shed += len(shed)
        if telemetry.TELEMETRY.enabled:
            telemetry.inc("repro_ingest_submitted_total", tenant=name)
            telemetry.gauge_set("repro_ingest_queue_depth", len(state.queue),
                                tenant=name)
        for shed_ack in shed:
            if telemetry.TELEMETRY.enabled:
                telemetry.inc("repro_ingest_rejected_total", tenant=name,
                              reason="shed")
            shed_ack._fail(AdmissionError(
                f"tenant {name!r}: delta shed to admit a newer submission",
                tenant=name, reason="shed"))
        return ack

    def submit_many(self, name: str, edits) -> list[SubmitAck]:
        """Queue several edits in order; returns one ack per edit.

        Stops at the first admission failure (earlier edits stay queued
        with live acks; the raising edit and its successors were not
        admitted).
        """
        return [self.submit(name, edit) for edit in edits]

    # ------------------------------------------------------------------
    # scheduling (one pass)
    # ------------------------------------------------------------------

    def tick(self) -> dict[str, int]:
        """One scheduling pass: coalesce+commit every tenant's queued
        edits (one batch each), then repair the highest-priority dirty
        tenants (at most ``max_repairs_per_tick``).

        Returns ``{"commits": ..., "repairs": ...}``.  Safe to call
        manually; the background thread calls exactly this.
        """
        with self._tick_lock:
            if self._closed:
                return {"commits": 0, "repairs": 0}
            with self._lock:
                self._ticks += 1
            if telemetry.TELEMETRY.enabled:
                telemetry.inc("repro_scheduler_ticks_total")
            commits = 0
            for name in self.tenants():
                commits += 1 if self._commit_tenant(name) else 0
            repairs = self._repair_phase()
            self._fire_repair_waiters()
            return {"commits": commits, "repairs": repairs}

    def _commit_tenant(self, name: str) -> bool:
        """Drain one coalesced batch for ``name`` and commit it.

        Returns True if a commit happened.  A failing commit fails the
        batch's acks and is recorded; other tenants are unaffected.
        """
        state = self._tenants.get(name)
        if state is None:
            return False
        batch = state.queue.drain(state.quota.max_coalesce)
        if not batch:
            return False
        edits = [edit for edit, _ in batch]
        acks = [ack for _, ack in batch]
        try:
            session = self._service.sessions.get(name)
            seq_before = session.last_sequence
            session.apply_many(edits)
            seq_after = session.last_sequence
        except Exception as exc:  # isolate: fail this batch, keep serving
            with self._lock:
                state.last_error = f"commit: {exc!r}"
            for ack in acks:
                ack._fail(exc)
            return False
        if seq_after > seq_before:
            records = session.deltas(after=seq_after - 1)
            published = records[-1].timestamp if records else time.monotonic()
            with self._lock:
                state.inflight.append((seq_after, published))
        with self._lock:
            state.committed += len(batch)
            state.commits += 1
            state.coalesced += max(0, len(batch) - 1)
        if telemetry.TELEMETRY.enabled:
            if len(batch) > 1:
                telemetry.inc("repro_ingest_coalesced_total",
                              len(batch) - 1, tenant=name)
            telemetry.gauge_set("repro_ingest_queue_depth", len(state.queue),
                                tenant=name)
        for ack in acks:
            ack._resolve(seq_after)
        return True

    def _repair_phase(self) -> int:
        """Repair the highest-priority dirty tenants; returns the count."""
        staleness = self._service.staleness()
        now = time.monotonic()
        candidates = []
        with self._lock:
            for name, state in self._tenants.items():
                stale = staleness.get(name)
                if stale is None:
                    continue
                if not stale.dirty and not state.force_dirty:
                    continue
                if state.backoff_until > now:
                    # a persistently failing tenant sits out its backoff
                    # window instead of burning a repair slot every tick
                    continue
                score = ((stale.seconds_since_repair / state.quota.sla_seconds)
                         * state.quota.weight
                         + min(stale.pending_deltas, _PENDING_BOOST_CAP)
                         / _PENDING_BOOST_CAP)
                candidates.append((-score, state.last_served, name))
        candidates.sort()
        repairs = 0
        for _, _, name in candidates[:self._config.max_repairs_per_tick]:
            if self._repair_tenant(name, now):
                repairs += 1
        return repairs

    def _repair_tenant(self, name: str, now: float | None = None) -> bool:
        state = self._tenants.get(name)
        if state is None:
            return False
        pool = self._service.pool
        slice_ctx = (pool.lease(owner=f"ingest:{name}") if pool is not None
                     else nullcontext())
        try:
            with slice_ctx:
                self._service.repair(name)
        except Exception as exc:  # isolate: record, back off, keep serving
            base = self._config.repair_backoff_base
            with self._lock:
                state.last_error = f"repair: {exc!r}"
                state.consecutive_failures += 1
                if base > 0:
                    delay = min(self._config.repair_backoff_max,
                                base * 2 ** (state.consecutive_failures - 1))
                    state.backoff_until = ((now if now is not None
                                            else time.monotonic()) + delay)
                    state.backoffs += 1
            if base > 0 and telemetry.TELEMETRY.enabled:
                telemetry.inc("repro_ingest_backoffs_total", tenant=name)
            return False
        with self._lock:
            state.force_dirty = False
            state.last_served = now if now is not None else time.monotonic()
            state.repairs += 1
            state.consecutive_failures = 0
            state.backoff_until = 0.0
        if telemetry.TELEMETRY.enabled:
            telemetry.inc("repro_scheduler_repairs_total", tenant=name)
        stale = self._service.staleness().get(name)
        if stale is not None:
            self._observe_repaired(name, state, stale.repaired_through)
        return True

    def _observe_repaired(self, name: str, state: _TenantFront,
                          through: int) -> None:
        """Record commit→repaired latency for inflight commits now proven
        reconciled (sequence <= ``through``)."""
        now = time.monotonic()
        observed: list[float] = []
        with self._lock:
            while state.inflight and state.inflight[0][0] <= through:
                _, published = state.inflight.pop(0)
                observed.append(max(0.0, now - published))
            state.latencies.extend(observed)
            if len(state.latencies) > _LATENCY_SAMPLES:
                del state.latencies[:len(state.latencies) - _LATENCY_SAMPLES]
        if telemetry.TELEMETRY.enabled:
            for latency in observed:
                telemetry.observe("repro_ingest_commit_to_repaired_seconds",
                                  latency, tenant=name)

    # ------------------------------------------------------------------
    # read-your-writes
    # ------------------------------------------------------------------

    def add_repair_waiter(self, name: str, sequence: int,
                          callback: Callable[[bool], None]) -> None:
        """Call ``callback(True)`` once every record up to ``sequence`` of
        tenant ``name`` has been reconciled by a repair — immediately if
        it already has.  ``callback(False)`` means the front closed (or
        the tenant went away) first.  The callback runs on the scheduler
        (or closing) thread; keep it trivial.
        """
        stale = self._service.staleness().get(name)
        if stale is not None and stale.repaired_through >= sequence:
            callback(True)
            return
        if self._closed or stale is None:
            callback(False)
            return
        with self._waiter_lock:
            self._waiters.append((name, sequence, callback))

    def wait_for_repair(self, name: str, sequence: int,
                        timeout: Optional[float] = None) -> None:
        """Block until tenant ``name`` is repaired through ``sequence``.

        With an ack in hand this is read-your-writes:
        ``front.wait_for_repair(t, ack.wait())`` returns only once the
        submitted edit's consequences are reconciled.  Raises
        :class:`TimeoutError` on timeout and
        :class:`~repro.exceptions.IngestError` if the front closes
        first.
        """
        outcome: dict[str, bool] = {}
        event = threading.Event()

        def _done(satisfied: bool) -> None:
            outcome["satisfied"] = satisfied
            event.set()

        self.add_repair_waiter(name, sequence, _done)
        if not event.wait(timeout):
            raise TimeoutError(
                f"tenant {name!r} not repaired through sequence {sequence} "
                f"within {timeout}s")
        if not outcome.get("satisfied"):
            raise IngestError(
                f"the ingest front closed before tenant {name!r} was "
                f"repaired through sequence {sequence}")

    def _fire_repair_waiters(self, closing: bool = False) -> None:
        staleness = self._service.staleness()
        fired: list[tuple[Callable[[bool], None], bool]] = []
        with self._waiter_lock:
            keep = []
            for name, sequence, callback in self._waiters:
                stale = staleness.get(name)
                if stale is not None and stale.repaired_through >= sequence:
                    fired.append((callback, True))
                elif closing or stale is None:
                    fired.append((callback, False))
                else:
                    keep.append((name, sequence, callback))
            self._waiters = keep
        for callback, satisfied in fired:
            callback(satisfied)

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------

    def flush(self, name: Optional[str] = None) -> int:
        """Commit queued edits (no repairs) until the queue(s) are empty;
        returns the number of edits committed.  ``name=None`` flushes
        every tenant."""
        names = [name] if name is not None else None
        total = 0
        while True:
            moved = 0
            for tenant in (names or self.tenants()):
                state = self._tenants.get(tenant)
                if state is None:
                    continue
                before = state.committed
                self._commit_tenant(tenant)
                moved += self._tenants[tenant].committed - before
            total += moved
            if moved == 0:
                return total

    def drain(self) -> int:
        """Alias for ``flush()`` over every tenant."""
        return self.flush()

    def quiesce(self, timeout: float = 30.0) -> None:
        """Drain every queue AND repair every dirty tenant, blocking until
        the whole front is clean (no queued edits, no pending deltas).

        Works with or without the background thread running.  Raises
        :class:`~repro.exceptions.IngestError` if producers keep the
        front dirty past ``timeout``.
        """
        deadline = time.monotonic() + timeout
        while True:
            with self._tick_lock:
                self.flush()
                staleness = self._service.staleness()
                dirty = [
                    name for name, state in self._tenants.items()
                    if state.force_dirty
                    or staleness.get(name) is not None
                    and staleness[name].dirty
                ]
                for name in sorted(dirty):
                    self._repair_tenant(name)
                self._fire_repair_waiters()
                clean = (not dirty
                         and all(len(s.queue) == 0
                                 for s in self._tenants.values()))
            if clean:
                return
            if time.monotonic() > deadline:
                raise IngestError(f"quiesce did not converge within "
                                  f"{timeout}s (producers still active?)")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the background scheduler thread (daemon).

        Do not mix with manual :meth:`tick` calls — the thread owns the
        cadence once started.
        """
        self._require_open()
        with self._lock:
            if self._thread is not None:
                raise IngestError("the scheduler is already running")
            self._stop.clear()
            self._thread = threading.Thread(target=self._run,
                                            name="repro-ingest-scheduler",
                                            daemon=True)
            self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._config.tick_interval):
            try:
                self.tick()
            except Exception as exc:  # keep the scheduler alive
                with self._lock:
                    self._last_tick_error = repr(exc)

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the background thread (queued work stays queued)."""
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout)

    @property
    def running(self) -> bool:
        return self._thread is not None

    def close(self) -> None:
        """Stop the scheduler, refuse new submissions, fail every
        unresolved ack and waiter.  Idempotent.  Does NOT close the
        underlying service."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.stop()
        with self._lock:
            tenants = dict(self._tenants)
        for name, state in tenants.items():
            self._fail_leftovers(name, state)
        self._fire_repair_waiters(closing=True)

    def __enter__(self) -> "IngestFront":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _fail_leftovers(self, name: str, state: _TenantFront) -> None:
        for ack in state.queue.close():
            ack._fail(AdmissionError(
                f"tenant {name!r}: the ingest front shut down before the "
                "delta was committed", tenant=name, reason="shutdown"))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Counters for tests, benchmarks, and operators: global tick
        count plus per-tenant submission/commit/repair/latency numbers.
        Always available (no telemetry enablement needed)."""
        with self._lock:
            tenants = {}
            for name, state in self._tenants.items():
                tenants[name] = {
                    "submitted": state.submitted,
                    "rejected": state.rejected,
                    "shed": state.shed,
                    "committed": state.committed,
                    "commits": state.commits,
                    "coalesced": state.coalesced,
                    "repairs": state.repairs,
                    "queue_depth": len(state.queue),
                    "inflight": len(state.inflight),
                    "latency_p50": round(_percentile(state.latencies, 0.50), 6),
                    "latency_p99": round(_percentile(state.latencies, 0.99), 6),
                    "last_error": state.last_error,
                    "consecutive_failures": state.consecutive_failures,
                    "backoffs": state.backoffs,
                }
            return {"ticks": self._ticks, "running": self.running,
                    "closed": self._closed,
                    "last_tick_error": self._last_tick_error,
                    "tenants": tenants}

    def _state(self, name: str) -> _TenantFront:
        self._require_open_submit(name)
        with self._lock:
            state = self._tenants.get(name)
        if state is None:
            raise IngestError(f"tenant {name!r} is not registered with this "
                              "ingest front")
        return state

    def _require_open(self) -> None:
        if self._closed:
            raise IngestError("the ingest front is closed")

    def _require_open_submit(self, name: str) -> None:
        if self._closed:
            raise AdmissionError(
                f"tenant {name!r}: the ingest front is shut down",
                tenant=name, reason="shutdown")
