"""``repro.ingest`` — the asynchronous ingestion front.

The layer between edit producers and the
:class:`~repro.service.GraphRepairService`:

* :class:`IngestFront` — per-tenant bounded edit queues with admission
  control (block / reject / shed-oldest), a background repair scheduler
  that coalesces queued deltas into single commits and repairs the
  dirtiest tenants first (staleness/SLA priority, flood-proof
  fairness), and read-your-writes via ``wait_for_repair``;
* :class:`AsyncRepairService` — the asyncio facade multiplexing any
  number of event-loop clients over the thread-backed front;
* :class:`TenantQuota` / :class:`IngestConfig` — the admission and
  scheduling knobs;
* :class:`SubmitAck` — the per-delta commit acknowledgement;
* :class:`BufferedFeed` — the bounded changefeed subscriber buffer (a
  stuck consumer sheds its own oldest records instead of stalling
  commits).

See ``docs/INGEST.md`` for the scheduling policy, the backpressure
contract, and the asyncio usage shape.
"""

from repro.exceptions import AdmissionError, IngestError
from repro.ingest.aio import AsyncRepairService
from repro.ingest.config import ADMISSION_POLICIES, IngestConfig, TenantQuota
from repro.ingest.feed import BufferedFeed
from repro.ingest.queues import EditQueue, SubmitAck
from repro.ingest.scheduler import IngestFront

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionError",
    "AsyncRepairService",
    "BufferedFeed",
    "EditQueue",
    "IngestConfig",
    "IngestError",
    "IngestFront",
    "SubmitAck",
    "TenantQuota",
]
