"""Per-tenant edit queues and submission acknowledgements.

:class:`SubmitAck` is the handle a producer gets back from ``submit``:
a one-shot, thread-safe future that resolves to the committed changefeed
sequence once the scheduler folds the delta into a commit (or fails with
:class:`~repro.exceptions.AdmissionError` if the delta was shed or the
front shut down first).  ``add_done_callback`` is the bridge the asyncio
facade uses to wake event-loop futures without polling.

:class:`EditQueue` is the bounded per-tenant buffer between producers
and the scheduler.  Admission control lives here: the queue applies its
tenant's :class:`~repro.ingest.config.TenantQuota` policy the moment the
bound is hit, so a flooding tenant feels backpressure at *submit* time
while other tenants' queues stay unaffected.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Optional

from repro.exceptions import AdmissionError
from repro.graph.delta import GraphDelta
from repro.ingest.config import TenantQuota


class SubmitAck:
    """A one-shot acknowledgement for a single submitted delta.

    Resolves to the changefeed sequence of the commit that carried the
    delta.  Thread-safe; ``wait`` may be called from any thread, and
    callbacks registered via :meth:`add_done_callback` run exactly once —
    on the resolving thread, or immediately on the registering thread if
    the ack is already done.
    """

    __slots__ = ("tenant", "_event", "_sequence", "_error", "_callbacks",
                 "_lock")

    def __init__(self, tenant: str) -> None:
        self.tenant = tenant
        self._event = threading.Event()
        self._sequence: Optional[int] = None
        self._error: Optional[BaseException] = None
        self._callbacks: list[Callable[["SubmitAck"], None]] = []
        self._lock = threading.Lock()

    # -- producer side -------------------------------------------------

    def done(self) -> bool:
        return self._event.is_set()

    @property
    def sequence(self) -> Optional[int]:
        """The committed changefeed sequence, or ``None`` until resolved."""
        return self._sequence

    @property
    def error(self) -> Optional[BaseException]:
        """The failure, or ``None`` (also ``None`` before resolution)."""
        return self._error

    def wait(self, timeout: Optional[float] = None) -> int:
        """Block until resolved; return the committed sequence.

        Raises the stored error if the submission failed, or
        :class:`TimeoutError` if ``timeout`` elapses first.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"submission to tenant {self.tenant!r} not acknowledged "
                f"within {timeout}s")
        if self._error is not None:
            raise self._error
        assert self._sequence is not None
        return self._sequence

    def add_done_callback(self, fn: Callable[["SubmitAck"], None]) -> None:
        """Run ``fn(self)`` once the ack resolves (immediately if done).

        Callback exceptions propagate to the resolving thread's caller —
        keep callbacks trivial (the asyncio facade only schedules a
        ``call_soon_threadsafe``).
        """
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    # -- resolver side (the scheduler) ---------------------------------

    def _resolve(self, sequence: int) -> None:
        self._finish(sequence=sequence)

    def _fail(self, error: BaseException) -> None:
        self._finish(error=error)

    def _finish(self, sequence: Optional[int] = None,
                error: Optional[BaseException] = None) -> None:
        with self._lock:
            if self._event.is_set():
                return  # one-shot: first resolution wins
            self._sequence = sequence
            self._error = error
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for fn in callbacks:
            fn(self)


class EditQueue:
    """A bounded FIFO of ``(delta, ack)`` entries for one tenant.

    ``put`` applies the tenant's admission policy when the queue is at
    ``max_pending``; ``drain`` hands batches to the scheduler and frees
    space (waking blocked producers).  All methods are thread-safe.
    """

    def __init__(self, tenant: str, quota: TenantQuota) -> None:
        self.tenant = tenant
        self.quota = quota
        self._entries: deque[tuple[GraphDelta, SubmitAck]] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, delta: GraphDelta, ack: SubmitAck) -> list[SubmitAck]:
        """Enqueue one delta, applying the admission policy at the bound.

        Returns the acks of any entries shed to make room (empty unless
        the policy is ``shed_oldest``); the caller fails and counts them.
        Raises :class:`~repro.exceptions.AdmissionError` when the policy
        rejects the submission instead.
        """
        quota = self.quota
        with self._not_full:
            if self._closed:
                raise AdmissionError(
                    f"tenant {self.tenant!r}: the ingest front is shut down",
                    tenant=self.tenant, reason="shutdown")
            if len(self._entries) >= quota.max_pending:
                if quota.policy == "reject":
                    raise AdmissionError(
                        f"tenant {self.tenant!r}: queue full "
                        f"({quota.max_pending} pending)",
                        tenant=self.tenant, reason="full")
                if quota.policy == "shed_oldest":
                    shed: list[SubmitAck] = []
                    while len(self._entries) >= quota.max_pending:
                        shed.append(self._entries.popleft()[1])
                    self._entries.append((delta, ack))
                    return shed
                # policy == "block": wait for the scheduler to drain
                deadline = time.monotonic() + quota.block_timeout
                while len(self._entries) >= quota.max_pending:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise AdmissionError(
                            f"tenant {self.tenant!r}: queue still full after "
                            f"blocking {quota.block_timeout}s",
                            tenant=self.tenant, reason="timeout")
                    self._not_full.wait(remaining)
                    if self._closed:
                        raise AdmissionError(
                            f"tenant {self.tenant!r}: the ingest front shut "
                            "down while the submit was blocked",
                            tenant=self.tenant, reason="shutdown")
            self._entries.append((delta, ack))
            return []

    def drain(self, limit: int) -> list[tuple[GraphDelta, SubmitAck]]:
        """Pop up to ``limit`` entries in FIFO order, waking producers."""
        with self._not_full:
            if not self._entries:
                return []
            batch = []
            while self._entries and len(batch) < limit:
                batch.append(self._entries.popleft())
            self._not_full.notify_all()
            return batch

    def close(self) -> list[SubmitAck]:
        """Refuse further puts; return the acks still queued (unresolved).

        The caller (the front's shutdown path) fails the returned acks so
        no producer waits forever.
        """
        with self._not_full:
            self._closed = True
            leftovers = [ack for _, ack in self._entries]
            self._entries.clear()
            self._not_full.notify_all()
            return leftovers
