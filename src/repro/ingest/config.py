"""Configuration for the ingestion front and the background scheduler.

Two dataclasses, both plain values:

* :class:`TenantQuota` — per-tenant admission knobs: queue bound, what to
  do when the bound is hit (``block`` / ``reject`` / ``shed_oldest``),
  the staleness SLA the scheduler orders work by, and a scheduling
  weight.
* :class:`IngestConfig` — front-wide knobs: the default quota, the
  scheduler's tick interval, and how many tenants one tick may repair.

Everything is validated eagerly in ``__post_init__`` so a typo'd policy
string fails at construction, not at the first full queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Admission policies accepted by :class:`TenantQuota`.
ADMISSION_POLICIES = ("block", "reject", "shed_oldest")


@dataclass(frozen=True)
class TenantQuota:
    """Admission-control knobs for one tenant's edit queue.

    ``max_pending`` bounds the number of queued (not yet committed)
    deltas.  When the bound is reached, ``policy`` decides the outcome of
    the next submit:

    * ``"block"`` — the submitter waits up to ``block_timeout`` seconds
      for space, then gets :class:`~repro.exceptions.AdmissionError`
      (reason ``"timeout"``);
    * ``"reject"`` — the submit raises immediately (reason ``"full"``);
    * ``"shed_oldest"`` — the oldest queued delta is dropped (its ack
      fails with reason ``"shed"``) and the new one is admitted.

    ``sla_seconds`` is the staleness budget the scheduler scores against:
    a tenant whose last repair was ``sla_seconds`` ago has priority 1.0
    from staleness alone.  ``weight`` scales a tenant's priority (2.0 =
    twice as urgent at equal staleness).  ``max_coalesce`` caps how many
    queued deltas one scheduler pass folds into a single commit.
    """

    max_pending: int = 1024
    policy: str = "block"
    block_timeout: float = 5.0
    sla_seconds: float = 1.0
    weight: float = 1.0
    max_coalesce: int = 256

    def __post_init__(self) -> None:
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {self.policy!r}; expected one of "
                f"{', '.join(ADMISSION_POLICIES)}")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.block_timeout < 0:
            raise ValueError("block_timeout must be >= 0")
        if self.sla_seconds <= 0:
            raise ValueError("sla_seconds must be > 0")
        if self.weight <= 0:
            raise ValueError("weight must be > 0")
        if self.max_coalesce < 1:
            raise ValueError("max_coalesce must be >= 1")


@dataclass(frozen=True)
class IngestConfig:
    """Front-wide configuration for :class:`~repro.ingest.IngestFront`.

    ``tick_interval`` is the background thread's cadence between
    scheduling passes; ``max_repairs_per_tick`` bounds how many tenants
    one pass repairs (the rest wait for the next tick, keeping a single
    pass short).  ``default_quota`` applies to tenants registered without
    an explicit :class:`TenantQuota`.

    ``repair_backoff_base`` / ``repair_backoff_max`` govern retry backoff
    for *failing* repairs: a tenant whose repair raised is skipped by the
    scheduler for ``base * 2**(failures - 1)`` seconds (capped at ``max``)
    instead of burning a slot in every tick; the first success resets it.
    ``repair_backoff_base = 0`` disables backoff.
    """

    tick_interval: float = 0.05
    max_repairs_per_tick: int = 4
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    repair_backoff_base: float = 0.1
    repair_backoff_max: float = 5.0

    def __post_init__(self) -> None:
        if self.tick_interval <= 0:
            raise ValueError("tick_interval must be > 0")
        if self.max_repairs_per_tick < 1:
            raise ValueError("max_repairs_per_tick must be >= 1")
        if self.repair_backoff_base < 0:
            raise ValueError("repair_backoff_base must be >= 0")
        if self.repair_backoff_max < self.repair_backoff_base:
            raise ValueError(
                "repair_backoff_max must be >= repair_backoff_base")
