"""A bounded changefeed subscriber buffer.

Changefeed callbacks run on the committing thread, under the session
lock — a subscriber that does real work (or blocks) in its callback
stalls every commit and the background scheduler with it.
:class:`BufferedFeed` is the safe consumption shape: the callback only
appends to a bounded in-memory buffer (O(1), never blocks), and the
consumer drains at its own pace from its own thread.  When the consumer
falls behind the buffer sheds its **oldest** records and counts them
(``repro_feed_dropped_records_total``), so a never-draining subscriber
costs a bounded amount of memory and zero commit latency.

A consumer that must not miss records should size ``capacity``
generously and poll ``session.deltas(after=...)`` to heal any gap the
``dropped`` counter reveals — the changefeed itself is lossless; only
this buffer sheds.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Optional

from repro import telemetry
from repro.api.events import CommittedDelta


class BufferedFeed:
    """Bounded buffer between a changefeed and a slow (or stuck) consumer.

    ``subscribe`` is any callback-subscription function returning an
    unsubscribe — ``session.on_commit`` or
    ``lambda cb: service.subscribe(name, cb)``.  The subscription is
    taken in the constructor and released by :meth:`close`.
    """

    def __init__(self, subscribe: Callable[[Callable[[CommittedDelta], None]],
                                           Callable[[], None]],
                 capacity: int = 1024, tenant: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.tenant = tenant
        self._records: deque[CommittedDelta] = deque()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._dropped = 0
        self._closed = False
        self._unsubscribe = subscribe(self._push)

    # -- producer side (the committing thread; must never block) -------

    def _push(self, record: CommittedDelta) -> None:
        with self._ready:
            if self._closed:
                return
            if len(self._records) >= self.capacity:
                self._records.popleft()
                self._dropped += 1
                if telemetry.TELEMETRY.enabled:
                    telemetry.inc("repro_feed_dropped_records_total",
                                  tenant=self.tenant)
            self._records.append(record)
            self._ready.notify_all()

    # -- consumer side -------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def dropped(self) -> int:
        """Records shed because the consumer fell behind."""
        with self._lock:
            return self._dropped

    def poll(self) -> list[CommittedDelta]:
        """Drain everything buffered right now (non-blocking)."""
        with self._lock:
            batch = list(self._records)
            self._records.clear()
            return batch

    def get(self, timeout: Optional[float] = None) -> Optional[CommittedDelta]:
        """Pop the oldest buffered record, waiting up to ``timeout``.

        Returns ``None`` on timeout or once closed and empty.
        """
        with self._ready:
            while not self._records:
                if self._closed:
                    return None
                if not self._ready.wait(timeout):
                    return None
            return self._records.popleft()

    def close(self) -> None:
        """Unsubscribe from the feed and wake blocked consumers."""
        with self._ready:
            if self._closed:
                return
            self._closed = True
            self._ready.notify_all()
        self._unsubscribe()

    def __enter__(self) -> "BufferedFeed":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
