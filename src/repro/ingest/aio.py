"""``AsyncRepairService`` — the asyncio facade over the ingest front.

The front itself is thread-backed (bounded queues, a scheduler thread);
this facade multiplexes any number of asyncio clients over it without a
thread per client:

* ``submit`` runs the (possibly blocking, under the ``block`` admission
  policy) enqueue step in the default executor, then awaits the
  commit ack via :meth:`SubmitAck.add_done_callback` bridged onto the
  event loop with ``call_soon_threadsafe`` — no polling, no extra
  threads while waiting.
* ``wait_for_repair`` bridges :meth:`IngestFront.add_repair_waiter` the
  same way, giving awaitable read-your-writes:
  ``seq = await svc.submit(t, delta); await svc.wait_for_repair(t, seq)``
  returns only once the edit's consequences are reconciled.

Admission failures surface as the same
:class:`~repro.exceptions.AdmissionError` the sync API raises.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.ingest.queues import SubmitAck
from repro.ingest.scheduler import IngestFront


class AsyncRepairService:
    """Awaitable submission/read-your-writes API over an
    :class:`~repro.ingest.IngestFront`.

    One instance serves any number of tasks on one event loop.  Closing
    the facade does **not** close the front (several facades — or sync
    producers — may share it).
    """

    def __init__(self, front: IngestFront) -> None:
        self._front = front

    @property
    def front(self) -> IngestFront:
        return self._front

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    async def submit(self, name: str, edit) -> int:
        """Queue one edit and await its commit; returns the committed
        changefeed sequence.

        The enqueue step honours the tenant's admission policy (it may
        block in the executor, reject, or shed) and raises
        :class:`~repro.exceptions.AdmissionError` exactly as the sync
        API does — including when *this* edit is later shed by a newer
        submission before the scheduler commits it.
        """
        loop = asyncio.get_running_loop()
        ack = await loop.run_in_executor(None, self._front.submit, name, edit)
        return await self._await_ack(loop, ack)

    async def submit_many(self, name: str, edits) -> list[int]:
        """Queue several edits in order and await all their commits;
        returns one committed sequence per edit (coalesced edits share
        one)."""
        loop = asyncio.get_running_loop()
        acks = await loop.run_in_executor(None, self._front.submit_many,
                                          name, list(edits))
        return list(await asyncio.gather(
            *(self._await_ack(loop, ack) for ack in acks)))

    # ------------------------------------------------------------------
    # read-your-writes
    # ------------------------------------------------------------------

    async def wait_for_repair(self, name: str, sequence: int,
                              timeout: Optional[float] = None) -> None:
        """Await the tenant being repaired through ``sequence`` (see
        :meth:`IngestFront.wait_for_repair`); raises
        :class:`asyncio.TimeoutError` on timeout."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future[bool] = loop.create_future()

        def _done(satisfied: bool) -> None:
            try:
                loop.call_soon_threadsafe(_resolve, satisfied)
            except RuntimeError:
                pass  # loop already closed; the waiter was abandoned

        def _resolve(satisfied: bool) -> None:
            if not future.done():
                future.set_result(satisfied)

        self._front.add_repair_waiter(name, sequence, _done)
        satisfied = await asyncio.wait_for(asyncio.shield(future), timeout)
        if not satisfied:
            from repro.exceptions import IngestError
            raise IngestError(
                f"the ingest front closed before tenant {name!r} was "
                f"repaired through sequence {sequence}")

    async def submit_and_wait(self, name: str, edit,
                              timeout: Optional[float] = None) -> int:
        """Read-your-writes in one call: submit, await the commit, await
        the repair that reconciles it; returns the committed sequence."""
        sequence = await self.submit(name, edit)
        await self.wait_for_repair(name, sequence, timeout=timeout)
        return sequence

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------

    async def quiesce(self, timeout: float = 30.0) -> None:
        """Await the front going fully clean (executor-run
        :meth:`IngestFront.quiesce`)."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._front.quiesce, timeout)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def _await_ack(loop: asyncio.AbstractEventLoop,
                   ack: SubmitAck) -> "asyncio.Future[int]":
        future: asyncio.Future[int] = loop.create_future()

        def _done(resolved: SubmitAck) -> None:
            try:
                loop.call_soon_threadsafe(_transfer, resolved)
            except RuntimeError:
                pass  # loop already closed; the submitter went away

        def _transfer(resolved: SubmitAck) -> None:
            if future.done():
                return
            if resolved.error is not None:
                future.set_exception(resolved.error)
            else:
                future.set_result(resolved.sequence)

        ack.add_done_callback(_done)
        return future

    async def __aenter__(self) -> "AsyncRepairService":
        return self

    async def __aexit__(self, *exc) -> None:
        return None
