"""Pluggable repair backends behind the session.

:class:`Repairer` is the unified protocol — a **plan / apply / maintain**
lifecycle plus run/close — that every repair strategy implements:

* ``bind(graph, rules)`` attaches the backend's (possibly persistent) state;
* ``plan()`` returns the currently pending violations;
* ``apply(violation)`` executes one repair (no maintenance);
* ``maintain(delta)`` folds a graph delta into the backend's matcher state
  and queues any newly created violations — for the fast backend this is one
  *incremental* pass over the delta's region, for the re-detection backends a
  full re-plan;
* ``run()`` drives pending violations to a fixpoint and reports.

Three implementations ship: :class:`FastBackend` (the paper's efficient
algorithm around a persistent :class:`~repro.repair.fast.FastRepairCore`),
:class:`NaiveBackend` (full re-detection per round), and
:class:`GreedyBackend` (the deletion baseline).  ``register_backend`` lets
downstream code plug in more; :class:`~repro.api.RepairSession` looks its
backend up here by the config's ``backend`` name.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from repro.baselines.greedy import GreedyConfig, GreedyDeleteBaseline
from repro.graph.delta import GraphDelta, recording
from repro.graph.property_graph import PropertyGraph
from repro.matching.vf2 import MatchingStats
from repro.repair.detector import ViolationDetector
from repro.repair.events import MaintenanceEvent
from repro.repair.executor import ExecutionOutcome, RepairExecutor
from repro.repair.fast import FastRepairCore
from repro.repair.naive import NaiveRepairer
from repro.repair.report import RepairReport
from repro.repair.violation import Violation
from repro.rules.grr import RuleSet


@runtime_checkable
class Repairer(Protocol):
    """The plan/apply/maintain lifecycle every repair backend implements."""

    name: str
    #: True when ``run()`` returns one live, cumulative report for the whole
    #: backend lifetime (fast core); False when each ``run()`` reports only
    #: its own round-trip and the session accumulates.
    cumulative_report: bool

    def bind(self, graph: PropertyGraph, rules: RuleSet) -> None:
        """Attach to one graph + rule set (build indexes, enumerate matches)."""
        ...

    def plan(self) -> list[Violation]:
        """The pending violations, in processing order."""
        ...

    def apply(self, violation: Violation) -> ExecutionOutcome:
        """Validate and execute one repair; no maintenance is performed."""
        ...

    def maintain(self, delta: GraphDelta, source: str = "commit") -> MaintenanceEvent:
        """Fold one delta into the backend's state; queue new violations."""
        ...

    def run(self) -> RepairReport:
        """Drive every pending violation to a fixpoint and report."""
        ...

    def stats(self) -> MatchingStats:
        """Aggregated matcher counters of the backend's lifetime."""
        ...

    def close(self) -> None:
        """Release listeners / detach indexes; the backend becomes inert."""
        ...


class FastBackend:
    """The paper's efficient algorithm over a persistent ``FastRepairCore``.

    Matcher state — candidate index, match stores, violation queue, compiled
    search plans — survives across ``run()`` and ``maintain()`` calls, which
    is what makes a session's repairs incremental across invocations.
    """

    name = "fast"
    cumulative_report = True

    def __init__(self, config, events=None) -> None:
        self.config = config
        self.events = events
        self.core: FastRepairCore | None = None

    def bind(self, graph: PropertyGraph, rules: RuleSet) -> None:
        self.core = FastRepairCore(graph, rules,
                                   config=self.config.to_fast_config(),
                                   events=self.events)

    def plan(self) -> list[Violation]:
        return self.core.pending()

    def apply(self, violation: Violation) -> ExecutionOutcome:
        if not self.core.validate(violation):
            return ExecutionOutcome(applied=False, error="violation is obsolete")
        return self.core.execute(violation)

    def maintain(self, delta: GraphDelta, source: str = "commit") -> MaintenanceEvent:
        return self.core.maintain(delta, source=source)

    def run(self) -> RepairReport:
        self.core.drain()
        return self.core.finalize()

    def stats(self) -> MatchingStats:
        return self.core.stats

    def close(self) -> None:
        if self.core is not None:
            self.core.close()


class _ReDetectionBackend:
    """Shared machinery of the backends without incremental matcher state.

    ``plan`` re-detects from scratch; ``maintain`` is a **no-op** (there is
    no state to reconcile — the next ``plan``/``run`` sees the committed
    edits anyway), reported honestly as zero passes and zero newly queued
    violations rather than paying a full detection just to fill an event.
    """

    cumulative_report = False

    def __init__(self, config, events=None) -> None:
        self.config = config
        self.events = events
        self.graph: PropertyGraph | None = None
        self.rules: RuleSet | None = None
        self._stats = MatchingStats()

    def bind(self, graph: PropertyGraph, rules: RuleSet) -> None:
        self.graph = graph
        self.rules = rules

    def _detect(self) -> list[Violation]:
        detector = ViolationDetector(
            self.graph, self.rules,
            matcher_config=self.config.to_matcher_config(),
            match_limit_per_rule=self.config.match_limit_per_rule)
        violations = list(detector.detect())
        self._stats.merge(detector.matcher.stats)
        detector.matcher.close()
        return violations

    def plan(self) -> list[Violation]:
        return self._detect()

    def maintain(self, delta: GraphDelta, source: str = "commit") -> MaintenanceEvent:
        return MaintenanceEvent(source=source, delta_changes=len(delta),
                                passes=0)

    def stats(self) -> MatchingStats:
        return self._stats

    def close(self) -> None:
        pass


class NaiveBackend(_ReDetectionBackend):
    """Full re-detection per round (the paper's baseline algorithm).

    ``run`` delegates to :class:`~repro.repair.naive.NaiveRepairer` on the
    bound graph.
    """

    name = "naive"

    def bind(self, graph: PropertyGraph, rules: RuleSet) -> None:
        super().bind(graph, rules)
        self._executor = RepairExecutor(graph,
                                        cost_model=self.config.cost_model)

    def apply(self, violation: Violation) -> ExecutionOutcome:
        if not violation.match.is_valid(self.graph):
            return ExecutionOutcome(applied=False, error="violation is obsolete")
        return self._executor.apply(violation.rule, violation.match)

    def run(self) -> RepairReport:
        repairer = NaiveRepairer(self.config.to_naive_config(),
                                 events=self.events)
        report = repairer.repair(self.graph, self.rules)
        self._stats.merge(report.matching_stats)
        return report

    def close(self) -> None:
        self._executor = None


class GreedyBackend(_ReDetectionBackend):
    """The greedy-deletion baseline behind the session surface."""

    name = "greedy"

    def bind(self, graph: PropertyGraph, rules: RuleSet) -> None:
        super().bind(graph, rules)
        # every greedy repair is one deletion, so the shared max_repairs
        # budget caps deletions exactly like the other backends' repairs
        limits = [limit for limit in (self.config.max_deletions,
                                      self.config.max_repairs)
                  if limit is not None]
        self._baseline = GreedyDeleteBaseline(
            GreedyConfig(max_rounds=self.config.max_rounds,
                         max_deletions=min(limits) if limits else None))

    def apply(self, violation: Violation) -> ExecutionOutcome:
        """Greedy repair of one violation: delete one involved edge."""
        if not violation.match.is_valid(self.graph):
            return ExecutionOutcome(applied=False, error="violation is obsolete")
        edge_id = self._baseline.edge_to_delete(self.graph, violation)
        if edge_id is None:
            return ExecutionOutcome(applied=False, error="no deletable edge")
        with recording(self.graph) as recorder:
            self.graph.remove_edge(edge_id)
        return ExecutionOutcome(applied=True, delta=recorder.drain())

    def run(self) -> RepairReport:
        started = time.perf_counter()
        report = RepairReport(method=self._baseline.name,
                              graph_name=self.graph.name,
                              rule_set_name=self.rules.name,
                              initial_nodes=self.graph.num_nodes,
                              initial_edges=self.graph.num_edges)
        baseline_report = self._baseline.repair_in_place(self.graph, self.rules,
                                                         events=self.events)
        report.rounds = 1
        report.violations_detected = baseline_report.violations_detected
        report.repairs_applied = baseline_report.changes_applied
        # the loop's terminating round already proved 0 remaining when it
        # ended on an empty detection; re-detect only when it ended on
        # budget or lack of progress
        remaining = baseline_report.details.get("remaining_violations")
        report.remaining_violations = (remaining if remaining is not None
                                       else len(self._detect()))
        report.reached_fixpoint = report.remaining_violations == 0
        report.elapsed_seconds = time.perf_counter() - started
        report.final_nodes = self.graph.num_nodes
        report.final_edges = self.graph.num_edges
        return report

    def close(self) -> None:
        self._baseline = None


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_BACKENDS: dict[str, type] = {
    "fast": FastBackend,
    "naive": NaiveBackend,
    "greedy": GreedyBackend,
    # the legacy baseline's public name, for symmetry with the harness
    "greedy-delete": GreedyBackend,
}

# Backends resolved on first use, keeping heavyweight subsystems out of the
# import graph of ``repro.api`` (repro.parallel imports this module, so a
# module-level import here would be circular).
_LAZY_BACKENDS: dict[str, tuple[str, str]] = {
    "sharded": ("repro.parallel.backend", "ShardedRepairer"),
}


def register_backend(name: str, factory: type) -> None:
    """Register a custom :class:`Repairer` implementation under ``name``."""
    _LAZY_BACKENDS.pop(name, None)
    _BACKENDS[name] = factory


def available_backends() -> list[str]:
    return sorted(set(_BACKENDS) | set(_LAZY_BACKENDS))


def _resolve_backend(name: str) -> type:
    try:
        return _BACKENDS[name]
    except KeyError:
        pass
    try:
        module_name, attribute = _LAZY_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown repair method {name!r}; available: {available_backends()}"
        ) from None
    import importlib

    factory = getattr(importlib.import_module(module_name), attribute)
    _BACKENDS[name] = factory
    return factory


def build_backend(config, events=None, pool=None):
    """Instantiate the backend the config names (without binding it).

    Mirrors the legacy engine's degradation rule: a ``"fast"`` backend with
    ``use_incremental=False`` is the naive loop with an optimised matcher.

    ``pool`` is an optional shared :class:`repro.parallel.pool.WorkerPool`
    for backends that keep workers warm across repair calls (the sharded
    backend in warm mode); backends that cannot use one reject it, so a
    misdirected pool fails loudly instead of silently going cold.
    """
    name = config.backend
    if name == "fast" and not config.use_incremental:
        if pool is not None:
            raise ValueError("a worker pool requires a pool-capable backend; "
                             f"{name!r} with use_incremental=False degrades "
                             "to the naive loop")
        return NaiveBackend(config, events=events)
    factory = _resolve_backend(name)
    if pool is not None:
        return factory(config, events=events, pool=pool)
    return factory(config, events=events)
