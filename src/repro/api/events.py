"""Session-level event surface.

``SessionEvents`` is the api-level name of the repair layer's
:class:`~repro.repair.events.RepairEvents` hook bundle; it is accepted by
:class:`~repro.api.RepairSession` and by every backend, and the same object
can be handed straight to the low-level repairers.  ``CommitResult`` is what
:meth:`RepairSession.commit` returns: the merged staged delta plus the single
maintenance pass that folded it into the persistent matcher state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.delta import GraphDelta
from repro.repair.events import MaintenanceEvent, RepairEvents

#: The session's progress-hook bundle (``on_violation`` /
#: ``on_repair_applied`` / ``on_maintenance``), shared with the repair layer.
SessionEvents = RepairEvents


@dataclass
class CommitResult:
    """Outcome of committing a session's staged edits.

    ``delta`` is the merged delta of every staged transaction;
    ``maintenance`` describes the single incremental pass (``passes == 0``
    when nothing was staged).  ``discovered`` is the number of new violations
    the commit queued.
    """

    delta: GraphDelta = field(default_factory=GraphDelta)
    maintenance: MaintenanceEvent = field(
        default_factory=lambda: MaintenanceEvent(source="commit", passes=0))

    @property
    def discovered(self) -> int:
        return self.maintenance.discovered

    @property
    def changes(self) -> int:
        return len(self.delta)


__all__ = ["SessionEvents", "RepairEvents", "MaintenanceEvent", "CommitResult"]
