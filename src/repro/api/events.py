"""Session-level event surface.

``SessionEvents`` is the api-level name of the repair layer's
:class:`~repro.repair.events.RepairEvents` hook bundle; it is accepted by
:class:`~repro.api.RepairSession` and by every backend, and the same object
can be handed straight to the low-level repairers.  ``CommitResult`` is what
:meth:`RepairSession.commit` returns: the merged staged delta plus the single
maintenance pass that folded it into the persistent matcher state.

``CommittedDelta`` is one record of a session's **committed-delta
changefeed** (:meth:`RepairSession.deltas` / :meth:`RepairSession.on_commit`):
every graph change that survived into the session's committed history — a
committed transaction or the mutations of a repair run — is published as one
monotonically sequenced, replayable delta.  The feed is the transport half of
delta log shipping: replaying the records in sequence order onto a copy of
the session's opening graph reconstructs the committed state element for
element, and :func:`repro.graph.delta.rebase_delta` rebases a record onto a
replica with its own id space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.delta import GraphDelta, replay_delta
from repro.repair.events import MaintenanceEvent, RepairEvents

#: The session's progress-hook bundle (``on_violation`` /
#: ``on_repair_applied`` / ``on_maintenance``), shared with the repair layer.
SessionEvents = RepairEvents


@dataclass
class CommitResult:
    """Outcome of committing a session's staged edits.

    ``delta`` is the merged delta of every staged transaction;
    ``maintenance`` describes the single incremental pass (``passes == 0``
    when nothing was staged).  ``discovered`` is the number of new violations
    the commit queued.
    """

    delta: GraphDelta = field(default_factory=GraphDelta)
    maintenance: MaintenanceEvent = field(
        default_factory=lambda: MaintenanceEvent(source="commit", passes=0))

    @property
    def discovered(self) -> int:
        return self.maintenance.discovered

    @property
    def changes(self) -> int:
        return len(self.delta)


@dataclass(frozen=True)
class CommittedDelta:
    """One record of a session's committed-delta changefeed.

    ``sequence`` numbers are assigned under the session lock, start at 1, and
    increase by exactly 1 per record — a subscriber that has seen sequence
    ``n`` knows it has the complete history up to ``n``.  ``source`` names
    what committed the changes: ``"commit"`` (a committed transaction) or
    ``"repair"`` (the mutations of one :meth:`RepairSession.repair` call).
    ``delta`` replays exactly — ids included — via
    :func:`repro.graph.delta.replay_delta`.  ``timestamp`` is the publishing
    process's ``time.monotonic()`` at commit — what the ingest scheduler's
    commit→repaired latency histograms subtract from; it is process-local
    bookkeeping, never persisted or shipped across processes as a clock.
    """

    sequence: int
    source: str
    delta: GraphDelta
    timestamp: float = 0.0

    def replay_onto(self, graph) -> GraphDelta:
        """Apply this record to a replica graph (exact, id-preserving replay).

        The replica must be at the committed state the previous record left
        it in (records are a *log*: apply them in sequence order, each
        exactly once).  For a replica with its own live id space, rebase
        first: ``rebase_delta(record.delta, replica)``.
        """
        return replay_delta(graph, self.delta)

    def __len__(self) -> int:
        return len(self.delta)


__all__ = ["SessionEvents", "RepairEvents", "MaintenanceEvent", "CommitResult",
           "CommittedDelta"]
