"""The unified repair configuration.

One builder-style :class:`RepairConfig` subsumes the three legacy config
dataclasses (:class:`~repro.repair.engine.EngineConfig`,
:class:`~repro.repair.fast.FastRepairConfig`,
:class:`~repro.matching.matcher.MatcherConfig`, plus
:class:`~repro.repair.naive.NaiveRepairConfig`): every knob of every legacy
surface maps to exactly one field here, and the ``from_*`` / ``to_*``
converters are the single translation layer the deprecation shims go through
— a regression test asserts the mapping covers every legacy field, so the
old cost/ordering-knob duplication drift cannot silently return.

Usage::

    config = RepairConfig.fast()                       # preset
    config = RepairConfig.naive(max_rounds=20)         # preset + overrides
    config = (RepairConfig.fast()                      # builder chain
              .batched(max_batch=16)
              .with_budget(max_repairs=500)
              .with_options(check_consistency=True))
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.matching.matcher import MatcherConfig
from repro.repair.config import RepairKnobs
from repro.repair.cost import CostModel
from repro.repair.engine import EngineConfig
from repro.repair.fast import FastRepairConfig
from repro.repair.naive import NaiveRepairConfig

#: Names accepted by :attr:`RepairConfig.backend` (and the session registry).
BACKENDS = ("fast", "naive", "greedy", "sharded")


@dataclass
class RepairConfig(RepairKnobs):
    """Every knob of a repair session / run, in one builder-style dataclass.

    Inherits the shared cost/ordering/budget knobs
    (``cost_model`` / ``max_repairs`` / ``match_limit_per_rule``) from
    :class:`~repro.repair.config.RepairKnobs`.

    Backend selection and optimisation switches:

    * ``backend`` — ``"fast"`` (incremental GRR repair), ``"naive"``
      (full re-detection per round), or ``"greedy"`` (the deletion baseline);
    * ``use_candidate_index`` / ``use_decomposition`` / ``use_incremental`` —
      the paper's three optimisations (E5 ablation); a fast backend with
      ``use_incremental=False`` degrades to the naive loop with an optimised
      matcher, exactly as the legacy engine did;
    * ``use_cost_planner`` — the statistics-driven match planner layered on
      top of decomposition (``ablation("planner")`` disables just it);
    * ``batch_repairs`` / ``max_batch`` — drain the violation queue in
      batches of region-independent violations maintained under one merged
      incremental pass (fast backend only);
    * ``workers`` / ``shard_count`` / ``shard_radius`` / ``parallel_inline``
      / ``min_partition_nodes`` — the ``"sharded"`` backend's fan-out knobs
      (see :meth:`sharded` and :mod:`repro.parallel`).

    Remaining fields carry the legacy surfaces' knobs: ``max_rounds`` and
    ``raise_on_budget`` (naive loop), ``match_limit`` and ``time_budget``
    (raw matcher), ``max_deletions`` (greedy baseline), and the
    ``check_consistency`` / ``require_consistency`` static-analysis gate.
    """

    backend: str = "fast"
    use_candidate_index: bool = True
    use_decomposition: bool = True
    use_incremental: bool = True
    use_cost_planner: bool = True
    batch_repairs: bool = False
    max_batch: int | None = None
    # -- "sharded" backend knobs ---------------------------------------
    #: worker processes for the fan-out; <=1 degrades to the plain fast drain
    workers: int = 1
    #: shards to cut (default: one per worker)
    shard_count: int | None = None
    #: halo depth in hops (default: derived from the rule set's pattern reach)
    shard_radius: int | None = None
    #: run shard tasks inline (same serialized path, no processes) — for
    #: tests and for hosts where process pools are unavailable
    parallel_inline: bool = False
    #: keep a persistent :class:`repro.parallel.pool.WorkerPool` warm across
    #: repair calls: shard replicas stand in the workers, committed deltas
    #: are shipped to them, and nothing is spawned after warm-up
    warm_pool: bool = False
    #: below this many nodes the fan-out is skipped (partition overhead
    #: would dominate any conceivable win)
    min_partition_nodes: int = 64
    max_rounds: int = 100
    raise_on_budget: bool = False
    match_limit: int | None = None
    time_budget: float | None = None
    max_deletions: int | None = None
    check_consistency: bool = False
    require_consistency: bool = False

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------

    @classmethod
    def fast(cls, **overrides) -> "RepairConfig":
        """The paper's efficient configuration (all optimisations on)."""
        return cls(backend="fast").with_options(**overrides)

    @classmethod
    def naive(cls, **overrides) -> "RepairConfig":
        """The naive fixpoint loop (unoptimised matcher, full re-detection)."""
        return cls(backend="naive", use_candidate_index=False,
                   use_decomposition=False, use_incremental=False,
                   use_cost_planner=False).with_options(**overrides)

    @classmethod
    def baseline(cls, **overrides) -> "RepairConfig":
        """The greedy-deletion baseline (denial-constraint-style repair)."""
        return cls(backend="greedy").with_options(**overrides)

    @classmethod
    def sharded(cls, workers: int = 4, warm: bool = False,
                **overrides) -> "RepairConfig":
        """The sharded multi-process backend (:mod:`repro.parallel`).

        All of the fast backend's optimisations stay on; one repair pass
        fans out over ``workers`` shard processes and fans back in under a
        single incremental-maintenance pass.  ``workers=1`` degrades to the
        plain fast drain.  ``warm=True`` keeps a persistent worker pool with
        standing shard replicas across repair calls (the long-lived
        session / service shape): spawn and per-shard re-detection costs are
        paid once, then committed deltas ship incrementally.
        """
        return cls(backend="sharded", workers=workers,
                   warm_pool=warm).with_options(**overrides)

    @classmethod
    def ablation(cls, disable: str) -> "RepairConfig":
        """The E5 ablation variants, by the name of the *disabled* part."""
        return cls.from_engine_config(EngineConfig.ablation(disable))

    # ------------------------------------------------------------------
    # builder
    # ------------------------------------------------------------------

    def with_options(self, **overrides) -> "RepairConfig":
        """A copy with the given fields replaced (the generic builder step)."""
        return replace(self, **overrides) if overrides else self

    def with_cost_model(self, cost_model: CostModel) -> "RepairConfig":
        return replace(self, cost_model=cost_model)

    def with_budget(self, max_repairs: int | None = None,
                    max_rounds: int | None = None,
                    time_budget: float | None = None) -> "RepairConfig":
        """A copy with the given budgets set (omitted ones keep their value)."""
        config = self
        if max_repairs is not None:
            config = replace(config, max_repairs=max_repairs)
        if max_rounds is not None:
            config = replace(config, max_rounds=max_rounds)
        if time_budget is not None:
            config = replace(config, time_budget=time_budget)
        return config

    def batched(self, enabled: bool = True,
                max_batch: int | None = None) -> "RepairConfig":
        """A copy with batched queue draining toggled.

        An omitted ``max_batch`` keeps the current cap (same contract as
        :meth:`with_budget`).
        """
        config = replace(self, batch_repairs=enabled)
        if max_batch is not None:
            config = replace(config, max_batch=max_batch)
        return config

    # ------------------------------------------------------------------
    # legacy conversions (the deprecation shims' translation layer)
    # ------------------------------------------------------------------

    @classmethod
    def from_legacy(cls, config) -> "RepairConfig":
        """Convert any legacy config object to a :class:`RepairConfig`."""
        if isinstance(config, cls):
            return config
        if isinstance(config, EngineConfig):
            return cls.from_engine_config(config)
        if isinstance(config, FastRepairConfig):
            return cls.from_fast_config(config)
        if isinstance(config, NaiveRepairConfig):
            return cls.from_naive_config(config)
        if isinstance(config, MatcherConfig):
            return cls.from_matcher_config(config)
        raise TypeError(f"cannot convert {type(config).__name__} to RepairConfig")

    @classmethod
    def from_engine_config(cls, config: EngineConfig) -> "RepairConfig":
        return cls(backend=config.method,
                   use_candidate_index=config.use_candidate_index,
                   use_decomposition=config.use_decomposition,
                   use_incremental=config.use_incremental,
                   use_cost_planner=config.use_cost_planner,
                   cost_model=config.cost_model,
                   max_repairs=config.max_repairs,
                   max_rounds=config.max_rounds,
                   match_limit_per_rule=config.match_limit_per_rule,
                   check_consistency=config.check_consistency,
                   require_consistency=config.require_consistency)

    @classmethod
    def from_fast_config(cls, config: FastRepairConfig) -> "RepairConfig":
        return cls(backend="fast",
                   use_candidate_index=config.use_candidate_index,
                   use_decomposition=config.use_decomposition,
                   use_cost_planner=config.use_cost_planner,
                   batch_repairs=config.batch_repairs,
                   max_batch=config.max_batch,
                   cost_model=config.cost_model,
                   max_repairs=config.max_repairs,
                   match_limit_per_rule=config.match_limit_per_rule)

    @classmethod
    def from_naive_config(cls, config: NaiveRepairConfig) -> "RepairConfig":
        matcher = config.matcher_config
        return cls(backend="naive",
                   use_candidate_index=matcher.use_candidate_index,
                   use_decomposition=matcher.use_decomposition,
                   use_cost_planner=matcher.use_cost_planner,
                   use_incremental=False,
                   match_limit=matcher.match_limit,
                   time_budget=matcher.time_budget,
                   cost_model=config.cost_model,
                   max_repairs=config.max_repairs,
                   max_rounds=config.max_rounds,
                   raise_on_budget=config.raise_on_budget,
                   match_limit_per_rule=config.match_limit_per_rule)

    @classmethod
    def from_matcher_config(cls, config: MatcherConfig) -> "RepairConfig":
        return cls(use_candidate_index=config.use_candidate_index,
                   use_decomposition=config.use_decomposition,
                   use_cost_planner=config.use_cost_planner,
                   match_limit=config.match_limit,
                   time_budget=config.time_budget)

    def to_engine_config(self) -> EngineConfig:
        return EngineConfig(method=self.backend,
                            use_candidate_index=self.use_candidate_index,
                            use_decomposition=self.use_decomposition,
                            use_incremental=self.use_incremental,
                            use_cost_planner=self.use_cost_planner,
                            cost_model=self.cost_model,
                            max_repairs=self.max_repairs,
                            max_rounds=self.max_rounds,
                            match_limit_per_rule=self.match_limit_per_rule,
                            check_consistency=self.check_consistency,
                            require_consistency=self.require_consistency)

    def to_fast_config(self) -> FastRepairConfig:
        return FastRepairConfig(use_candidate_index=self.use_candidate_index,
                                use_decomposition=self.use_decomposition,
                                use_cost_planner=self.use_cost_planner,
                                batch_repairs=self.batch_repairs,
                                max_batch=self.max_batch,
                                cost_model=self.cost_model,
                                max_repairs=self.max_repairs,
                                match_limit_per_rule=self.match_limit_per_rule)

    def to_naive_config(self) -> NaiveRepairConfig:
        return NaiveRepairConfig(matcher_config=self.to_matcher_config(),
                                 cost_model=self.cost_model,
                                 max_repairs=self.max_repairs,
                                 max_rounds=self.max_rounds,
                                 raise_on_budget=self.raise_on_budget,
                                 match_limit_per_rule=self.match_limit_per_rule)

    def to_matcher_config(self) -> MatcherConfig:
        return MatcherConfig(use_candidate_index=self.use_candidate_index,
                             use_decomposition=self.use_decomposition,
                             use_cost_planner=self.use_cost_planner,
                             match_limit=self.match_limit,
                             time_budget=self.time_budget)
