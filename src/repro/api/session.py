"""The transactional repair session — the library's primary entry point.

A :class:`RepairSession` is opened **once** over a
:class:`~repro.graph.PropertyGraph` and a :class:`~repro.rules.RuleSet`; the
expensive repair state — candidate index, enumerated match stores, compiled
search plans, the violation queue — is built at open time and *persists*
across every subsequent call.  That is the usage shape a long-lived service
needs: the graph keeps receiving edits, and each edit is reconciled
incrementally instead of re-matching the world.

Three interaction styles compose:

**Repairing.**  :meth:`repair` drives the pending violations to a fixpoint
with the configured backend and returns the session's cumulative
:class:`~repro.repair.report.RepairReport`.  With
``RepairConfig.fast().batched()`` the queue drains in batches of
region-independent violations whose deltas are maintained under **one**
merged incremental pass per batch.

**Transactions.**  External edits are staged — :meth:`stage` (a mutator
callable or a recorded :class:`~repro.graph.GraphDelta`) or the
:meth:`transaction` context manager — and land on the graph immediately, but
the matcher state is *not* reconciled until :meth:`commit`, which merges all
staged deltas and folds them in under a single maintenance pass (batched
delta maintenance).  :meth:`rollback` discards staged work instead, using the
delta-inverse machinery to restore the exact pre-stage graph (ids, labels,
properties).  :meth:`apply` is stage-and-commit in one step.

**Streaming.**  A :class:`~repro.api.SessionEvents` bundle
(``on_violation`` / ``on_repair_applied`` / ``on_maintenance``) streams
progress while any of the above runs.  Separately, the **committed-delta
changefeed** (:meth:`deltas` / :meth:`on_commit`) publishes every change
that entered the committed history — committed transactions and repair
mutations — as monotonically sequenced :class:`~repro.api.CommittedDelta`
records that replay exactly onto a replica.

**Threading.**  A session is safe to share between threads: every public
operation takes the session's reentrant lock, so stage/commit/rollback/
repair calls from N threads serialise into *some* interleaving of complete
operations (a :meth:`transaction` block holds the lock from entry to exit —
its edits commit or roll back atomically with respect to other threads).
The changefeed sequence numbers are assigned under the same lock, so the
feed is a total order over the committed history.  The *graph* object is
not independently thread-safe: mutate it through the session (or hold
:meth:`transaction`), never directly from another thread.

Example::

    from repro.api import RepairConfig, RepairSession

    with RepairSession(graph, rules, config=RepairConfig.fast()) as session:
        report = session.repair()              # initial cleaning
        with session.transaction() as g:       # edits arrive later
            g.add_edge(alice, berlin, "bornIn")
            g.remove_edge(stale_edge_id)
        session.commit()                       # ONE maintenance pass
        session.repair()                       # fix what the edits broke

(``commit().discovered`` counts the violations the fast backend queued; the
re-detection backends report 0 there because they find work at the next
``repair()`` instead — call ``repair()`` after committing regardless of it.)
"""

from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager
from typing import Callable, Iterator

import time

from repro import telemetry
from repro.exceptions import InconsistentRuleSetError, SessionStateError
from repro.graph.delta import GraphDelta, apply_inverse, recording, replay_delta
from repro.graph.property_graph import PropertyGraph
from repro.matching.vf2 import MatchingStats
from repro.repair.report import RepairReport
from repro.repair.violation import Violation
from repro.rules.grr import GraphRepairingRule, RuleSet
from repro.api.backend import Repairer, build_backend
from repro.api.config import RepairConfig
from repro.api.events import (
    CommitResult,
    CommittedDelta,
    MaintenanceEvent,
    SessionEvents,
)


def _consistency_gate(rules: RuleSet, require: bool) -> None:
    """Static rule-set analysis before any repairing (config-gated)."""
    from repro.analysis.consistency import ConsistencyVerdict, check_consistency

    result = check_consistency(rules)
    if result.verdict is ConsistencyVerdict.INCONSISTENT:
        message = ("rule set failed the consistency check: "
                   + "; ".join(result.reasons))
        if require:
            raise InconsistentRuleSetError(message, evidence=result)
        warnings.warn(message, stacklevel=4)


class RepairSession:
    """A long-lived, transactional repair session over one graph + rule set.

    The session repairs **in place**: pass ``graph.copy()`` to keep the
    original.  Use as a context manager (or call :meth:`close`) so the
    backend detaches its index listener from the graph's change feed.

    **Threading contract.**  Every public operation acquires the session's
    reentrant lock, so a session may be shared between threads: concurrent
    stage/commit/rollback/repair calls serialise into complete, atomic
    operations in *some* order (which order is the scheduler's choice — use
    external coordination when the order matters).  A :meth:`transaction`
    block holds the lock from entry to exit.  Changefeed callbacks
    (:meth:`on_commit`) and :class:`SessionEvents` hooks run on the calling
    thread while the lock is held — keep them fast and never block in them
    on another thread that needs this session.
    """

    def __init__(self, graph: PropertyGraph,
                 rules: RuleSet | list[GraphRepairingRule],
                 config: RepairConfig | None = None,
                 events: SessionEvents | None = None,
                 pool=None) -> None:
        self.graph = graph
        self.rules = rules if isinstance(rules, RuleSet) else RuleSet(rules)
        self.config = RepairConfig.from_legacy(config) if config is not None \
            else RepairConfig.fast()
        self.events = events
        if self.config.check_consistency or self.config.require_consistency:
            _consistency_gate(self.rules, self.config.require_consistency)
        self.backend: Repairer = build_backend(self.config, events=events,
                                               pool=pool)
        self.backend.bind(graph, self.rules)
        self._staged: list[GraphDelta] = []
        self._report: RepairReport | None = None
        self._in_transaction = False
        self._closed = False
        self._lock = threading.RLock()
        self._feed: list[CommittedDelta] = []
        self._feed_subscribers: list[Callable[[CommittedDelta], None]] = []
        if telemetry.TELEMETRY.enabled:
            # the backend already worked during construction (index build,
            # initial detection) — count it, so telemetry totals equal the
            # cumulative stats at every repair boundary
            self._record_counter_deltas(
                dict.fromkeys(self._counter_state(), 0.0))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Detach the backend from the graph; the session becomes inert.

        Staged, uncommitted edits are left on the graph untouched — call
        :meth:`rollback` first to discard them.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self.backend.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "RepairSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise SessionStateError("the session is closed")

    def _require_no_transaction(self, operation: str) -> None:
        if self._in_transaction:
            raise SessionStateError(
                f"{operation}() is illegal inside an open transaction(): the "
                "transaction's edits are still being recorded — exit the "
                "transaction block first")

    # ------------------------------------------------------------------
    # repairing
    # ------------------------------------------------------------------

    def repair(self) -> RepairReport:
        """Drive every pending violation to a fixpoint (in place).

        Returns the session's **cumulative** report (counters, provenance,
        and matcher statistics accumulate across calls).  Raises
        :class:`~repro.exceptions.SessionStateError` while staged edits are
        pending — commit or roll them back first, so the report always
        describes a reconciled graph.
        """
        with self._lock:
            self._require_open()
            self._require_no_transaction("repair")
            if self._staged:
                raise SessionStateError(
                    f"{len(self._staged)} staged transaction(s) pending; "
                    "commit() or rollback() before repairing")
            observing = telemetry.TELEMETRY.enabled
            if observing:
                before = self._counter_state()
                started = time.perf_counter()
            with telemetry.span("session.repair", tenant=self.graph.name,
                                backend=self.config.backend):
                with recording(self.graph) as recorder:
                    report = self.backend.run()
            self._publish("repair", recorder.drain())
            if self.backend.cumulative_report:
                self._report = report
            elif self._report is None:
                self._report = report
            else:
                self._report.absorb(report)
            if observing:
                telemetry.observe("repro_repair_seconds",
                                  time.perf_counter() - started,
                                  tenant=self.graph.name,
                                  backend=self.config.backend)
                self._record_counter_deltas(before)
            return self._report

    def violations(self) -> list[Violation]:
        """The currently pending violations, in processing order.

        The fast backend answers from its persistent stores, which reflect
        the last *reconciled* state — staged-but-uncommitted edits appear
        only after :meth:`commit`.  The re-detection backends (naive,
        greedy) have no stores and re-detect over the live graph, staged
        edits included.  Commit or roll back staged work first when the
        distinction matters.  Illegal inside an open :meth:`transaction`
        (the graph is mid-edit there).
        """
        with self._lock:
            self._require_open()
            self._require_no_transaction("violations")
            return self.backend.plan()

    @property
    def report(self) -> RepairReport | None:
        """The cumulative report of every :meth:`repair` call so far."""
        return self._report

    @property
    def stats(self) -> MatchingStats:
        """Aggregated matcher counters of the backend's lifetime (including
        ``maintenance_passes`` — the batching win is visible here)."""
        return self.backend.stats()

    # -- telemetry: counters equal the report/stats by construction -----

    def _counter_state(self) -> dict[str, float]:
        """The cumulative counter values telemetry mirrors (lock held)."""
        report, stats = self._report, self.backend.stats()
        return {
            "repro_violations_detected_total":
                report.violations_detected if report else 0,
            "repro_repairs_applied_total":
                report.repairs_applied if report else 0,
            "repro_repairs_failed_total":
                report.repairs_failed if report else 0,
            "repro_match_nodes_tried_total": stats.nodes_tried,
            "repro_matches_found_total": stats.matches_found,
            "repro_maintenance_passes_total": stats.maintenance_passes,
        }

    def _record_counter_deltas(self, before: dict[str, float]) -> None:
        """Advance the telemetry counters by exactly what this call added,
        so their totals always equal the cumulative report/stats — the
        equivalence the telemetry integration tests pin."""
        after = self._counter_state()
        for name, value in after.items():
            delta = value - before[name]
            if delta:
                telemetry.inc(name, delta, tenant=self.graph.name,
                              backend=self.config.backend)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def stage(self, edit: Callable[[PropertyGraph], object] | GraphDelta) -> GraphDelta:
        """Stage one transaction of edits.

        ``edit`` is either a callable receiving the graph (its mutations are
        recorded) or a previously recorded :class:`GraphDelta` (replayed onto
        the graph).  The edits land on the graph immediately; the matcher
        state is reconciled only at :meth:`commit`, where all staged deltas
        are merged and maintained under **one** incremental pass.  Returns
        the recorded delta of this transaction.
        """
        with self._lock:
            staged_before = len(self._staged)
            with self.transaction() as graph:
                if isinstance(edit, GraphDelta):
                    replay_delta(graph, edit)
                else:
                    edit(graph)
            if len(self._staged) > staged_before:
                return self._staged[-1]
            return GraphDelta()

    @contextmanager
    def transaction(self) -> Iterator[PropertyGraph]:
        """Context-manager form of :meth:`stage` (the one transaction
        implementation — :meth:`stage` delegates here).

        Yields the graph for direct mutation; on normal exit the recorded
        delta joins the staged set, on exception the partial edits —
        including a partially applied delta replay — are inverse-applied
        (the transaction never happened) and the exception propagates.
        Transactions do not nest: two overlapping recorders would capture the
        inner edits twice, so nested entry raises
        :class:`~repro.exceptions.SessionStateError`.  The session lock is
        held for the whole block, so the transaction is atomic with respect
        to every other thread's session operations.
        """
        with self._lock:
            self._require_open()
            if self._in_transaction:
                raise SessionStateError(
                    "transactions do not nest; finish the open transaction() / "
                    "stage() before starting another")
            self._in_transaction = True
            try:
                with recording(self.graph) as recorder:
                    yield self.graph
            except BaseException:
                # recording() has already detached the listener, so the undo
                # mutations below are not themselves recorded
                apply_inverse(self.graph, recorder.delta)
                raise
            finally:
                self._in_transaction = False
            delta = recorder.drain()
            if delta:
                self._staged.append(delta)

    @property
    def staged(self) -> int:
        """Number of staged, uncommitted transactions."""
        return len(self._staged)

    def _merge_staged(self) -> GraphDelta:
        merged = GraphDelta()
        for delta in self._staged:
            merged.extend(delta.changes)
        self._staged.clear()
        return merged

    def commit(self) -> CommitResult:
        """Reconcile all staged edits under one merged maintenance pass.

        With the fast backend, newly created violations join the pending
        queue (streamed through ``on_violation``) — including re-created
        instances of previously repaired violations — and are repaired by
        the next :meth:`repair` call.  Backends without incremental state
        (naive, greedy) have nothing to reconcile: their commit reports zero
        passes and the next ``repair()`` re-detects from scratch.
        Committing with nothing staged is always a no-op (``passes == 0``,
        nothing published to the changefeed).
        """
        with self._lock:
            self._require_open()
            self._require_no_transaction("commit")
            merged = self._merge_staged()
            if not merged:
                return CommitResult(delta=merged,
                                    maintenance=MaintenanceEvent(source="commit",
                                                                 passes=0))
            observing = telemetry.TELEMETRY.enabled
            if observing:
                before = self._counter_state()
                started = time.perf_counter()
            with telemetry.span("session.commit", tenant=self.graph.name,
                                changes=len(merged.changes)):
                event = self.backend.maintain(merged, source="commit")
            self._publish("commit", merged)
            if observing:
                telemetry.observe("repro_commit_seconds",
                                  time.perf_counter() - started,
                                  tenant=self.graph.name,
                                  backend=self.config.backend)
                self._record_counter_deltas(before)
            return CommitResult(delta=merged, maintenance=event)

    def rollback(self) -> GraphDelta:
        """Discard every staged transaction.

        The staged deltas are inverse-applied (newest first), restoring the
        graph element-for-element — same ids, labels, properties — to its
        state before the first uncommitted :meth:`stage`.  The matcher state
        was never told about the staged edits, so nothing else needs
        repairing.  Returns the inverse delta that was applied.

        Rolled-back edits never reach the changefeed: records are published
        at commit, so a subscriber only ever sees the committed history.
        """
        with self._lock:
            self._require_open()
            self._require_no_transaction("rollback")
            merged = self._merge_staged()
            if not merged:
                return GraphDelta()
            return apply_inverse(self.graph, merged)

    def apply(self, edit: Callable[[PropertyGraph], object] | GraphDelta) -> CommitResult:
        """Stage one transaction and commit it immediately (atomically: the
        session lock is held across both steps)."""
        with self._lock:
            self.stage(edit)
            return self.commit()

    def apply_many(self, edits: "list[Callable[[PropertyGraph], object] | GraphDelta]") -> CommitResult:
        """Stage each edit as its own transaction, then commit them all
        under **one** merged maintenance pass.

        Atomic: the session lock is held across the whole batch, so no
        other thread's stage or commit interleaves, and the changefeed
        carries a single record for the batch.  This is the coalescing
        primitive the ingestion scheduler folds queued deltas with —
        graph state afterwards is element-for-element what applying the
        edits one ``apply`` at a time would produce.  ``edits`` must be
        non-empty.
        """
        if not edits:
            raise ValueError("apply_many needs at least one edit")
        with self._lock:
            for edit in edits:
                self.stage(edit)
            return self.commit()

    # ------------------------------------------------------------------
    # the committed-delta changefeed
    # ------------------------------------------------------------------

    def _publish(self, source: str, delta: GraphDelta) -> None:
        """Append one changefeed record and notify subscribers (lock held).

        Empty deltas are not published: a record always carries at least one
        change.  Subscriber exceptions propagate to the committing caller —
        after the record is already in the feed, so :meth:`deltas` readers
        never miss it.
        """
        if not delta:
            return
        record = CommittedDelta(sequence=len(self._feed) + 1, source=source,
                                delta=delta, timestamp=time.monotonic())
        self._feed.append(record)
        if telemetry.TELEMETRY.enabled:
            telemetry.inc("repro_commits_total", tenant=self.graph.name,
                          source=source)
        for subscriber in list(self._feed_subscribers):
            subscriber(record)

    def deltas(self, after: int = 0) -> list[CommittedDelta]:
        """The committed-delta changefeed records with ``sequence > after``.

        Sequences start at 1 and are dense, so a subscriber polls with the
        last sequence it has applied and receives exactly the missing tail.
        Replaying every record (in order, via
        :meth:`~repro.api.CommittedDelta.replay_onto`) onto a copy of the
        graph as it was when the session opened reconstructs the current
        committed state element for element.
        """
        with self._lock:
            self._require_open()
            if after < 0:
                raise ValueError(f"after must be >= 0, got {after}")
            return self._feed[after:]

    def on_commit(self, callback: Callable[[CommittedDelta], None],
                  *, prepend: bool = False) -> Callable[[], None]:
        """Subscribe ``callback`` to the changefeed; returns an unsubscribe.

        The callback runs on the committing thread, under the session lock,
        once per published record, in sequence order.  It must not mutate
        this session's graph (ship the delta to a *replica* instead) and
        should return quickly — every other thread's session operation waits
        while it runs.

        ``prepend=True`` places the callback **ahead** of every subscriber
        registered so far — the durability hook's slot: a write-ahead log
        must see (and fsync) the record before any replica-feeding
        subscriber ships it, and before the committing call returns.  A
        prepended callback that raises therefore also *prevents* later
        subscribers from observing the record in that delivery (the record
        itself is already in :meth:`deltas` either way).
        """
        with self._lock:
            self._require_open()
            if prepend:
                self._feed_subscribers.insert(0, callback)
            else:
                self._feed_subscribers.append(callback)

        def unsubscribe() -> None:
            with self._lock:
                if callback in self._feed_subscribers:
                    self._feed_subscribers.remove(callback)
        return unsubscribe

    @property
    def last_sequence(self) -> int:
        """Sequence number of the newest changefeed record (0 when empty)."""
        with self._lock:
            return len(self._feed)


def repair_copy(graph: PropertyGraph,
                rules: RuleSet | list[GraphRepairingRule],
                config: RepairConfig | None = None,
                events: SessionEvents | None = None) -> tuple[PropertyGraph, RepairReport]:
    """One-shot convenience: repair a copy of ``graph`` through a short-lived
    session; returns ``(repaired copy, report)``.

    The non-deprecated replacement for the ``repair_graph`` shim, and the
    idiom every harness/benchmark call site shares.  For anything long-lived
    (successive edits, transactions, streaming) open a
    :class:`RepairSession` directly.
    """
    repaired = graph.copy(name=f"{graph.name}-repaired")
    with RepairSession(repaired, rules, config=config, events=events) as session:
        report = session.repair()
    return repaired, report


def open_session(graph: PropertyGraph,
                 rules: RuleSet | list[GraphRepairingRule],
                 backend: str = "fast",
                 events: SessionEvents | None = None,
                 **config_overrides) -> RepairSession:
    """Convenience constructor: ``open_session(graph, rules, "fast", ...)``.

    ``backend`` picks the config preset (``"fast"`` / ``"naive"`` /
    ``"greedy"``); keyword overrides are applied on top of it.
    """
    presets = {"fast": RepairConfig.fast, "naive": RepairConfig.naive,
               "greedy": RepairConfig.baseline,
               "greedy-delete": RepairConfig.baseline,
               "sharded": RepairConfig.sharded}
    try:
        preset = presets[backend]
    except KeyError:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"available: {sorted(set(presets))}") from None
    return RepairSession(graph, rules, config=preset(**config_overrides),
                         events=events)
