"""``repro.api`` — the transactional, backend-pluggable public API.

The package centres on :class:`RepairSession`: open it once over a graph and
a rule set, keep matcher state alive across successive edits, stage / commit /
roll back transactions with batched delta maintenance, and stream progress
through :class:`SessionEvents`.  Behind the session sits the
:class:`Repairer` protocol (plan/apply/maintain lifecycle) with three bundled
backends — fast, naive, greedy — selected by the unified, builder-style
:class:`RepairConfig`.

See ``docs/MIGRATION.md`` for the mapping from the legacy one-shot entry
points (``repair_graph`` / ``RepairEngine`` / per-algorithm configs).
"""

from repro.api.backend import (
    FastBackend,
    GreedyBackend,
    NaiveBackend,
    Repairer,
    available_backends,
    build_backend,
    register_backend,
)
from repro.api.config import BACKENDS, RepairConfig
from repro.api.events import (
    CommitResult,
    CommittedDelta,
    MaintenanceEvent,
    SessionEvents,
)
from repro.api.session import RepairSession, open_session, repair_copy

__all__ = [
    "RepairSession",
    "open_session",
    "repair_copy",
    "RepairConfig",
    "BACKENDS",
    "Repairer",
    "FastBackend",
    "NaiveBackend",
    "GreedyBackend",
    "build_backend",
    "register_backend",
    "available_backends",
    "SessionEvents",
    "MaintenanceEvent",
    "CommitResult",
    "CommittedDelta",
]
