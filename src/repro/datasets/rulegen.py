"""Random rule-set generation.

Two experiments need rule sets of controlled size rather than the hand-written
libraries: the #rules scalability sweep (E3) and the rule-set analysis
benchmark (E6).  The generator derives rules from the *implicit schema* of a
given data graph (its (source label, edge label, target label) histogram), so
generated patterns actually have candidates on that graph:

* **functional-conflict rules** — two same-label edges from one source to two
  distinct targets ⇒ delete one;
* **duplicate-edge redundancy rules** — two parallel same-label edges between
  the same endpoints ⇒ delete one;
* **path-incompleteness rules** — for schema triangles ``A -r-> B -s-> C``
  with an existing shortcut ``A -t-> C``, require the shortcut and add it when
  missing (only emitted when such a triangle exists in the data, so the rule
  is satisfiable rather than firing on every 2-path).

For E6 the generator can additionally *plant* an inconsistent pair: an
incompleteness rule that adds edges with a fresh label and a conflict rule
that deletes every edge with that label — the canonical repair oscillation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.property_graph import PropertyGraph
from repro.graph.statistics import functional_predicate_candidates, label_pair_histogram
from repro.rules.builder import conflict_rule, incompleteness_rule, redundancy_rule
from repro.rules.grr import GraphRepairingRule, RuleSet
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class RuleGenConfig:
    """Knobs of the random rule generator."""

    num_rules: int = 8
    conflict_share: float = 0.4
    redundancy_share: float = 0.4
    incompleteness_share: float = 0.2
    plant_inconsistent_pair: bool = False
    seed: int | random.Random | None = 0


def _schema_triples(graph: PropertyGraph) -> list[tuple[str, str, str]]:
    histogram = label_pair_histogram(graph)
    return sorted(histogram, key=lambda key: -histogram[key])


def _schema_triangles(graph: PropertyGraph,
                      triples: list[tuple[str, str, str]]) -> list[tuple]:
    """Triangles ``A -r-> B -s-> C`` with a shortcut ``A -t-> C`` in the schema."""
    by_source: dict[str, list[tuple[str, str, str]]] = {}
    for source_label, edge_label, target_label in triples:
        by_source.setdefault(source_label, []).append((source_label, edge_label, target_label))
    triangles = []
    for first in triples:
        source_label, first_edge, middle_label = first
        for second in by_source.get(middle_label, ()):
            _, second_edge, final_label = second
            for shortcut in by_source.get(source_label, ()):
                _, shortcut_edge, shortcut_target = shortcut
                if shortcut_target == final_label and shortcut_edge not in (first_edge,
                                                                            second_edge):
                    triangles.append((source_label, first_edge, middle_label,
                                      second_edge, final_label, shortcut_edge))
    return triangles


def _make_conflict_rule(index: int, triple: tuple[str, str, str]) -> GraphRepairingRule:
    source_label, edge_label, target_label = triple
    return (conflict_rule(f"gen-conflict-{index}")
            .node("x", source_label).node("y1", target_label).node("y2", target_label)
            .edge("x", "y1", edge_label, variable="e1")
            .edge("x", "y2", edge_label, variable="e2")
            .delete_edge(edge_variable="e2")
            .priority(5)
            .described_as(f"generated: {edge_label} from {source_label} is functional")
            .build())


def _make_redundancy_rule(index: int, triple: tuple[str, str, str]) -> GraphRepairingRule:
    source_label, edge_label, target_label = triple
    return (redundancy_rule(f"gen-redundancy-{index}")
            .node("x", source_label).node("y", target_label)
            .edge("x", "y", edge_label, variable="e1")
            .edge("x", "y", edge_label, variable="e2")
            .delete_edge(edge_variable="e2")
            .priority(3)
            .described_as(f"generated: parallel duplicate {edge_label} edges are redundant")
            .build())


def _make_incompleteness_rule(index: int, triangle: tuple) -> GraphRepairingRule:
    source_label, first_edge, middle_label, second_edge, final_label, shortcut_edge = triangle
    return (incompleteness_rule(f"gen-incompleteness-{index}")
            .node("a", source_label).node("b", middle_label).node("c", final_label)
            .edge("a", "b", first_edge).edge("b", "c", second_edge)
            .missing_edge("a", "c", shortcut_edge)
            .add_edge("a", "c", shortcut_edge)
            .priority(4)
            .described_as(f"generated: {first_edge}∘{second_edge} implies {shortcut_edge}")
            .build())


def _make_inconsistent_pair(index: int, triple: tuple[str, str, str]) -> list[GraphRepairingRule]:
    """An incompleteness rule adding a fresh-label edge and a conflict rule that
    deletes every edge with that label — they repair-trigger each other forever."""
    source_label, edge_label, target_label = triple
    fresh_label = f"planted-{index}"
    adder = (incompleteness_rule(f"gen-planted-add-{index}")
             .node("x", source_label).node("y", target_label)
             .edge("x", "y", edge_label)
             .missing_edge("x", "y", fresh_label)
             .add_edge("x", "y", fresh_label)
             .priority(2)
             .described_as("planted inconsistency: always wants the edge present")
             .build())
    deleter = (conflict_rule(f"gen-planted-delete-{index}")
               .node("x", source_label).node("y", target_label)
               .edge("x", "y", fresh_label, variable="e")
               .delete_edge(edge_variable="e")
               .priority(2)
               .described_as("planted inconsistency: always wants the edge absent")
               .build())
    return [adder, deleter]


def generate_rules(graph: PropertyGraph, config: RuleGenConfig | None = None,
                   name: str = "generated-rules") -> RuleSet:
    """Generate a rule set of ``config.num_rules`` rules grounded in ``graph``'s schema."""
    config = config or RuleGenConfig()
    rng = ensure_rng(config.seed)
    triples = _schema_triples(graph)
    if not triples:
        raise ValueError("cannot generate rules for a graph with no edges")
    triangles = _schema_triangles(graph, triples)
    # Conflict rules only make sense on predicates that behave functionally in
    # the data; otherwise a generated rule would "repair" perfectly valid facts.
    functional_labels = functional_predicate_candidates(graph)
    functional_triples = [triple for triple in triples if triple[1] in functional_labels]

    rules: list[GraphRepairingRule] = []
    if config.plant_inconsistent_pair:
        rules.extend(_make_inconsistent_pair(0, rng.choice(triples)))

    kinds = ["conflict", "redundancy", "incompleteness"]
    weights = [config.conflict_share, config.redundancy_share,
               config.incompleteness_share]
    index = 0
    attempts = 0
    while len(rules) < config.num_rules and attempts < 20 * config.num_rules:
        attempts += 1
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        if kind == "conflict" and not functional_triples:
            kind = "redundancy"
        try:
            if kind == "conflict":
                rule = _make_conflict_rule(index, rng.choice(functional_triples))
            elif kind == "redundancy":
                rule = _make_redundancy_rule(index, rng.choice(triples))
            else:
                if not triangles:
                    continue
                rule = _make_incompleteness_rule(index, rng.choice(triangles))
        except Exception:
            continue
        index += 1
        rules.append(rule)

    return RuleSet(rules[:max(config.num_rules,
                              2 if config.plant_inconsistent_pair else 0)], name=name)
