"""Synthetic people/geography knowledge graph.

This generator stands in for the real knowledge-graph dumps (YAGO / DBpedia)
the paper evaluates on — see the substitution table in DESIGN.md.  It
produces a *clean* property graph that satisfies every rule of
:func:`repro.rules.library.knowledge_graph_rules`:

* ``Country`` nodes, each with exactly one capital (``capitalOf``);
* ``City`` nodes with an ``inCountry`` edge;
* ``Person`` nodes with exactly one ``bornIn`` city, one ``livesIn`` city,
  and a ``nationality`` edge to the birth city's country (so the
  incompleteness rule is satisfied and the conflict rule has nothing to
  complain about);
* ``Organization`` nodes headquartered in a city and ``basedIn`` its country,
  with people working for them.

Degree skew follows real KGs: persons are attached to cities with Zipfian
preference, so a few cities become hubs.  Every edge is stamped with
``confidence = 1.0`` — the conflict-resolution policy of the rule library
compares confidences, and error injection marks its less-trustworthy facts
with a lower value.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors.injector import ErrorProfile
from repro.graph.property_graph import PropertyGraph
from repro.rules.library import KG
from repro.utils.rng import ensure_rng, zipf_weights

CLEAN_CONFIDENCE = 1.0

CONTINENTS = ("Europe", "Asia", "Africa", "Americas", "Oceania")
GIVEN_NAMES = ("Ada", "Alan", "Grace", "Edsger", "Barbara", "Donald", "Edgar", "John",
               "Leslie", "Tim", "Margaret", "Dennis", "Ken", "Radia", "Frances", "Niklaus")
FAMILY_NAMES = ("Lovelace", "Turing", "Hopper", "Dijkstra", "Liskov", "Knuth", "Codd",
                "Backus", "Lamport", "Berners-Lee", "Hamilton", "Ritchie", "Thompson",
                "Perlman", "Allen", "Wirth")


@dataclass(frozen=True)
class KGConfig:
    """Size knobs of the knowledge-graph generator."""

    num_persons: int = 200
    num_countries: int = 8
    cities_per_country: int = 4
    num_organizations: int = 20
    employment_probability: float = 0.6
    seed: int | random.Random | None = 0

    @classmethod
    def scaled(cls, num_persons: int, seed: int | random.Random | None = 0) -> "KGConfig":
        """A config whose secondary sizes grow sub-linearly with ``num_persons``."""
        num_countries = max(3, min(40, num_persons // 25))
        cities_per_country = max(2, min(8, num_persons // (num_countries * 8) + 2))
        num_organizations = max(3, num_persons // 10)
        return cls(num_persons=num_persons, num_countries=num_countries,
                   cities_per_country=cities_per_country,
                   num_organizations=num_organizations, seed=seed)


def generate_knowledge_graph(config: KGConfig | None = None) -> PropertyGraph:
    """Generate the clean knowledge graph described in the module docstring."""
    config = config or KGConfig()
    rng = ensure_rng(config.seed)
    graph = PropertyGraph(name="synthetic-kg")

    def edge(source: str, target: str, label: str) -> None:
        graph.add_edge(source, target, label, {"confidence": CLEAN_CONFIDENCE})

    # Countries and cities -------------------------------------------------
    country_ids: list[str] = []
    city_ids: list[str] = []
    city_country: dict[str, str] = {}
    for country_index in range(config.num_countries):
        country = graph.add_node(KG["COUNTRY"], {
            "name": f"Country-{country_index}",
            "continent": CONTINENTS[country_index % len(CONTINENTS)],
        })
        country_ids.append(country.id)
        for city_index in range(config.cities_per_country):
            city = graph.add_node(KG["CITY"], {
                "name": f"City-{country_index}-{city_index}",
                "population": int(10_000 * (1 + rng.random() * 500)),
            })
            city_ids.append(city.id)
            city_country[city.id] = country.id
            edge(city.id, country.id, KG["IN_COUNTRY"])
            if city_index == 0:
                edge(city.id, country.id, KG["CAPITAL_OF"])

    # Organizations ---------------------------------------------------------
    organization_ids: list[str] = []
    for org_index in range(config.num_organizations):
        organization = graph.add_node(KG["ORG"], {
            "name": f"Org-{org_index}",
            "founded": 1900 + rng.randrange(0, 120),
        })
        organization_ids.append(organization.id)
        headquarters = rng.choice(city_ids)
        edge(organization.id, headquarters, KG["HQ_IN"])
        edge(organization.id, city_country[headquarters], KG["BASED_IN"])

    # Persons ---------------------------------------------------------------
    city_weights = zipf_weights(len(city_ids), 0.9)
    for person_index in range(config.num_persons):
        given = GIVEN_NAMES[person_index % len(GIVEN_NAMES)]
        family = FAMILY_NAMES[(person_index // len(GIVEN_NAMES)) % len(FAMILY_NAMES)]
        person = graph.add_node(KG["PERSON"], {
            "name": f"{given} {family} {person_index}",
            "birthYear": 1900 + rng.randrange(0, 105),
        })
        birth_city = rng.choices(city_ids, weights=city_weights, k=1)[0]
        edge(person.id, birth_city, KG["BORN_IN"])
        edge(person.id, city_country[birth_city], KG["NATIONALITY"])
        residence_city = rng.choices(city_ids, weights=city_weights, k=1)[0]
        edge(person.id, residence_city, KG["LIVES_IN"])
        if organization_ids and rng.random() < config.employment_probability:
            edge(person.id, rng.choice(organization_ids), KG["WORKS_FOR"])

    return graph


def knowledge_graph_error_profile() -> ErrorProfile:
    """Where errors can be injected so the KG rule library can repair them."""
    return ErrorProfile(
        removable_edge_labels=(KG["NATIONALITY"], KG["BASED_IN"]),
        functional_edge_labels=((KG["BORN_IN"], KG["CITY"]),),
        inverse_functional_edge_labels=((KG["CAPITAL_OF"], KG["CITY"]),),
        self_loop_forbidden_labels=(),
        duplicatable_node_labels=((KG["PERSON"], KG["BORN_IN"]),),
        duplicatable_edge_labels=(KG["LIVES_IN"],),
    )
