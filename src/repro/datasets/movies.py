"""Synthetic movie-catalogue graph.

A second evaluation domain (the paper's intro motivates cleaning of
entity-centric catalogues as well as encyclopedic KGs).  The clean graph
satisfies every rule of :func:`repro.rules.library.movie_rules`:

* every ``Movie`` is produced by exactly one ``Studio`` and released in
  exactly one ``Year``;
* every director has both a ``directed`` and a ``workedOn`` edge to their
  movie (actors only get ``actedIn``, so every ``workedOn`` edge in the clean
  graph is derivable from ``directed`` — which is what makes deleting one a
  repairable incompleteness error);
* sequels (``sequelOf``) carry every genre of the movie they continue;
* titles are unique, so the duplicate-movie redundancy rule is quiet on clean
  data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors.injector import ErrorProfile
from repro.graph.property_graph import PropertyGraph
from repro.rules.library import MOVIES
from repro.utils.rng import ensure_rng, zipf_weights

CLEAN_CONFIDENCE = 1.0

GENRE_NAMES = ("Drama", "Comedy", "Action", "SciFi", "Documentary", "Horror",
               "Romance", "Thriller", "Animation", "Western")


@dataclass(frozen=True)
class MovieConfig:
    """Size knobs of the movie-catalogue generator."""

    num_movies: int = 150
    num_people: int = 120
    num_studios: int = 10
    num_genres: int = 8
    first_year: int = 1970
    last_year: int = 2025
    sequel_probability: float = 0.2
    actors_per_movie: tuple[int, int] = (2, 5)
    genres_per_movie: tuple[int, int] = (1, 3)
    seed: int | random.Random | None = 0

    @classmethod
    def scaled(cls, num_movies: int, seed: int | random.Random | None = 0) -> "MovieConfig":
        return cls(num_movies=num_movies,
                   num_people=max(10, int(num_movies * 0.8)),
                   num_studios=max(3, num_movies // 15),
                   num_genres=min(len(GENRE_NAMES), max(4, num_movies // 20)),
                   seed=seed)


def generate_movie_graph(config: MovieConfig | None = None) -> PropertyGraph:
    """Generate the clean movie catalogue described in the module docstring."""
    config = config or MovieConfig()
    rng = ensure_rng(config.seed)
    graph = PropertyGraph(name="synthetic-movies")

    def edge(source: str, target: str, label: str) -> None:
        graph.add_edge(source, target, label, {"confidence": CLEAN_CONFIDENCE})

    studio_ids = [graph.add_node(MOVIES["STUDIO"], {"name": f"Studio-{index}"}).id
                  for index in range(config.num_studios)]
    genre_ids = [graph.add_node(MOVIES["GENRE"],
                                {"name": GENRE_NAMES[index % len(GENRE_NAMES)]
                                 + ("" if index < len(GENRE_NAMES) else f"-{index}")}).id
                 for index in range(config.num_genres)]
    year_ids = {year: graph.add_node(MOVIES["YEAR"], {"value": year}).id
                for year in range(config.first_year, config.last_year + 1)}
    person_ids = [graph.add_node(MOVIES["PERSON"], {"name": f"Filmmaker-{index}"}).id
                  for index in range(config.num_people)]

    studio_weights = zipf_weights(len(studio_ids), 1.0)
    person_weights = zipf_weights(len(person_ids), 0.7)

    movie_records: list[tuple[str, list[str]]] = []  # (movie id, genre ids)
    for movie_index in range(config.num_movies):
        movie = graph.add_node(MOVIES["MOVIE"], {
            "title": f"Movie-{movie_index}",
            "runtime": 80 + rng.randrange(0, 100),
        })
        studio = rng.choices(studio_ids, weights=studio_weights, k=1)[0]
        edge(movie.id, studio, MOVIES["PRODUCED_BY"])
        year = rng.randrange(config.first_year, config.last_year + 1)
        edge(movie.id, year_ids[year], MOVIES["RELEASED_IN"])

        # Genres: either fresh, or (for sequels) a superset of the base movie's.
        genre_count = rng.randint(*config.genres_per_movie)
        genres = set(rng.sample(genre_ids, min(genre_count, len(genre_ids))))
        if movie_records and rng.random() < config.sequel_probability:
            base_id, base_genres = rng.choice(movie_records)
            edge(movie.id, base_id, MOVIES["SEQUEL_OF"])
            genres.update(base_genres)
        for genre in sorted(genres):
            edge(movie.id, genre, MOVIES["HAS_GENRE"])

        # Director gets both credits; actors only actedIn.
        director = rng.choices(person_ids, weights=person_weights, k=1)[0]
        edge(director, movie.id, MOVIES["DIRECTED"])
        edge(director, movie.id, MOVIES["WORKED_ON"])
        actor_count = rng.randint(*config.actors_per_movie)
        for actor in rng.sample(person_ids, min(actor_count, len(person_ids))):
            if actor != director:
                edge(actor, movie.id, MOVIES["ACTED_IN"])

        movie_records.append((movie.id, sorted(genres)))

    return graph


def _removable_movie_edge(graph: PropertyGraph, edge) -> bool:
    """Restrict incompleteness injection to edges the movie rules can re-derive."""
    if edge.label == MOVIES["WORKED_ON"]:
        # re-derivable iff the person also directed the movie
        return graph.has_edge_between(edge.source, edge.target, MOVIES["DIRECTED"])
    if edge.label == MOVIES["HAS_GENRE"]:
        # re-derivable iff the movie is a sequel of a movie with the same genre
        for sequel_edge in graph.out_edges_with_label(edge.source, MOVIES["SEQUEL_OF"]):
            if graph.has_edge_between(sequel_edge.target, edge.target, MOVIES["HAS_GENRE"]):
                return True
        return False
    return True


def movie_error_profile() -> ErrorProfile:
    """Where errors can be injected so the movie rule library can repair them."""
    return ErrorProfile(
        removable_edge_labels=(MOVIES["WORKED_ON"], MOVIES["HAS_GENRE"]),
        functional_edge_labels=((MOVIES["RELEASED_IN"], MOVIES["YEAR"]),
                                (MOVIES["PRODUCED_BY"], MOVIES["STUDIO"])),
        inverse_functional_edge_labels=(),
        self_loop_forbidden_labels=(),
        duplicatable_node_labels=((MOVIES["MOVIE"], MOVIES["PRODUCED_BY"]),),
        duplicatable_edge_labels=(MOVIES["HAS_GENRE"],),
        removable_edge_filter=_removable_movie_edge,
    )
