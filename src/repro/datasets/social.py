"""Synthetic social-network graph.

The third evaluation domain: user accounts, groups, posts, likes, and
follower relationships, with the duplicate-account problem the redundancy
semantics targets.  The clean graph satisfies every rule of
:func:`repro.rules.library.social_rules`:

* every ``Post`` has exactly one author;
* nobody follows themselves;
* whenever a user likes somebody else's post, they also follow the author
  (so the like-implies-follow incompleteness rule is satisfied, and deleting
  such a ``follows`` edge is a repairable error);
* usernames and e-mail addresses are unique, so the duplicate-account rule is
  quiet on clean data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors.injector import ErrorProfile
from repro.graph.property_graph import PropertyGraph
from repro.rules.library import SOCIAL
from repro.utils.rng import ensure_rng, zipf_weights

CLEAN_CONFIDENCE = 1.0


@dataclass(frozen=True)
class SocialConfig:
    """Size knobs of the social-network generator."""

    num_users: int = 150
    num_groups: int = 12
    posts_per_user: tuple[int, int] = (0, 3)
    likes_per_user: tuple[int, int] = (1, 6)
    extra_follows_per_user: tuple[int, int] = (0, 3)
    groups_per_user: tuple[int, int] = (1, 3)
    seed: int | random.Random | None = 0

    @classmethod
    def scaled(cls, num_users: int, seed: int | random.Random | None = 0) -> "SocialConfig":
        return cls(num_users=num_users, num_groups=max(3, num_users // 12), seed=seed)


def generate_social_graph(config: SocialConfig | None = None) -> PropertyGraph:
    """Generate the clean social network described in the module docstring."""
    config = config or SocialConfig()
    rng = ensure_rng(config.seed)
    graph = PropertyGraph(name="synthetic-social")

    def edge(source: str, target: str, label: str) -> None:
        graph.add_edge(source, target, label, {"confidence": CLEAN_CONFIDENCE})

    group_ids = [graph.add_node(SOCIAL["GROUP"], {"name": f"Group-{index}"}).id
                 for index in range(config.num_groups)]

    user_ids: list[str] = []
    for user_index in range(config.num_users):
        user = graph.add_node(SOCIAL["USER"], {
            "username": f"user{user_index}",
            "email": f"user{user_index}@example.org",
        })
        user_ids.append(user.id)
        for group in rng.sample(group_ids,
                                min(rng.randint(*config.groups_per_user), len(group_ids))):
            edge(user.id, group, SOCIAL["MEMBER_OF"])

    # Posts ------------------------------------------------------------------
    post_author: dict[str, str] = {}
    post_ids: list[str] = []
    post_counter = 0
    for user_id in user_ids:
        for _ in range(rng.randint(*config.posts_per_user)):
            post = graph.add_node(SOCIAL["POST"], {
                "post_id": f"post-{post_counter}",
                "length": rng.randrange(10, 500),
            })
            post_counter += 1
            post_ids.append(post.id)
            post_author[post.id] = user_id
            edge(user_id, post.id, SOCIAL["AUTHORED"])

    # Likes, and the follows edges they imply ---------------------------------
    follows: set[tuple[str, str]] = set()
    if post_ids:
        popularity = zipf_weights(len(post_ids), 1.0)
        for user_id in user_ids:
            liked = set()
            for _ in range(rng.randint(*config.likes_per_user)):
                post = rng.choices(post_ids, weights=popularity, k=1)[0]
                if post in liked:
                    continue
                liked.add(post)
                edge(user_id, post, SOCIAL["LIKES"])
                author = post_author[post]
                if author != user_id and (user_id, author) not in follows:
                    follows.add((user_id, author))
                    edge(user_id, author, SOCIAL["FOLLOWS"])

    # Extra organic follows (not implied by likes, never self-follows) --------
    for user_id in user_ids:
        for _ in range(rng.randint(*config.extra_follows_per_user)):
            other = rng.choice(user_ids)
            if other == user_id or (user_id, other) in follows:
                continue
            follows.add((user_id, other))
            edge(user_id, other, SOCIAL["FOLLOWS"])

    return graph


def _removable_social_edge(graph: PropertyGraph, edge) -> bool:
    """A ``follows`` edge is re-derivable iff the follower likes a post of the followee."""
    if edge.label != SOCIAL["FOLLOWS"]:
        return True
    for like in graph.out_edges_with_label(edge.source, SOCIAL["LIKES"]):
        if graph.has_edge_between(edge.target, like.target, SOCIAL["AUTHORED"]):
            return True
    return False


def social_error_profile() -> ErrorProfile:
    """Where errors can be injected so the social rule library can repair them."""
    return ErrorProfile(
        removable_edge_labels=(SOCIAL["FOLLOWS"],),
        functional_edge_labels=(),
        inverse_functional_edge_labels=((SOCIAL["AUTHORED"], SOCIAL["USER"]),),
        self_loop_forbidden_labels=(SOCIAL["FOLLOWS"],),
        duplicatable_node_labels=((SOCIAL["USER"], SOCIAL["MEMBER_OF"]),),
        duplicatable_edge_labels=(SOCIAL["LIKES"],),
        removable_edge_filter=_removable_social_edge,
    )
