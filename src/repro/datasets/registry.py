"""Dataset registry: one place the experiments and examples load workloads from.

A *domain* bundles a clean-graph generator, the matching canned rule library,
and the error profile the injector needs.  ``load_dataset("kg", scale=1000)``
returns everything an experiment needs to build a workload: the clean graph,
the rules, and the profile; ``build_workload`` additionally runs the error
injector and returns the dirty graph plus ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.errors.ground_truth import GroundTruth
from repro.errors.injector import ErrorProfile, inject_errors
from repro.exceptions import DatasetError
from repro.graph.property_graph import PropertyGraph
from repro.rules.grr import RuleSet
from repro.rules.library import knowledge_graph_rules, movie_rules, social_rules
from repro.datasets.knowledge_graph import KGConfig, generate_knowledge_graph, \
    knowledge_graph_error_profile
from repro.datasets.movies import MovieConfig, generate_movie_graph, movie_error_profile
from repro.datasets.social import SocialConfig, generate_social_graph, social_error_profile


@dataclass(frozen=True)
class Domain:
    """A registered evaluation domain."""

    name: str
    description: str
    generate: Callable[[int, int | random.Random | None], PropertyGraph]
    rules: Callable[[], RuleSet]
    error_profile: Callable[[], ErrorProfile]


def _generate_kg(scale: int, seed) -> PropertyGraph:
    return generate_knowledge_graph(KGConfig.scaled(scale, seed=seed))


def _generate_movies(scale: int, seed) -> PropertyGraph:
    return generate_movie_graph(MovieConfig.scaled(scale, seed=seed))


def _generate_social(scale: int, seed) -> PropertyGraph:
    return generate_social_graph(SocialConfig.scaled(scale, seed=seed))


DOMAINS: dict[str, Domain] = {
    "kg": Domain(
        name="kg",
        description="people/geography knowledge graph (stands in for YAGO/DBpedia)",
        generate=_generate_kg,
        rules=knowledge_graph_rules,
        error_profile=knowledge_graph_error_profile,
    ),
    "movies": Domain(
        name="movies",
        description="movie catalogue (entity-centric curation workload)",
        generate=_generate_movies,
        rules=movie_rules,
        error_profile=movie_error_profile,
    ),
    "social": Domain(
        name="social",
        description="social network with duplicate accounts",
        generate=_generate_social,
        rules=social_rules,
        error_profile=social_error_profile,
    ),
}


@dataclass
class DatasetInstance:
    """A clean graph plus the rules and error profile of its domain."""

    domain: str
    clean: PropertyGraph
    rules: RuleSet
    error_profile: ErrorProfile


@dataclass
class Workload:
    """A full evaluation workload: clean graph, dirty graph, and ground truth."""

    domain: str
    clean: PropertyGraph
    dirty: PropertyGraph
    ground_truth: GroundTruth
    rules: RuleSet
    error_profile: ErrorProfile
    error_rate: float
    scale: int
    seed: int


def available_domains() -> list[str]:
    return sorted(DOMAINS)


def get_domain(name: str) -> Domain:
    try:
        return DOMAINS[name]
    except KeyError:
        raise DatasetError(f"unknown domain {name!r}; available: {available_domains()}") from None


def load_dataset(domain: str, scale: int = 200, seed: int = 0) -> DatasetInstance:
    """Generate the clean graph of ``domain`` at the given scale."""
    spec = get_domain(domain)
    clean = spec.generate(scale, seed)
    return DatasetInstance(domain=domain, clean=clean, rules=spec.rules(),
                           error_profile=spec.error_profile())


def build_workload(domain: str, scale: int = 200, error_rate: float = 0.05,
                   seed: int = 0,
                   mix: dict[str, float] | None = None) -> Workload:
    """Generate a clean graph, corrupt it, and return the full workload."""
    instance = load_dataset(domain, scale=scale, seed=seed)
    dirty, truth = inject_errors(instance.clean, instance.error_profile,
                                 error_rate=error_rate, mix=mix, seed=seed + 1)
    return Workload(domain=domain, clean=instance.clean, dirty=dirty,
                    ground_truth=truth, rules=instance.rules,
                    error_profile=instance.error_profile, error_rate=error_rate,
                    scale=scale, seed=seed)
