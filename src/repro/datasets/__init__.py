"""Synthetic evaluation datasets and workload construction (system S7 in
DESIGN.md)."""

from repro.datasets.knowledge_graph import (
    KGConfig,
    generate_knowledge_graph,
    knowledge_graph_error_profile,
)
from repro.datasets.movies import MovieConfig, generate_movie_graph, movie_error_profile
from repro.datasets.registry import (
    DOMAINS,
    DatasetInstance,
    Domain,
    Workload,
    available_domains,
    build_workload,
    get_domain,
    load_dataset,
)
from repro.datasets.rulegen import RuleGenConfig, generate_rules
from repro.datasets.social import SocialConfig, generate_social_graph, social_error_profile

__all__ = [
    "KGConfig",
    "generate_knowledge_graph",
    "knowledge_graph_error_profile",
    "MovieConfig",
    "generate_movie_graph",
    "movie_error_profile",
    "SocialConfig",
    "generate_social_graph",
    "social_error_profile",
    "RuleGenConfig",
    "generate_rules",
    "Domain",
    "DOMAINS",
    "DatasetInstance",
    "Workload",
    "available_domains",
    "get_domain",
    "load_dataset",
    "build_workload",
]
