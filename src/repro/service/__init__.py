"""``repro.service`` — the concurrent multi-session service API.

The package is the deployment-facing layer above :mod:`repro.api`:

* :class:`SessionManager` — a thread-safe registry of named, long-lived
  :class:`~repro.api.RepairSession` objects;
* :class:`GraphRepairService` — the façade a long-running process embeds:
  many tenants served concurrently, partitioned tenants repaired through a
  shared persistent :class:`~repro.parallel.pool.WorkerPool` (warm shard
  replicas, committed-delta shipping), staged edits routed to the owning
  session, and every tenant's committed history exposed as a subscribable
  changefeed.

Durable tenants (``serve(..., durable=DurabilityConfig(dir=...))`` /
``restore(...)``) persist through :mod:`repro.durability` — write-ahead
log, periodic snapshots, crash recovery, and cross-process read replicas.

See ``docs/SERVICE.md`` for the threading contract, the session lifecycle,
the changefeed format, and the warm-pool behaviour, and
``docs/DURABILITY.md`` for the on-disk formats and the crash-safety
contract.
"""

from repro.durability import DurabilityConfig
from repro.service.manager import SessionManager
from repro.service.service import GraphRepairService, TenantStaleness

__all__ = ["DurabilityConfig", "GraphRepairService", "SessionManager",
           "TenantStaleness"]
