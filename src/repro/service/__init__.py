"""``repro.service`` — the concurrent multi-session service API.

The package is the deployment-facing layer above :mod:`repro.api`:

* :class:`SessionManager` — a thread-safe registry of named, long-lived
  :class:`~repro.api.RepairSession` objects;
* :class:`GraphRepairService` — the façade a long-running process embeds:
  many tenants served concurrently, partitioned tenants repaired through a
  shared persistent :class:`~repro.parallel.pool.WorkerPool` (warm shard
  replicas, committed-delta shipping), staged edits routed to the owning
  session, and every tenant's committed history exposed as a subscribable
  changefeed.

See ``docs/SERVICE.md`` for the threading contract, the session lifecycle,
the changefeed format, and the warm-pool behaviour.
"""

from repro.service.manager import SessionManager
from repro.service.service import GraphRepairService

__all__ = ["GraphRepairService", "SessionManager"]
