"""Thread-safe registry of named repair sessions.

:class:`SessionManager` owns many long-lived :class:`~repro.api.RepairSession`
objects, addressed by name.  The manager's lock only guards the *registry*
(open / lookup / close); the sessions themselves are concurrency-safe per
their own threading contract, so looked-up sessions are used without holding
any manager state — N threads operating on N different sessions never
serialise against each other here.
"""

from __future__ import annotations

import threading
from typing import Iterator

from repro.exceptions import ServiceError
from repro.graph.property_graph import PropertyGraph
from repro.rules.grr import GraphRepairingRule, RuleSet
from repro.api.config import RepairConfig
from repro.api.events import SessionEvents
from repro.api.session import RepairSession


class SessionManager:
    """Named, thread-safe session registry (the service's session store)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sessions: dict[str, RepairSession] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------

    def open(self, name: str, graph: PropertyGraph,
             rules: RuleSet | list[GraphRepairingRule],
             config: RepairConfig | None = None,
             events: SessionEvents | None = None,
             pool=None) -> RepairSession:
        """Open a new named session; names are unique while open."""
        session = None
        with self._lock:
            self._require_open()
            if name in self._sessions:
                raise ServiceError(f"a session named {name!r} is already open")
            # reserve the name before the (potentially slow) session build so
            # two concurrent opens of the same name fail fast; replaced below
            self._sessions[name] = None  # type: ignore[assignment]
        try:
            session = RepairSession(graph, rules, config=config, events=events,
                                    pool=pool)
        finally:
            with self._lock:
                if session is None:
                    self._sessions.pop(name, None)
                else:
                    self._sessions[name] = session
        return session

    def get(self, name: str) -> RepairSession:
        with self._lock:
            self._require_open()
            session = self._sessions.get(name)
        if session is None:
            raise ServiceError(f"no open session named {name!r}")
        return session

    def names(self) -> list[str]:
        """The open session names, sorted (a deterministic iteration order)."""
        with self._lock:
            return sorted(name for name, session in self._sessions.items()
                          if session is not None)

    def __len__(self) -> int:
        return len(self.names())

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return self._sessions.get(name) is not None  # type: ignore[arg-type]

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close_session(self, name: str) -> None:
        """Close one session and release its name."""
        with self._lock:
            self._require_open()
            session = self._sessions.pop(name, None)
        if session is None:
            raise ServiceError(f"no open session named {name!r}")
        session.close()

    def close(self) -> None:
        """Close every session; the manager becomes inert.  Idempotent.

        Every session's close is attempted even when an earlier one raises
        (a half-closed manager would leak the remaining sessions' backends
        and their graph-feed listeners); the first failure is re-raised
        after the sweep.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions = [session for session in self._sessions.values()
                        if session is not None]
            self._sessions.clear()
        errors: list[BaseException] = []
        for session in sessions:
            try:
                session.close()
            except BaseException as exc:
                errors.append(exc)
        if errors:
            raise errors[0]

    @property
    def closed(self) -> bool:
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceError("the session manager is closed")

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
