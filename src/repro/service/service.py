"""The managed, multi-session repair service façade.

A :class:`GraphRepairService` is what a long-running deployment embeds: it
owns many named :class:`~repro.api.RepairSession` objects (one per served
graph — a *tenant*), a single shared :class:`~repro.parallel.pool.WorkerPool`
that sharded tenants keep warm across repair calls, and the routing glue
that turns "here is an edit" into "the owning session staged and committed
it".

Layering: the service only *composes* the public session API — every
operation lands on a session exactly as a direct caller's would, so a
service-mediated workload is replayable through bare sessions (and the
concurrent-equivalence suite pins that).  Concurrency comes from the
sessions' own locks: N threads hitting N tenants run fully in parallel;
N threads hitting one tenant serialise on that tenant's session lock alone.

Example::

    from repro.service import GraphRepairService

    with GraphRepairService() as service:
        service.serve("kg", kg_graph, kg_rules, shards=4)
        service.serve("movies", movie_graph, movie_rules)
        service.stage("kg", lambda g: g.add_edge(a, b, "bornIn"))
        service.commit("kg")
        reports = service.repair_all()       # deterministic tenant order
        feed = service.deltas("kg")          # committed-delta changefeed
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro import telemetry
from repro.exceptions import ServiceError
from repro.graph.delta import GraphDelta
from repro.graph.property_graph import PropertyGraph
from repro.repair.report import RepairReport
from repro.rules.grr import GraphRepairingRule, RuleSet
from repro.api.config import RepairConfig
from repro.api.events import CommitResult, CommittedDelta, SessionEvents
from repro.api.session import RepairSession
from repro.durability import (
    DurabilityConfig,
    RecoveredTenant,
    TenantDurability,
    has_tenant_state,
    recover,
)
from repro.service.manager import SessionManager


@dataclass(frozen=True)
class TenantStaleness:
    """One tenant's dirty/staleness accounting at a point in time.

    ``pending_deltas`` counts the committed changefeed records no repair
    pass has covered yet (0 = fully reconciled); ``seconds_since_repair``
    is the age of the last service-level repair (measured from ``serve``
    when the tenant was never repaired).  The ingest scheduler's priority
    score is computed from exactly these two numbers, and
    :meth:`GraphRepairService.telemetry_snapshot` refreshes the matching
    ``repro_tenant_staleness_seconds`` / ``repro_tenant_pending_deltas``
    gauges from them on every scrape.
    """

    name: str
    pending_deltas: int
    seconds_since_repair: float
    repaired_through: int
    last_sequence: int
    repairs: int
    recovered_dirty: bool = False

    @property
    def dirty(self) -> bool:
        """True when any repair work is owed: unreconciled commits, or a
        restore whose WAL could not prove the tenant clean (uncertain
        recovery state counts as dirty, never as clean)."""
        return self.pending_deltas > 0 or self.recovered_dirty


class _TenantActivity:
    """Per-tenant repair-coverage bookkeeping (internal; lock-free reads
    are fine — all fields are monotone and independently meaningful)."""

    __slots__ = ("served_at", "last_repair_monotonic", "repaired_through",
                 "repairs", "recovered_dirty", "unsubscribe")

    def __init__(self) -> None:
        self.served_at = time.monotonic()
        self.last_repair_monotonic: float | None = None
        self.repaired_through = 0
        self.repairs = 0
        self.recovered_dirty = False
        self.unsubscribe = None

    def on_record(self, record) -> None:
        """Changefeed hook: a published ``"repair"`` record proves every
        record at or below its sequence is reconciled (sequences are
        assigned under the session lock the repair held throughout)."""
        if record.source == "repair":
            self.repaired_through = max(self.repaired_through,
                                        record.sequence)
            self.last_repair_monotonic = time.monotonic()
            self.repairs += 1
            self.recovered_dirty = False

    def mark_repaired(self, through_sequence: int) -> None:
        """A repair pass completed that covered ``through_sequence`` even
        if it published no record (nothing needed fixing) — the staleness
        clock resets either way, and any recovered-dirty doubt is settled
        (the repair drove the *current* graph to a fixpoint)."""
        self.repaired_through = max(self.repaired_through, through_sequence)
        self.last_repair_monotonic = time.monotonic()
        self.recovered_dirty = False


class GraphRepairService:
    """Concurrent multi-session repair over many named, partitioned graphs.

    ``pool_workers`` fixes the shared warm pool's process count; the default
    ``0`` sizes it to the first sharded tenant's ``workers``.
    ``inline_pool=True`` runs the pool's state machine in-process (no
    spawned workers — tests, single-CPU hosts).
    """

    def __init__(self, pool_workers: int = 0, inline_pool: bool = False) -> None:
        self.sessions = SessionManager()
        self._pool = None
        self._pool_workers = pool_workers
        self._inline_pool = inline_pool
        self._lock = threading.Lock()
        self._closed = False
        self._durability: dict[str, TenantDurability] = {}
        self._recoveries: dict[str, RecoveredTenant] = {}
        self._activity: dict[str, _TenantActivity] = {}
        self._metrics_server = None

    # ------------------------------------------------------------------
    # serving tenants
    # ------------------------------------------------------------------

    def serve(self, name: str, graph: PropertyGraph,
              rules: RuleSet | list[GraphRepairingRule],
              config: RepairConfig | None = None,
              events: SessionEvents | None = None,
              shards: int = 0,
              durable: DurabilityConfig | None = None) -> RepairSession:
        """Open a named session over ``graph`` and start serving it.

        ``shards=K`` (with no explicit config) serves the graph partitioned:
        the session runs the warm sharded backend — K rule-radius-aware
        shards (:mod:`repro.parallel.partition`) with standing replicas in
        the shared worker pool, committed deltas shipped to the shards that
        own the edited nodes, and a deterministic cross-shard settle through
        the :class:`~repro.parallel.merge.DeltaMerger`.  An explicit sharded
        ``config`` with ``warm_pool=True`` joins the shared pool likewise.

        ``durable=DurabilityConfig(dir=...)`` makes the tenant crash-safe:
        an opening snapshot is written, and every committed record is
        appended (and fsync'd) to the tenant's write-ahead log *before* the
        committing call returns — see :mod:`repro.durability`.  Serving a
        name that already has durable state under ``dir`` raises; bring it
        back with :meth:`restore` instead (or point at a fresh directory).

        The session repairs **in place** (pass ``graph.copy()`` to keep the
        original), exactly like opening it directly.
        """
        self._require_open()
        if durable is not None and has_tenant_state(durable, name):
            raise ServiceError(
                f"tenant {name!r} already has durable state under "
                f"{durable.tenant_dir(name)}; restore() it instead of "
                "serving a fresh graph over it")
        sink = None
        if durable is not None:
            sink = TenantDurability(name, durable)
            sink.bootstrap(graph)
        try:
            session = self._open_session(name, graph, rules, config=config,
                                         events=events, shards=shards)
        except BaseException:
            if sink is not None:
                sink.close()
            raise
        if sink is not None:
            sink.attach(session)
            self._durability[name] = sink
        self._register_activity(name, session)
        return session

    def _register_activity(self, name: str, session: RepairSession,
                           recovered_dirty: bool = False) -> None:
        activity = _TenantActivity()
        # The restored session's changefeed restarts at 0 (recovered
        # records were replayed onto the graph, not into the new feed), so
        # recovered-but-unrepaired state can't show up as pending_deltas.
        # restore() flags it instead: unless the WAL proved the tenant
        # clean, it stays dirty until the first post-restore repair.
        activity.recovered_dirty = recovered_dirty
        activity.unsubscribe = session.on_commit(activity.on_record)
        self._activity[name] = activity

    def _open_session(self, name: str, graph: PropertyGraph,
                      rules: RuleSet | list[GraphRepairingRule],
                      config: RepairConfig | None = None,
                      events: SessionEvents | None = None,
                      shards: int = 0) -> RepairSession:
        if shards:
            if config is not None:
                raise ServiceError("pass either shards= or an explicit "
                                   "config, not both")
            config = RepairConfig.sharded(workers=shards, warm=True,
                                          parallel_inline=self._inline_pool)
        pool = None
        if config is not None and config.backend == "sharded" \
                and config.warm_pool:
            pool = self._ensure_pool(config.workers)
        return self.sessions.open(name, graph, rules, config=config,
                                  events=events, pool=pool)

    def restore(self, name: str,
                rules: RuleSet | list[GraphRepairingRule],
                durable: DurabilityConfig,
                config: RepairConfig | None = None,
                events: SessionEvents | None = None,
                shards: int = 0) -> RepairSession:
        """Bring a crashed (or cleanly stopped) durable tenant back.

        Recovers the graph from its newest intact snapshot plus exact WAL
        replay (:func:`repro.durability.recover`), opens a fresh session
        over it, and re-attaches the durable sink at the recovered global
        sequence — new commits continue the same log.  The recovery
        details (restore point, records replayed) stay readable through
        :meth:`recovery_info`.
        """
        self._require_open()
        recovered = recover(name, durable)
        sink = TenantDurability(name, durable,
                                base_sequence=recovered.sequence)
        try:
            session = self._open_session(name, recovered.graph, rules,
                                         config=config, events=events,
                                         shards=shards)
        except BaseException:
            sink.close()
            raise
        sink.attach(session)
        self._durability[name] = sink
        self._recoveries[name] = recovered
        self._register_activity(name, session,
                                recovered_dirty=not recovered.known_clean)
        return session

    def _ensure_pool(self, workers: int):
        from repro.parallel.pool import WorkerPool

        with self._lock:
            if self._pool is None:
                self._pool = WorkerPool(self._pool_workers or workers,
                                        inline=self._inline_pool)
            return self._pool

    def session(self, name: str) -> RepairSession:
        """The named tenant's session (the full session API, directly)."""
        return self.sessions.get(name)

    def graph(self, name: str) -> PropertyGraph:
        return self.sessions.get(name).graph

    def names(self) -> list[str]:
        return self.sessions.names()

    def durability(self, name: str) -> TenantDurability:
        """The named tenant's durable sink (raises for non-durable tenants)."""
        sink = self._durability.get(name)
        if sink is None:
            raise ServiceError(f"tenant {name!r} is not served durably")
        return sink

    def recovery_info(self, name: str) -> RecoveredTenant:
        """The :class:`RecoveredTenant` of the last :meth:`restore` of
        ``name`` in this service's lifetime (raises if never restored)."""
        recovered = self._recoveries.get(name)
        if recovered is None:
            raise ServiceError(f"tenant {name!r} was not restored here")
        return recovered

    def stop_serving(self, name: str) -> None:
        """Close one tenant's session (and durable sink), release its name.

        The durable state on disk stays — :meth:`restore` brings the tenant
        back.  The sink closes even when the session's close raises.
        """
        try:
            self.sessions.close_session(name)
        finally:
            self._activity.pop(name, None)
            sink = self._durability.pop(name, None)
            if sink is not None:
                sink.close()

    # ------------------------------------------------------------------
    # staged edits (routed to the owning session)
    # ------------------------------------------------------------------

    def stage(self, name: str, edit) -> GraphDelta:
        return self.sessions.get(name).stage(edit)

    def commit(self, name: str) -> CommitResult:
        return self.sessions.get(name).commit()

    def rollback(self, name: str) -> GraphDelta:
        return self.sessions.get(name).rollback()

    def apply(self, name: str, edit) -> CommitResult:
        return self.sessions.get(name).apply(edit)

    def route(self, delta: GraphDelta) -> str:
        """The tenant that owns every pre-existing node ``delta`` touches.

        A recorded delta (e.g. one hop of a replication log) names the nodes
        it reads and mutates; the owner is the tenant whose graph holds all
        of them.  Raises :class:`~repro.exceptions.ServiceError` when no
        tenant qualifies, or when several do (id spaces overlap — route
        explicitly by name in that deployment).
        """
        referenced = delta.touched_nodes - set(delta.added_node_ids)
        if not referenced:
            raise ServiceError("the delta references no pre-existing nodes; "
                               "route it explicitly by tenant name")
        owners = [name for name in self.sessions.names()
                  if all(self.sessions.get(name).graph.has_node(node_id)
                         for node_id in referenced)]
        if not owners:
            raise ServiceError("no served graph holds all nodes the delta "
                               f"references ({sorted(referenced)[:5]} ...)")
        if len(owners) > 1:
            raise ServiceError(f"ambiguous delta: tenants {owners} all hold "
                               "the referenced nodes; route explicitly")
        return owners[0]

    def apply_routed(self, delta: GraphDelta) -> tuple[str, CommitResult]:
        """Route a recorded delta to its owning session and apply it there."""
        with telemetry.span("service.apply_routed", changes=len(delta.changes)):
            name = self.route(delta)
            result = self.apply(name, delta)
        if telemetry.TELEMETRY.enabled:
            telemetry.inc("repro_routed_deltas_total", tenant=name)
        return name, result

    # ------------------------------------------------------------------
    # repairing
    # ------------------------------------------------------------------

    def repair(self, name: str) -> RepairReport:
        session = self.sessions.get(name)
        seq_before = session.last_sequence
        report = session.repair()
        activity = self._activity.get(name)
        if activity is not None:
            # A repair that found violations published a "repair" record and
            # on_record already advanced repaired_through past seq_before; a
            # no-op repair publishes nothing, so record the proof here: every
            # commit <= seq_before has now been reconciled.
            activity.mark_repaired(seq_before)
        return report

    def repair_all(self) -> dict[str, RepairReport]:
        """Repair every tenant, in sorted-name order (deterministic).

        Each tenant's repair is one ordinary session repair — for sharded
        tenants that is fan-out over the warm pool, merge, and the
        deterministic cross-shard settle.  Tenants are independent graphs,
        so the sequential order only fixes *pool scheduling*, never
        outcomes; callers wanting wall-clock overlap can repair tenants from
        their own threads instead.
        """
        names = self.sessions.names()
        with telemetry.span("service.repair_all", tenants=len(names)):
            return {name: self.repair(name) for name in names}

    # ------------------------------------------------------------------
    # the changefeed
    # ------------------------------------------------------------------

    def deltas(self, name: str, after: int = 0) -> list[CommittedDelta]:
        """The named tenant's committed-delta changefeed (see
        :meth:`RepairSession.deltas`)."""
        return self.sessions.get(name).deltas(after=after)

    def subscribe(self, name: str, callback) -> "callable":
        """Subscribe to one tenant's changefeed; returns the unsubscribe."""
        return self.sessions.get(name).on_commit(callback)

    def staleness(self) -> dict[str, TenantStaleness]:
        """Per-tenant dirty/staleness accounting, keyed by tenant name.

        ``pending_deltas`` counts committed changefeed records not yet
        proven reconciled by a repair (``last_sequence`` minus
        ``repaired_through``); ``seconds_since_repair`` is the wall time
        since the tenant's last repair (or since it was served, before its
        first repair).  The background scheduler orders its work by these
        numbers, and :meth:`telemetry_snapshot` exports them as gauges.
        """
        now = time.monotonic()
        out: dict[str, TenantStaleness] = {}
        for name in self.sessions.names():
            activity = self._activity.get(name)
            if activity is None:
                continue
            try:
                last_sequence = self.sessions.get(name).last_sequence
            except Exception:
                continue  # silent-ok: the tenant closed between list and read
            anchor = activity.last_repair_monotonic
            if anchor is None:
                anchor = activity.served_at
            out[name] = TenantStaleness(
                name=name,
                pending_deltas=max(0, last_sequence - activity.repaired_through),
                seconds_since_repair=max(0.0, now - anchor),
                repaired_through=activity.repaired_through,
                last_sequence=last_sequence,
                repairs=activity.repairs,
                recovered_dirty=activity.recovered_dirty,
            )
        return out

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------

    @property
    def pool(self):
        """The shared warm pool, or ``None`` before any sharded tenant."""
        return self._pool

    @property
    def pool_stats(self) -> dict[str, int]:
        """The shared pool's overhead counters (zeros before it exists)."""
        if self._pool is None:
            return {"spawns": 0, "binds": 0, "deltas_shipped": 0,
                    "shard_repairs": 0, "repair_calls": 0,
                    "leases": 0, "lease_wait_seconds": 0.0,
                    "worker_deaths": 0, "respawns": 0,
                    "command_timeouts": 0, "retries": 0,
                    "fallback_repairs": 0}
        return self._pool.stats.as_dict()

    # ------------------------------------------------------------------
    # telemetry exposition
    # ------------------------------------------------------------------

    def telemetry_snapshot(self):
        """A consistent :class:`~repro.telemetry.RegistrySnapshot` of the
        process registry, with the service's scrape-time gauges refreshed
        first: per-tenant changefeed sequence, and — for durable tenants —
        snapshot sequence and feed-sequence lag (records a crash would
        replay).  This is what ``/metrics`` renders on every scrape.
        """
        for name in self.sessions.names():
            try:
                sequence = self.sessions.get(name).last_sequence
            except Exception:
                continue  # silent-ok: the tenant closed between list and read
            telemetry.gauge_set("repro_feed_sequence", sequence, tenant=name)
            sink = self._durability.get(name)
            if sink is not None:
                telemetry.gauge_set("repro_snapshot_sequence",
                                    sink.last_snapshot_sequence, tenant=name)
                telemetry.gauge_set(
                    "repro_snapshot_age_records",
                    sink.global_sequence - sink.last_snapshot_sequence,
                    tenant=name)
                telemetry.gauge_set(
                    "repro_feed_sequence_lag",
                    sink.global_sequence - sink.last_snapshot_sequence,
                    tenant=name)
            else:
                telemetry.gauge_set("repro_feed_sequence_lag", 0, tenant=name)
        for name, stale in self.staleness().items():
            telemetry.gauge_set("repro_tenant_staleness_seconds",
                                stale.seconds_since_repair, tenant=name)
            telemetry.gauge_set("repro_tenant_pending_deltas",
                                stale.pending_deltas, tenant=name)
        pool = self._pool
        if pool is not None:
            from repro.parallel.breaker import BREAKER_STATE_VALUES

            telemetry.gauge_set("repro_pool_breaker_state",
                                BREAKER_STATE_VALUES[pool.breaker.state])
        return telemetry.TELEMETRY.registry.snapshot()

    def health(self) -> dict:
        """The ``/healthz`` document: liveness, per-tenant sequences, and —
        once the shared pool exists — its supervision counters and circuit
        breaker state, so a probe can see degradation before it can see
        failures."""
        tenants = {}
        for name in self.sessions.names():
            try:
                tenants[name] = self.sessions.get(name).last_sequence
            except Exception:
                continue  # silent-ok: the tenant closed between list and read
        document = {"status": "closed" if self._closed else "ok",
                    "tenants": tenants}
        pool = self._pool
        if pool is not None:
            stats = pool.stats
            document["pool"] = {
                "workers": pool.workers,
                "started": pool.started,
                "generation": pool.generation,
                "worker_deaths": stats.worker_deaths,
                "respawns": stats.respawns,
                "retries": stats.retries,
                "fallback_repairs": stats.fallback_repairs,
                "breaker": pool.breaker.snapshot(),
            }
        return document

    def start_metrics_server(self, host: str = "127.0.0.1", port: int = 0):
        """Start the opt-in Prometheus endpoint (and enable telemetry).

        Serves ``/metrics`` (text exposition 0.0.4) and ``/healthz`` on a
        stdlib HTTP daemon thread until :meth:`close`.  ``port=0`` picks a
        free port — read it back from the returned server's ``.port``.
        """
        from repro.telemetry.exposition import TelemetryServer

        self._require_open()
        if self._metrics_server is not None:
            raise ServiceError("the metrics server is already running on "
                               f"{self._metrics_server.url}")
        telemetry.enable()
        self._metrics_server = TelemetryServer(self.telemetry_snapshot,
                                               health_provider=self.health,
                                               host=host, port=port)
        return self._metrics_server

    @property
    def metrics_server(self):
        """The running telemetry endpoint, or ``None``."""
        return self._metrics_server

    def close(self) -> None:
        """Close every session, every durable sink, then the shared pool.

        Idempotent — and *complete*: a failing stage never short-circuits
        the later ones, so the worker pool's child processes are reclaimed
        even when a session (or sink) close raises.  The first failure is
        re-raised after everything has been torn down.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        errors: list[BaseException] = []
        if self._metrics_server is not None:
            try:
                self._metrics_server.close()
            except BaseException as exc:
                errors.append(exc)
            self._metrics_server = None
        try:
            self.sessions.close()
        except BaseException as exc:
            errors.append(exc)
        for sink in self._durability.values():
            try:
                sink.close()
            except BaseException as exc:
                errors.append(exc)
        self._durability.clear()
        if self._pool is not None:
            try:
                self._pool.close()
            except BaseException as exc:
                errors.append(exc)
            self._pool = None
        if errors:
            raise errors[0]

    @property
    def closed(self) -> bool:
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceError("the service is closed")

    def __enter__(self) -> "GraphRepairService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
