"""Descriptive statistics over property graphs.

Used by dataset generators (to verify the synthetic graphs have realistic
shape), by the experiment harness (to report workload characteristics next to
each result table), and by tests (as cheap structural invariants).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.graph.property_graph import PropertyGraph


@dataclass
class GraphStatistics:
    """A summary of a property graph's size and label/degree distributions."""

    name: str
    num_nodes: int
    num_edges: int
    node_label_counts: dict[str, int] = field(default_factory=dict)
    edge_label_counts: dict[str, int] = field(default_factory=dict)
    degree_min: int = 0
    degree_max: int = 0
    degree_mean: float = 0.0
    num_isolated_nodes: int = 0
    num_self_loops: int = 0
    num_parallel_duplicate_edges: int = 0
    property_key_counts: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "node_label_counts": dict(self.node_label_counts),
            "edge_label_counts": dict(self.edge_label_counts),
            "degree_min": self.degree_min,
            "degree_max": self.degree_max,
            "degree_mean": self.degree_mean,
            "num_isolated_nodes": self.num_isolated_nodes,
            "num_self_loops": self.num_self_loops,
            "num_parallel_duplicate_edges": self.num_parallel_duplicate_edges,
            "property_key_counts": dict(self.property_key_counts),
        }

    def __str__(self) -> str:
        lines = [
            f"Graph {self.name!r}: {self.num_nodes} nodes, {self.num_edges} edges",
            f"  degree: min={self.degree_min} max={self.degree_max} mean={self.degree_mean:.2f}",
            f"  isolated nodes: {self.num_isolated_nodes}, self-loops: {self.num_self_loops}, "
            f"parallel duplicates: {self.num_parallel_duplicate_edges}",
            "  node labels: "
            + ", ".join(f"{label}={count}" for label, count in sorted(self.node_label_counts.items())),
            "  edge labels: "
            + ", ".join(f"{label}={count}" for label, count in sorted(self.edge_label_counts.items())),
        ]
        return "\n".join(lines)


def compute_statistics(graph: PropertyGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph`` in one pass."""
    node_labels = Counter(node.label for node in graph.nodes())
    edge_labels = Counter(edge.label for edge in graph.edges())
    property_keys: Counter[str] = Counter()
    for node in graph.nodes():
        property_keys.update(node.properties.keys())

    degrees = [graph.degree(node_id) for node_id in graph.node_ids()]
    isolated = sum(1 for degree in degrees if degree == 0)
    self_loops = sum(1 for edge in graph.edges() if edge.source == edge.target)

    seen: Counter[tuple[str, str, str]] = Counter()
    for edge in graph.edges():
        seen[(edge.source, edge.target, edge.label)] += 1
    parallel_duplicates = sum(count - 1 for count in seen.values() if count > 1)

    return GraphStatistics(
        name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        node_label_counts=dict(node_labels),
        edge_label_counts=dict(edge_labels),
        degree_min=min(degrees) if degrees else 0,
        degree_max=max(degrees) if degrees else 0,
        degree_mean=(sum(degrees) / len(degrees)) if degrees else 0.0,
        num_isolated_nodes=isolated,
        num_self_loops=self_loops,
        num_parallel_duplicate_edges=parallel_duplicates,
        property_key_counts=dict(property_keys),
    )


def degree_histogram(graph: PropertyGraph) -> dict[int, int]:
    """Map ``degree -> number of nodes with that degree``."""
    histogram: Counter[int] = Counter()
    for node_id in graph.node_ids():
        histogram[graph.degree(node_id)] += 1
    return dict(histogram)


def label_pair_histogram(graph: PropertyGraph) -> dict[tuple[str, str, str], int]:
    """Map ``(source label, edge label, target label) -> edge count``.

    The histogram approximates the implicit schema of the graph and is used by
    the random rule generator to draw realistic patterns.
    """
    histogram: Counter[tuple[str, str, str]] = Counter()
    for edge in graph.edges():
        source_label = graph.node(edge.source).label
        target_label = graph.node(edge.target).label
        histogram[(source_label, edge.label, target_label)] += 1
    return dict(histogram)


def functional_predicate_candidates(graph: PropertyGraph,
                                    tolerance: float = 0.05) -> set[str]:
    """Edge labels that behave functionally (≤ ``tolerance`` of sources have >1 out-edge).

    Functional predicates (``bornIn``, ``capitalOf``) are where conflict
    errors show up, so the error injector and the FD baseline both use this.
    """
    per_label_sources: dict[str, Counter[str]] = {}
    for edge in graph.edges():
        per_label_sources.setdefault(edge.label, Counter())[edge.source] += 1
    functional: set[str] = set()
    for label, counts in per_label_sources.items():
        if not counts:
            continue
        violating = sum(1 for count in counts.values() if count > 1)
        if violating / len(counts) <= tolerance:
            functional.add(label)
    return functional
