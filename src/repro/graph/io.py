"""Serialisation of property graphs.

Three interchange formats are supported:

* **JSON documents** — a faithful round-trip format (node/edge ids, labels,
  properties) used to persist generated datasets and repaired outputs.
* **Triples** — a flattened `(subject, predicate, object)` view.  Node
  properties become literal triples, edges become entity triples.  This is
  the representation the relational-FD baseline operates on and is the
  closest analogue to RDF dumps such as YAGO / DBpedia.
* **Edge lists** — a compact tab-separated format for quick inspection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, TextIO

from repro.exceptions import SerializationError
from repro.graph.property_graph import PropertyGraph

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# JSON documents
# ---------------------------------------------------------------------------


def graph_to_dict(graph: PropertyGraph) -> dict[str, Any]:
    """Return a JSON-serialisable dictionary representing ``graph``."""
    return {
        "format": "repro-property-graph",
        "version": FORMAT_VERSION,
        "name": graph.name,
        "nodes": [
            {"id": node.id, "label": node.label, "properties": node.properties}
            for node in graph.nodes()
        ],
        "edges": [
            {
                "id": edge.id,
                "source": edge.source,
                "target": edge.target,
                "label": edge.label,
                "properties": edge.properties,
            }
            for edge in graph.edges()
        ],
    }


def graph_from_dict(document: dict[str, Any],
                    id_namespace: str | None = None) -> PropertyGraph:
    """Rebuild a :class:`PropertyGraph` from :func:`graph_to_dict` output.

    ``id_namespace`` seeds the rebuilt graph's id generators with a disjoint
    prefix — the spawn-safe shard codec in :mod:`repro.parallel.worker` uses
    it so ids created inside a worker can never collide with the primary's.
    """
    if not isinstance(document, dict):
        raise SerializationError("graph document must be a JSON object")
    if document.get("format") != "repro-property-graph":
        raise SerializationError(
            f"unexpected document format {document.get('format')!r}")
    graph = PropertyGraph(name=document.get("name", "graph"),
                          id_namespace=id_namespace)
    for node_doc in document.get("nodes", []):
        try:
            graph.add_node(node_doc["label"], node_doc.get("properties", {}),
                           node_id=node_doc["id"])
        except KeyError as exc:
            raise SerializationError(f"node document missing key {exc}") from exc
    for edge_doc in document.get("edges", []):
        try:
            graph.add_edge(edge_doc["source"], edge_doc["target"], edge_doc["label"],
                           edge_doc.get("properties", {}), edge_id=edge_doc["id"])
        except KeyError as exc:
            raise SerializationError(f"edge document missing key {exc}") from exc
    return graph


def dump_json(graph: PropertyGraph, path: str | Path, indent: int | None = 2) -> None:
    """Write ``graph`` as a JSON document to ``path``."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(graph_to_dict(graph), handle, indent=indent, sort_keys=False)


def load_json(path: str | Path) -> PropertyGraph:
    """Load a graph previously written by :func:`dump_json`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        document = json.load(handle)
    return graph_from_dict(document)


def dumps_json(graph: PropertyGraph) -> str:
    """Return the JSON document of ``graph`` as a string."""
    return json.dumps(graph_to_dict(graph), sort_keys=False)


def loads_json(payload: str) -> PropertyGraph:
    """Parse a graph from a JSON string."""
    try:
        document = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return graph_from_dict(document)


# ---------------------------------------------------------------------------
# Triple view (RDF-like)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Triple:
    """A ``(subject, predicate, object)`` fact.

    ``object_is_literal`` distinguishes property triples (object is a literal
    value) from edge triples (object is a node id).
    """

    subject: str
    predicate: str
    object: Any
    object_is_literal: bool = False

    def as_tuple(self) -> tuple[str, str, Any]:
        return (self.subject, self.predicate, self.object)


TYPE_PREDICATE = "rdf:type"


def graph_to_triples(graph: PropertyGraph, include_types: bool = True) -> Iterator[Triple]:
    """Flatten a property graph into triples.

    Every node yields one ``rdf:type`` triple (unless ``include_types=False``)
    plus one literal triple per property; every edge yields one entity triple.
    Edge properties are dropped in this view (as they would be in plain RDF).
    """
    for node in graph.nodes():
        if include_types:
            yield Triple(node.id, TYPE_PREDICATE, node.label, object_is_literal=True)
        for key, value in sorted(node.properties.items()):
            yield Triple(node.id, key, value, object_is_literal=True)
    for edge in graph.edges():
        yield Triple(edge.source, edge.label, edge.target, object_is_literal=False)


def triples_to_graph(triples: Iterable[Triple], name: str = "graph") -> PropertyGraph:
    """Reassemble a property graph from triples.

    ``rdf:type`` triples set node labels; other literal triples become node
    properties; entity triples become edges.  Nodes referenced only as
    objects get the default label ``"Node"``.
    """
    graph = PropertyGraph(name=name)
    pending_edges: list[Triple] = []

    def ensure_node(node_id: str) -> None:
        if not graph.has_node(node_id):
            graph.add_node("Node", node_id=node_id)

    for triple in triples:
        if triple.object_is_literal:
            ensure_node(triple.subject)
            if triple.predicate == TYPE_PREDICATE:
                graph.relabel_node(triple.subject, str(triple.object))
            else:
                graph.update_node(triple.subject, {triple.predicate: triple.object})
        else:
            pending_edges.append(triple)

    for triple in pending_edges:
        ensure_node(triple.subject)
        ensure_node(str(triple.object))
        graph.add_edge(triple.subject, str(triple.object), triple.predicate)
    return graph


# ---------------------------------------------------------------------------
# Edge-list text format
# ---------------------------------------------------------------------------


def write_edge_list(graph: PropertyGraph, handle: TextIO) -> None:
    """Write a tab-separated edge list ``source  label  target`` plus a node header."""
    for node in graph.nodes():
        handle.write(f"# node\t{node.id}\t{node.label}\n")
    for edge in graph.edges():
        handle.write(f"{edge.source}\t{edge.label}\t{edge.target}\n")


def read_edge_list(handle: TextIO, name: str = "graph") -> PropertyGraph:
    """Read the edge-list format produced by :func:`write_edge_list`."""
    graph = PropertyGraph(name=name)
    edge_lines: list[tuple[str, str, str]] = []
    for line_no, raw_line in enumerate(handle, start=1):
        line = raw_line.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("# node\t"):
            parts = line.split("\t")
            if len(parts) != 3:
                raise SerializationError(f"malformed node line {line_no}: {line!r}")
            _, node_id, label = parts
            graph.add_node(label, node_id=node_id)
            continue
        parts = line.split("\t")
        if len(parts) != 3:
            raise SerializationError(f"malformed edge line {line_no}: {line!r}")
        edge_lines.append((parts[0], parts[1], parts[2]))
    for source, label, target in edge_lines:
        for endpoint in (source, target):
            if not graph.has_node(endpoint):
                graph.add_node("Node", node_id=endpoint)
        graph.add_edge(source, target, label)
    return graph
