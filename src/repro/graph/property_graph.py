"""The property graph: a directed, labelled multigraph with attributes.

This is the substrate every other subsystem operates on.  Design goals:

* **Multigraph** — knowledge graphs routinely contain parallel edges with
  different predicates (and, when dirty, duplicate parallel edges with the
  same predicate — exactly the redundancy errors we repair).
* **Label-indexed** — pattern matching needs fast per-label candidate lists,
  so the graph maintains node-label and edge-label indexes internally.
* **Change events** — every mutation emits a :class:`GraphChange` so that the
  candidate index and the incremental matcher can be maintained without
  rescanning the graph (the core of the paper's "efficient" algorithms).
* **Deterministic iteration** — node/edge dictionaries are insertion-ordered,
  so experiments are reproducible run to run.

The implementation is a plain adjacency-dictionary structure rather than a
networkx wrapper: we need merge-with-edge-redirection, change events, and
label indexes as first-class operations, and profiling showed a dedicated
structure is both simpler and faster for the matcher's access patterns.
Conversion to/from :mod:`networkx` is provided for interoperability.
"""

from __future__ import annotations

from sys import intern as _intern
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.exceptions import (
    DuplicateElementError,
    EdgeNotFoundError,
    GraphMutationError,
    NodeNotFoundError,
)
from repro.graph.delta import ChangeKind, ChangeListener, GraphChange
from repro.graph.elements import Edge, EdgeId, Label, Node, NodeId, Properties, merge_properties
from repro.utils.ids import IdGenerator


def _edge_spec(edge: Edge) -> dict[str, Any]:
    """Full snapshot of one edge, rich enough to recreate it exactly.

    Stored in change details of subtractive mutations so that
    :func:`repro.graph.delta.apply_inverse` can restore removed structure
    (same ids, labels, and properties) during a session rollback.
    """
    return {"id": edge.id, "source": edge.source, "target": edge.target,
            "label": edge.label, "properties": dict(edge.properties)}


class PropertyGraph:
    """A directed, labelled property multigraph."""

    def __init__(self, name: str = "graph", *, id_namespace: str | None = None) -> None:
        self.name = name
        self.id_namespace = id_namespace
        self._nodes: dict[NodeId, Node] = {}
        self._edges: dict[EdgeId, Edge] = {}
        # adjacency: node id -> incident edge ids (split by direction).  Stored
        # as insertion-ordered dicts (id -> None) rather than sets so that the
        # matcher can iterate adjacency deterministically without re-sorting on
        # every backtracking step.
        self._out_edges: dict[NodeId, dict[EdgeId, None]] = {}
        self._in_edges: dict[NodeId, dict[EdgeId, None]] = {}
        # per-label adjacency buckets: (node id, edge label) -> edge ids, same
        # insertion-ordered-dict representation.  The matcher's label probes
        # (_candidates_for / _has_witness) and shard extraction read these so
        # that a label lookup touches only the matching-label edges instead of
        # scanning the node's full adjacency.  Kept exactly in sync by every
        # mutation that attaches, detaches, or relabels an edge.
        self._out_by_label: dict[tuple[NodeId, Label], dict[EdgeId, None]] = {}
        self._in_by_label: dict[tuple[NodeId, Label], dict[EdgeId, None]] = {}
        # label indexes
        self._nodes_by_label: dict[Label, set[NodeId]] = {}
        self._edges_by_label: dict[Label, set[EdgeId]] = {}
        self._listeners: list[ChangeListener] = []
        # An id namespace prefixes every generated id ("s0:n7" instead of
        # "n7"), giving disjoint graphs — e.g. per-shard working copies in
        # repro.parallel — id spaces that can never collide with the primary
        # graph's or each other's.
        prefix = f"{id_namespace}:" if id_namespace else ""
        self._node_ids = IdGenerator(prefix=f"{prefix}n")
        self._edge_ids = IdGenerator(prefix=f"{prefix}e")

    # ------------------------------------------------------------------
    # listeners
    # ------------------------------------------------------------------

    def add_listener(self, listener: ChangeListener) -> None:
        """Subscribe ``listener`` to every subsequent mutation."""
        self._listeners.append(listener)

    def remove_listener(self, listener: ChangeListener) -> None:
        self._listeners.remove(listener)

    def _emit(self, change: GraphChange) -> None:
        for listener in self._listeners:
            listener(change)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def size(self) -> int:
        """Total number of elements (nodes + edges)."""
        return len(self._nodes) + len(self._edges)

    def __len__(self) -> int:
        return self.size()

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._nodes

    def has_node(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def has_edge(self, edge_id: EdgeId) -> bool:
        return edge_id in self._edges

    def node(self, node_id: NodeId) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def edge(self, edge_id: EdgeId) -> Edge:
        try:
            return self._edges[edge_id]
        except KeyError:
            raise EdgeNotFoundError(edge_id) from None

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes (insertion order)."""
        return iter(list(self._nodes.values()))

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges (insertion order)."""
        return iter(list(self._edges.values()))

    def node_ids(self) -> list[NodeId]:
        return list(self._nodes.keys())

    def edge_ids(self) -> list[EdgeId]:
        return list(self._edges.keys())

    # ------------------------------------------------------------------
    # label indexes
    # ------------------------------------------------------------------

    def node_labels(self) -> set[Label]:
        return set(self._nodes_by_label.keys())

    def edge_labels(self) -> set[Label]:
        return set(self._edges_by_label.keys())

    def nodes_with_label(self, label: Label) -> list[Node]:
        # sorted for determinism: label buckets are sets, and reproducible
        # iteration matters to the error injector and the experiments
        return [self._nodes[node_id]
                for node_id in sorted(self._nodes_by_label.get(label, ()))]

    def node_ids_with_label(self, label: Label) -> set[NodeId]:
        return set(self._nodes_by_label.get(label, set()))

    def edges_with_label(self, label: Label) -> list[Edge]:
        return [self._edges[edge_id]
                for edge_id in sorted(self._edges_by_label.get(label, ()))]

    def count_nodes_with_label(self, label: Label) -> int:
        return len(self._nodes_by_label.get(label, ()))

    def count_edges_with_label(self, label: Label) -> int:
        return len(self._edges_by_label.get(label, ()))

    # ------------------------------------------------------------------
    # adjacency accessors
    # ------------------------------------------------------------------

    def out_edges(self, node_id: NodeId) -> list[Edge]:
        """All edges whose source is ``node_id`` (sorted by edge id for determinism)."""
        self._require_node(node_id)
        return [self._edges[eid] for eid in sorted(self._out_edges.get(node_id, ()))]

    def in_edges(self, node_id: NodeId) -> list[Edge]:
        """All edges whose target is ``node_id`` (sorted by edge id for determinism)."""
        self._require_node(node_id)
        return [self._edges[eid] for eid in sorted(self._in_edges.get(node_id, ()))]

    def incident_edges(self, node_id: NodeId) -> list[Edge]:
        """All edges incident to ``node_id`` in either direction (self-loops once)."""
        self._require_node(node_id)
        edge_ids = (self._out_edges.get(node_id, {}).keys()
                    | self._in_edges.get(node_id, {}).keys())
        return [self._edges[eid] for eid in sorted(edge_ids)]

    @property
    def edge_store(self) -> Mapping[EdgeId, Edge]:
        """The live edge-id -> :class:`Edge` mapping (read-only contract).

        Hot-path counterpart of :meth:`edge` for inner loops that resolve many
        edge ids and can tolerate a plain ``KeyError``: direct dict indexing
        skips the not-found wrapping.  Callers must not mutate it.
        """
        return self._edges

    @property
    def node_store(self) -> Mapping[NodeId, Node]:
        """The live node-id -> :class:`Node` mapping (read-only contract, see
        :attr:`edge_store`)."""
        return self._nodes

    def out_edge_ids(self, node_id: NodeId):
        """Zero-copy view of the outgoing edge ids of ``node_id``.

        Insertion-ordered and deterministic; the view must not be mutated and
        is invalidated by graph mutations.  This is the matcher's hot-path
        accessor — unlike :meth:`out_edges` it neither copies nor sorts.
        """
        bucket = self._out_edges.get(node_id)
        return bucket.keys() if bucket is not None else ()

    def in_edge_ids(self, node_id: NodeId):
        """Zero-copy view of the incoming edge ids of ``node_id`` (see
        :meth:`out_edge_ids`)."""
        bucket = self._in_edges.get(node_id)
        return bucket.keys() if bucket is not None else ()

    def iter_out_edges(self, node_id: NodeId) -> Iterator[Edge]:
        """Outgoing edges in insertion order, without copying or sorting."""
        edges = self._edges
        for edge_id in self._out_edges.get(node_id, ()):
            yield edges[edge_id]

    def iter_in_edges(self, node_id: NodeId) -> Iterator[Edge]:
        """Incoming edges in insertion order, without copying or sorting."""
        edges = self._edges
        for edge_id in self._in_edges.get(node_id, ()):
            yield edges[edge_id]

    def out_degree(self, node_id: NodeId) -> int:
        self._require_node(node_id)
        return len(self._out_edges.get(node_id, ()))

    def in_degree(self, node_id: NodeId) -> int:
        self._require_node(node_id)
        return len(self._in_edges.get(node_id, ()))

    def degree(self, node_id: NodeId) -> int:
        return self.out_degree(node_id) + self.in_degree(node_id)

    def successors(self, node_id: NodeId) -> set[NodeId]:
        """Ids of nodes reachable by one outgoing edge."""
        return {edge.target for edge in self.out_edges(node_id)}

    def predecessors(self, node_id: NodeId) -> set[NodeId]:
        """Ids of nodes with an edge pointing to ``node_id``."""
        return {edge.source for edge in self.in_edges(node_id)}

    def neighbors(self, node_id: NodeId) -> set[NodeId]:
        """Ids of nodes adjacent in either direction (excluding the node itself)."""
        adjacent = self.successors(node_id) | self.predecessors(node_id)
        adjacent.discard(node_id)
        return adjacent

    def edges_between(self, source: NodeId, target: NodeId,
                      label: Label | None = None) -> list[Edge]:
        """All edges from ``source`` to ``target`` (optionally restricted to a label)."""
        self._require_node(source)
        self._require_node(target)
        # Probe whichever endpoint has the smaller adjacency list, using the
        # per-label buckets when a label narrows the probe.
        if label is None:
            out_bucket = self._out_edges.get(source, ())
            in_bucket = self._in_edges.get(target, ())
        else:
            out_bucket = self._out_by_label.get((source, label), ())
            in_bucket = self._in_by_label.get((target, label), ())
        found = []
        if len(out_bucket) <= len(in_bucket):
            for edge_id in out_bucket:
                edge = self._edges[edge_id]
                if edge.target == target:
                    found.append(edge)
        else:
            for edge_id in in_bucket:
                edge = self._edges[edge_id]
                if edge.source == source:
                    found.append(edge)
        return found

    def has_edge_between(self, source: NodeId, target: NodeId,
                         label: Label | None = None) -> bool:
        return bool(self.edges_between(source, target, label))

    def out_edge_ids_with_label(self, node_id: NodeId, label: Label):
        """Zero-copy view of the outgoing edge ids of ``node_id`` carrying
        ``label`` (insertion-ordered; same contract as :meth:`out_edge_ids`)."""
        bucket = self._out_by_label.get((node_id, label))
        return bucket.keys() if bucket is not None else ()

    def in_edge_ids_with_label(self, node_id: NodeId, label: Label):
        """Zero-copy view of the incoming edge ids of ``node_id`` carrying
        ``label`` (see :meth:`out_edge_ids_with_label`)."""
        bucket = self._in_by_label.get((node_id, label))
        return bucket.keys() if bucket is not None else ()

    def out_edges_with_label(self, node_id: NodeId, label: Label) -> list[Edge]:
        self._require_node(node_id)
        return [self._edges[eid]
                for eid in sorted(self.out_edge_ids_with_label(node_id, label))]

    def in_edges_with_label(self, node_id: NodeId, label: Label) -> list[Edge]:
        self._require_node(node_id)
        return [self._edges[eid]
                for eid in sorted(self.in_edge_ids_with_label(node_id, label))]

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------

    def add_node(self, label: Label, properties: Mapping[str, Any] | None = None,
                 node_id: NodeId | None = None) -> Node:
        """Create a node; returns the new :class:`Node`.

        If ``node_id`` is omitted a fresh id is generated.
        """
        if node_id is None:
            node_id = self._node_ids.next()
        else:
            node_id = str(node_id)
            if node_id in self._nodes:
                raise DuplicateElementError(f"node id {node_id!r} already exists")
            self._node_ids.observe(node_id)
        # Interned ids and labels: both are compared (and hashed) constantly in
        # the matcher's inner loops and repeat across elements, so pooling them
        # turns most comparisons into pointer checks and deduplicates storage.
        node_id = _intern(node_id)
        label = _intern(label)
        node = Node(id=node_id, label=label, properties=dict(properties or {}))
        self._nodes[node_id] = node
        self._out_edges[node_id] = {}
        self._in_edges[node_id] = {}
        self._nodes_by_label.setdefault(label, set()).add(node_id)
        self._emit(GraphChange(kind=ChangeKind.ADD_NODE, node_id=node_id,
                               touched_nodes=(node_id,),
                               details={"label": label,
                                        "properties": dict(node.properties)}))
        return node

    def add_edge(self, source: NodeId, target: NodeId, label: Label,
                 properties: Mapping[str, Any] | None = None,
                 edge_id: EdgeId | None = None) -> Edge:
        """Create a directed edge ``source -[label]-> target``."""
        self._require_node(source)
        self._require_node(target)
        if edge_id is None:
            edge_id = self._edge_ids.next()
        else:
            edge_id = str(edge_id)
            if edge_id in self._edges:
                raise DuplicateElementError(f"edge id {edge_id!r} already exists")
            self._edge_ids.observe(edge_id)
        edge_id = _intern(edge_id)
        edge = Edge(id=edge_id, source=self._nodes[source].id,
                    target=self._nodes[target].id, label=_intern(label),
                    properties=dict(properties or {}))
        self._edges[edge_id] = edge
        self._attach_edge_to_indexes(edge)
        self._emit(GraphChange(kind=ChangeKind.ADD_EDGE, edge_id=edge_id,
                               touched_nodes=(source, target),
                               details={"label": label, "source": source,
                                        "target": target,
                                        "properties": dict(edge.properties)}))
        return edge

    def remove_edge(self, edge_id: EdgeId) -> Edge:
        """Delete an edge; returns the removed :class:`Edge`."""
        edge = self.edge(edge_id)
        self._detach_edge(edge)
        self._emit(GraphChange(kind=ChangeKind.REMOVE_EDGE, edge_id=edge_id,
                               touched_nodes=(edge.source, edge.target),
                               details={"label": edge.label, "source": edge.source,
                                        "target": edge.target,
                                        "properties": dict(edge.properties)}))
        return edge

    def remove_node(self, node_id: NodeId) -> Node:
        """Delete a node and all incident edges; returns the removed :class:`Node`."""
        node = self.node(node_id)
        incident = self.incident_edges(node_id)
        removed_edges = []
        removed_specs = []
        touched: set[NodeId] = {node_id}
        for edge in incident:
            touched.add(edge.source)
            touched.add(edge.target)
            removed_specs.append(_edge_spec(edge))
            self._detach_edge(edge)
            removed_edges.append(edge.id)
        del self._nodes[node_id]
        del self._out_edges[node_id]
        del self._in_edges[node_id]
        self._discard_from_index(self._nodes_by_label, node.label, node_id)
        touched.discard(node_id)
        self._emit(GraphChange(kind=ChangeKind.REMOVE_NODE, node_id=node_id,
                               touched_nodes=tuple(touched),
                               details={"label": node.label,
                                        "properties": dict(node.properties),
                                        "removed_edges": tuple(removed_edges),
                                        "removed_edge_specs": tuple(removed_specs)}))
        return node

    def update_node(self, node_id: NodeId, properties: Mapping[str, Any] | None = None,
                    remove_keys: Iterable[str] = ()) -> Node:
        """Set/overwrite node properties and/or remove property keys."""
        node = self.node(node_id)
        before = dict(node.properties)
        for key in remove_keys:
            node.properties.pop(key, None)
        if properties:
            node.properties.update(properties)
        node.invalidate_signature()
        self._emit(GraphChange(kind=ChangeKind.UPDATE_NODE, node_id=node_id,
                               touched_nodes=(node_id,),
                               details={"before": before, "after": dict(node.properties)}))
        return node

    def update_edge(self, edge_id: EdgeId, properties: Mapping[str, Any] | None = None,
                    remove_keys: Iterable[str] = ()) -> Edge:
        """Set/overwrite edge properties and/or remove property keys."""
        edge = self.edge(edge_id)
        before = dict(edge.properties)
        for key in remove_keys:
            edge.properties.pop(key, None)
        if properties:
            edge.properties.update(properties)
        edge.invalidate_signature()
        self._emit(GraphChange(kind=ChangeKind.UPDATE_EDGE, edge_id=edge_id,
                               touched_nodes=(edge.source, edge.target),
                               details={"before": before, "after": dict(edge.properties)}))
        return edge

    def relabel_node(self, node_id: NodeId, new_label: Label) -> Node:
        """Change a node's label, keeping id, properties, and incident edges."""
        node = self.node(node_id)
        old_label = node.label
        if old_label == new_label:
            return node
        self._discard_from_index(self._nodes_by_label, old_label, node_id)
        node.label = _intern(new_label)
        node.invalidate_signature()
        new_label = node.label
        self._nodes_by_label.setdefault(new_label, set()).add(node_id)
        self._emit(GraphChange(kind=ChangeKind.RELABEL_NODE, node_id=node_id,
                               touched_nodes=(node_id,),
                               details={"before": old_label, "after": new_label}))
        return node

    def relabel_edge(self, edge_id: EdgeId, new_label: Label) -> Edge:
        """Change an edge's label (predicate), keeping endpoints and properties."""
        edge = self.edge(edge_id)
        old_label = edge.label
        if old_label == new_label:
            return edge
        self._discard_from_index(self._edges_by_label, old_label, edge_id)
        self._discard_from_label_bucket(self._out_by_label, edge.source, old_label, edge_id)
        self._discard_from_label_bucket(self._in_by_label, edge.target, old_label, edge_id)
        edge.label = _intern(new_label)
        edge.invalidate_signature()
        new_label = edge.label
        self._edges_by_label.setdefault(new_label, set()).add(edge_id)
        self._out_by_label.setdefault((edge.source, new_label), {})[edge_id] = None
        self._in_by_label.setdefault((edge.target, new_label), {})[edge_id] = None
        self._emit(GraphChange(kind=ChangeKind.RELABEL_EDGE, edge_id=edge_id,
                               touched_nodes=(edge.source, edge.target),
                               details={"before": old_label, "after": new_label}))
        return edge

    def merge_nodes(self, keep_id: NodeId, merge_id: NodeId,
                    prefer_kept_properties: bool = True,
                    drop_duplicate_edges: bool = True) -> Node:
        """Fuse ``merge_id`` into ``keep_id``.

        All edges incident to the merged node are redirected to the kept node.
        Properties are merged (kept node's values win unless
        ``prefer_kept_properties=False``).  With ``drop_duplicate_edges=True``
        (the default) a redirected edge is dropped instead of redirected when
        the kept node already has an edge with the same label, same other
        endpoint, and same direction — this is what makes MERGE_NODES the
        natural repair for entity duplication without creating new parallel
        duplicates.
        """
        if keep_id == merge_id:
            raise GraphMutationError("cannot merge a node into itself")
        keep = self.node(keep_id)
        merge = self.node(merge_id)
        keep_properties_before = dict(keep.properties)
        merged_properties = dict(merge.properties)

        added_edges: list[EdgeId] = []
        removed_edges: list[EdgeId] = []
        removed_specs: list[dict[str, Any]] = []
        touched: set[NodeId] = {keep_id, merge_id}

        for edge in list(self.incident_edges(merge_id)):
            touched.add(edge.source)
            touched.add(edge.target)
            new_source = keep_id if edge.source == merge_id else edge.source
            new_target = keep_id if edge.target == merge_id else edge.target
            removed_specs.append(_edge_spec(edge))
            self._detach_edge(edge)
            removed_edges.append(edge.id)
            if drop_duplicate_edges and self._has_equivalent_edge(new_source, new_target, edge.label):
                continue
            replacement = Edge(id=self._edge_ids.next(), source=new_source,
                               target=new_target, label=edge.label,
                               properties=dict(edge.properties))
            self._edges[replacement.id] = replacement
            self._attach_edge_to_indexes(replacement)
            added_edges.append(replacement.id)

        if prefer_kept_properties:
            keep.properties = merge_properties(keep.properties, merge.properties,
                                               overwrite=False)
        else:
            keep.properties = merge_properties(keep.properties, merge.properties,
                                               overwrite=True)
        keep.invalidate_signature()
        added_specs = tuple(_edge_spec(self._edges[edge_id])
                            for edge_id in added_edges)

        del self._nodes[merge_id]
        del self._out_edges[merge_id]
        del self._in_edges[merge_id]
        self._discard_from_index(self._nodes_by_label, merge.label, merge_id)
        touched.discard(merge_id)

        self._emit(GraphChange(kind=ChangeKind.MERGE_NODES, node_id=keep_id,
                               touched_nodes=tuple(touched),
                               details={"merged": merge_id,
                                        "merged_label": merge.label,
                                        "merged_properties": merged_properties,
                                        "keep_properties_before": keep_properties_before,
                                        "keep_properties_after": dict(keep.properties),
                                        "prefer_kept_properties": prefer_kept_properties,
                                        "drop_duplicate_edges": drop_duplicate_edges,
                                        "added_edges": tuple(added_edges),
                                        "added_edge_specs": added_specs,
                                        "removed_edges": tuple(removed_edges),
                                        "removed_edge_specs": tuple(removed_specs)}))
        return keep

    # ------------------------------------------------------------------
    # id reservation
    # ------------------------------------------------------------------

    def reserve_node_ids(self, count: int) -> list[str]:
        """Reserve ``count`` fresh node ids from this graph's generator.

        The ids are guaranteed never to be handed out by a later
        :meth:`add_node`; a coordinator rewrites a foreign delta's created
        ids onto a reserved block before replaying it here, so replayed
        elements can never collide with this graph's id space (see
        :func:`repro.graph.delta.rebase_delta`).
        """
        return self._node_ids.reserve(count)

    def reserve_edge_ids(self, count: int) -> list[str]:
        """Reserve ``count`` fresh edge ids (see :meth:`reserve_node_ids`)."""
        return self._edge_ids.reserve(count)

    # ------------------------------------------------------------------
    # bulk / copy / conversion
    # ------------------------------------------------------------------

    def copy(self, name: str | None = None) -> "PropertyGraph":
        """Deep copy (listeners are not copied)."""
        clone = PropertyGraph(name=name or self.name)
        for node in self._nodes.values():
            clone.add_node(node.label, dict(node.properties), node_id=node.id)
        for edge in self._edges.values():
            clone.add_edge(edge.source, edge.target, edge.label,
                           dict(edge.properties), edge_id=edge.id)
        return clone

    def subgraph(self, node_ids: Iterable[NodeId], name: str | None = None,
                 id_namespace: str | None = None) -> "PropertyGraph":
        """Induced subgraph on ``node_ids`` (edges with both endpoints inside).

        Nodes are inserted in this graph's insertion order and edges are
        collected from the kept nodes' adjacency (cost proportional to the
        kept nodes' degrees, not to the whole edge set), so repeated shard
        extraction is both cheap and deterministic across processes.
        ``id_namespace`` seeds the subgraph's id generators with a disjoint
        prefix for ids it creates later (shard-local repairs).
        """
        keep = set(node_ids)
        sub = PropertyGraph(name=name or f"{self.name}-sub",
                            id_namespace=id_namespace)
        missing = keep.difference(self._nodes)
        if missing:
            raise NodeNotFoundError(sorted(missing)[0])
        for node_id, node in self._nodes.items():
            if node_id in keep:
                sub.add_node(node.label, dict(node.properties), node_id=node_id)
        edges = self._edges
        for node_id in sub._nodes:
            for edge_id in self._out_edges.get(node_id, ()):
                edge = edges[edge_id]
                if edge.target in keep:
                    sub.add_edge(edge.source, edge.target, edge.label,
                                 dict(edge.properties), edge_id=edge.id)
        return sub

    def neighborhood(self, node_ids: Iterable[NodeId], hops: int = 1) -> set[NodeId]:
        """Node ids within ``hops`` undirected hops of any seed node (seeds included)."""
        frontier = {node_id for node_id in node_ids if self.has_node(node_id)}
        visited = set(frontier)
        for _ in range(hops):
            next_frontier: set[NodeId] = set()
            for node_id in frontier:
                next_frontier.update(self.neighbors(node_id))
            next_frontier -= visited
            if not next_frontier:
                break
            visited.update(next_frontier)
            frontier = next_frontier
        return visited

    def to_networkx(self):
        """Convert to a :class:`networkx.MultiDiGraph` (labels stored as attributes)."""
        import networkx as nx

        nx_graph = nx.MultiDiGraph(name=self.name)
        for node in self._nodes.values():
            nx_graph.add_node(node.id, label=node.label, **node.properties)
        for edge in self._edges.values():
            nx_graph.add_edge(edge.source, edge.target, key=edge.id,
                              label=edge.label, **edge.properties)
        return nx_graph

    @classmethod
    def from_networkx(cls, nx_graph, name: str | None = None) -> "PropertyGraph":
        """Build a :class:`PropertyGraph` from a networkx (multi)digraph.

        Node/edge attribute ``label`` becomes the element label (defaulting to
        ``"Node"`` / ``"edge"``); remaining attributes become properties.
        """
        graph = cls(name=name or getattr(nx_graph, "name", None) or "graph")
        for node_id, attrs in nx_graph.nodes(data=True):
            attrs = dict(attrs)
            label = attrs.pop("label", "Node")
            graph.add_node(label, attrs, node_id=str(node_id))
        if nx_graph.is_multigraph():
            edge_iter = ((u, v, data) for u, v, _key, data in nx_graph.edges(keys=True, data=True))
        else:
            edge_iter = nx_graph.edges(data=True)
        for source, target, attrs in edge_iter:
            attrs = dict(attrs)
            label = attrs.pop("label", "edge")
            graph.add_edge(str(source), str(target), label, attrs)
        return graph

    # ------------------------------------------------------------------
    # equality / hashing helpers
    # ------------------------------------------------------------------

    def structurally_equal(self, other: "PropertyGraph") -> bool:
        """Exact equality of node/edge sets including ids, labels and properties."""
        if self.num_nodes != other.num_nodes or self.num_edges != other.num_edges:
            return False
        for node_id, node in self._nodes.items():
            if not other.has_node(node_id):
                return False
            other_node = other.node(node_id)
            if node.label != other_node.label or node.properties != other_node.properties:
                return False
        mine = {(e.source, e.target, e.label, tuple(sorted(e.properties.items(), key=repr)))
                for e in self._edges.values()}
        theirs = {(e.source, e.target, e.label, tuple(sorted(e.properties.items(), key=repr)))
                  for e in other._edges.values()}
        return mine == theirs

    def __repr__(self) -> str:
        return (f"PropertyGraph(name={self.name!r}, nodes={self.num_nodes}, "
                f"edges={self.num_edges})")

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------

    def _require_node(self, node_id: NodeId) -> None:
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)

    def _attach_edge_to_indexes(self, edge: Edge) -> None:
        """Register an already-stored edge in every adjacency/label index."""
        self._out_edges[edge.source][edge.id] = None
        self._in_edges[edge.target][edge.id] = None
        self._edges_by_label.setdefault(edge.label, set()).add(edge.id)
        self._out_by_label.setdefault((edge.source, edge.label), {})[edge.id] = None
        self._in_by_label.setdefault((edge.target, edge.label), {})[edge.id] = None

    def _detach_edge(self, edge: Edge) -> None:
        del self._edges[edge.id]
        self._out_edges[edge.source].pop(edge.id, None)
        self._in_edges[edge.target].pop(edge.id, None)
        self._discard_from_index(self._edges_by_label, edge.label, edge.id)
        self._discard_from_label_bucket(self._out_by_label, edge.source, edge.label, edge.id)
        self._discard_from_label_bucket(self._in_by_label, edge.target, edge.label, edge.id)

    def _has_equivalent_edge(self, source: NodeId, target: NodeId, label: Label) -> bool:
        for edge_id in self._out_by_label.get((source, label), ()):
            if self._edges[edge_id].target == target:
                return True
        return False

    @staticmethod
    def _discard_from_index(index: dict[str, set], key: str, value: str) -> None:
        bucket = index.get(key)
        if bucket is None:
            return
        bucket.discard(value)
        if not bucket:
            del index[key]

    @staticmethod
    def _discard_from_label_bucket(index: dict[tuple[NodeId, Label], dict[EdgeId, None]],
                                   node_id: NodeId, label: Label, edge_id: EdgeId) -> None:
        key = (node_id, label)
        bucket = index.get(key)
        if bucket is None:
            return
        bucket.pop(edge_id, None)
        if not bucket:
            del index[key]
