"""Node and edge records of the property graph.

A :class:`PropertyGraph` stores :class:`Node` and :class:`Edge` records.  Both
carry a *label* (the entity type of a node, the predicate of an edge) and a
free-form property dictionary.  The records are plain mutable dataclasses; all
mutation of a graph's elements should nevertheless go through the
:class:`~repro.graph.property_graph.PropertyGraph` methods so that change
events are emitted for the incremental machinery.

Scale notes (the graph core is the per-element cost floor of every layer):

* both records are ``slots=True`` dataclasses — no per-instance ``__dict__``,
  which at 10⁴–10⁵ elements is the difference between the properties dict
  dominating memory and the bookkeeping dominating it;
* :meth:`Node.signature` / :meth:`Edge.signature` cache their frozen value in
  the ``_signature`` slot; the graph's mutation methods invalidate the cache
  (:meth:`invalidate_signature`), so isomorphism/dedup sweeps stop re-freezing
  the full property dict per call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

NodeId = str
EdgeId = str
Label = str
Properties = dict[str, Any]


def _freeze_value(value: Any) -> Any:
    """Return a hashable stand-in for a property value (used in signatures)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze_value(v)) for k, v in value.items()))
    if isinstance(value, set):
        return frozenset(_freeze_value(v) for v in value)
    return value


@dataclass(slots=True)
class Node:
    """A node of a property graph.

    Attributes
    ----------
    id:
        Opaque unique identifier within the graph.
    label:
        The entity type (e.g. ``"Person"``, ``"City"``).
    properties:
        Arbitrary key/value attributes (e.g. ``{"name": "Ada", "birthYear": 1815}``).
    """

    id: NodeId
    label: Label
    properties: Properties = field(default_factory=dict)
    # cached frozen signature; None = not computed since the last mutation
    _signature: tuple | None = field(default=None, repr=False, compare=False)

    def get(self, key: str, default: Any = None) -> Any:
        return self.properties.get(key, default)

    def has(self, key: str) -> bool:
        return key in self.properties

    def copy(self) -> "Node":
        return Node(id=self.id, label=self.label, properties=dict(self.properties))

    def signature(self) -> tuple:
        """A hashable summary of label + properties (used by isomorphism & dedup).

        The frozen tuple is cached until the owning graph mutates this node
        (see :meth:`invalidate_signature`), so repeated signature sweeps stop
        re-freezing the property dict on every call.
        """
        signature = self._signature
        if signature is None:
            signature = (
                self.label,
                tuple(sorted((k, _freeze_value(v)) for k, v in self.properties.items())),
            )
            self._signature = signature
        return signature

    def invalidate_signature(self) -> None:
        """Drop the cached signature (called by every label/property mutation)."""
        self._signature = None

    def __repr__(self) -> str:
        props = f" {self.properties}" if self.properties else ""
        return f"Node({self.id}:{self.label}{props})"


@dataclass(slots=True)
class Edge:
    """A directed edge of a property graph.

    Attributes
    ----------
    id:
        Opaque unique identifier within the graph.
    source, target:
        Ids of the endpoint nodes.
    label:
        The predicate (e.g. ``"bornIn"``, ``"capitalOf"``).
    properties:
        Arbitrary key/value attributes (e.g. ``{"since": 2001, "source": "wiki"}``).
    """

    id: EdgeId
    source: NodeId
    target: NodeId
    label: Label
    properties: Properties = field(default_factory=dict)
    # cached frozen signature; None = not computed since the last mutation
    _signature: tuple | None = field(default=None, repr=False, compare=False)

    def get(self, key: str, default: Any = None) -> Any:
        return self.properties.get(key, default)

    def has(self, key: str) -> bool:
        return key in self.properties

    def copy(self) -> "Edge":
        return Edge(
            id=self.id,
            source=self.source,
            target=self.target,
            label=self.label,
            properties=dict(self.properties),
        )

    def other_endpoint(self, node_id: NodeId) -> NodeId:
        """Return the endpoint that is not ``node_id`` (source for self-loops)."""
        if node_id == self.source:
            return self.target
        if node_id == self.target:
            return self.source
        raise ValueError(f"node {node_id!r} is not an endpoint of edge {self.id!r}")

    def signature(self) -> tuple:
        """A hashable summary of label + properties (endpoint-independent).

        Cached until the owning graph mutates this edge (see
        :meth:`invalidate_signature`)."""
        signature = self._signature
        if signature is None:
            signature = (
                self.label,
                tuple(sorted((k, _freeze_value(v)) for k, v in self.properties.items())),
            )
            self._signature = signature
        return signature

    def invalidate_signature(self) -> None:
        """Drop the cached signature (called by every label/property mutation)."""
        self._signature = None

    def __repr__(self) -> str:
        props = f" {self.properties}" if self.properties else ""
        return f"Edge({self.id}: {self.source}-[{self.label}]->{self.target}{props})"


def merge_properties(base: Mapping[str, Any], extra: Mapping[str, Any],
                     overwrite: bool = False) -> Properties:
    """Merge two property dictionaries.

    With ``overwrite=False`` (the default, used by ``MERGE_NODES``) values
    already present in ``base`` win; with ``overwrite=True`` (used by
    ``UPDATE_NODE``/``UPDATE_EDGE``) values from ``extra`` win.
    """
    merged: Properties = dict(base)
    for key, value in extra.items():
        if overwrite or key not in merged:
            merged[key] = value
    return merged
