"""Random labelled-graph generators.

These are low-level structural generators (Erdős–Rényi, Barabási–Albert-style
preferential attachment, community-structured graphs) with labels layered on
top.  The domain-specific knowledge-graph generators in
:mod:`repro.datasets` build on them when they need background topology; they
are also useful on their own for property-based tests and micro-benchmarks.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.graph.property_graph import PropertyGraph
from repro.utils.rng import ensure_rng, zipf_weights


DEFAULT_NODE_LABELS = ("A", "B", "C")
DEFAULT_EDGE_LABELS = ("r", "s", "t")


def _assign_label(rng: random.Random, labels: Sequence[str], zipf_exponent: float) -> str:
    weights = zipf_weights(len(labels), zipf_exponent)
    return rng.choices(list(labels), weights=weights, k=1)[0]


def erdos_renyi_graph(num_nodes: int, edge_probability: float,
                      node_labels: Sequence[str] = DEFAULT_NODE_LABELS,
                      edge_labels: Sequence[str] = DEFAULT_EDGE_LABELS,
                      zipf_exponent: float = 0.8,
                      seed: int | random.Random | None = 0,
                      name: str = "erdos-renyi") -> PropertyGraph:
    """A directed G(n, p) graph with Zipf-distributed labels.

    Intended for small/medium graphs: the generator enumerates all ordered
    node pairs, so cost is quadratic in ``num_nodes``.
    """
    if num_nodes < 0:
        raise ValueError("num_nodes must be non-negative")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = ensure_rng(seed)
    graph = PropertyGraph(name=name)
    node_ids = [
        graph.add_node(_assign_label(rng, node_labels, zipf_exponent)).id
        for _ in range(num_nodes)
    ]
    for source in node_ids:
        for target in node_ids:
            if source == target:
                continue
            if rng.random() < edge_probability:
                graph.add_edge(source, target,
                               _assign_label(rng, edge_labels, zipf_exponent))
    return graph


def preferential_attachment_graph(num_nodes: int, edges_per_node: int = 2,
                                  node_labels: Sequence[str] = DEFAULT_NODE_LABELS,
                                  edge_labels: Sequence[str] = DEFAULT_EDGE_LABELS,
                                  zipf_exponent: float = 0.8,
                                  seed: int | random.Random | None = 0,
                                  name: str = "preferential-attachment") -> PropertyGraph:
    """A Barabási–Albert-style graph: heavy-tailed in-degree, like real KGs.

    Each new node attaches ``edges_per_node`` outgoing edges to existing nodes
    chosen proportionally to their current degree (plus one, so isolated nodes
    remain reachable).
    """
    if num_nodes < 0:
        raise ValueError("num_nodes must be non-negative")
    if edges_per_node < 0:
        raise ValueError("edges_per_node must be non-negative")
    rng = ensure_rng(seed)
    graph = PropertyGraph(name=name)
    node_ids: list[str] = []
    degree_weight: dict[str, int] = {}

    for _ in range(num_nodes):
        new_id = graph.add_node(_assign_label(rng, node_labels, zipf_exponent)).id
        if node_ids:
            attach_count = min(edges_per_node, len(node_ids))
            weights = [degree_weight[node_id] + 1 for node_id in node_ids]
            targets: set[str] = set()
            attempts = 0
            while len(targets) < attach_count and attempts < 10 * attach_count:
                target = rng.choices(node_ids, weights=weights, k=1)[0]
                targets.add(target)
                attempts += 1
            for target in targets:
                graph.add_edge(new_id, target,
                               _assign_label(rng, edge_labels, zipf_exponent))
                degree_weight[target] = degree_weight.get(target, 0) + 1
                degree_weight[new_id] = degree_weight.get(new_id, 0) + 1
        node_ids.append(new_id)
        degree_weight.setdefault(new_id, 0)
    return graph


def community_graph(num_communities: int, nodes_per_community: int,
                    intra_probability: float = 0.15,
                    inter_probability: float = 0.005,
                    node_labels: Sequence[str] = DEFAULT_NODE_LABELS,
                    edge_labels: Sequence[str] = DEFAULT_EDGE_LABELS,
                    seed: int | random.Random | None = 0,
                    name: str = "community") -> PropertyGraph:
    """A planted-partition graph: dense inside communities, sparse across.

    The social-network duplicate-account dataset uses this topology.  Each
    node gets a ``community`` property so tests can check the planted
    structure survives repairs.
    """
    if num_communities < 0 or nodes_per_community < 0:
        raise ValueError("community counts must be non-negative")
    rng = ensure_rng(seed)
    graph = PropertyGraph(name=name)
    members: list[list[str]] = []
    for community_index in range(num_communities):
        community_nodes = []
        for _ in range(nodes_per_community):
            node = graph.add_node(
                _assign_label(rng, node_labels, 0.8),
                {"community": community_index},
            )
            community_nodes.append(node.id)
        members.append(community_nodes)

    all_nodes = [node_id for community in members for node_id in community]
    community_of = {node_id: index
                    for index, community in enumerate(members)
                    for node_id in community}
    for source in all_nodes:
        for target in all_nodes:
            if source == target:
                continue
            probability = (intra_probability
                           if community_of[source] == community_of[target]
                           else inter_probability)
            if rng.random() < probability:
                graph.add_edge(source, target, _assign_label(rng, edge_labels, 0.8))
    return graph


def path_graph(length: int, node_label: str = "A", edge_label: str = "r",
               name: str = "path") -> PropertyGraph:
    """A simple directed path with ``length`` edges (``length + 1`` nodes)."""
    if length < 0:
        raise ValueError("length must be non-negative")
    graph = PropertyGraph(name=name)
    previous = graph.add_node(node_label).id
    for _ in range(length):
        current = graph.add_node(node_label).id
        graph.add_edge(previous, current, edge_label)
        previous = current
    return graph


def star_graph(num_leaves: int, center_label: str = "A", leaf_label: str = "B",
               edge_label: str = "r", outward: bool = True,
               name: str = "star") -> PropertyGraph:
    """A star: one centre connected to ``num_leaves`` leaves."""
    if num_leaves < 0:
        raise ValueError("num_leaves must be non-negative")
    graph = PropertyGraph(name=name)
    center = graph.add_node(center_label).id
    for _ in range(num_leaves):
        leaf = graph.add_node(leaf_label).id
        if outward:
            graph.add_edge(center, leaf, edge_label)
        else:
            graph.add_edge(leaf, center, edge_label)
    return graph


def cycle_graph(length: int, node_label: str = "A", edge_label: str = "r",
                name: str = "cycle") -> PropertyGraph:
    """A directed cycle with ``length`` nodes (``length`` ≥ 1)."""
    if length < 1:
        raise ValueError("cycle length must be at least 1")
    graph = PropertyGraph(name=name)
    node_ids = [graph.add_node(node_label).id for _ in range(length)]
    for index, node_id in enumerate(node_ids):
        graph.add_edge(node_id, node_ids[(index + 1) % length], edge_label)
    return graph
