"""Exact isomorphism and containment checks for *small* graphs.

The rule-set static analysis (consistency / implication) reasons about small
canonical witness graphs (a handful of nodes), so a simple backtracking
isomorphism test is sufficient and keeps the module dependency-free.  For
pattern-vs-data matching at scale use :mod:`repro.matching` instead — this
module is deliberately label-and-property exact.
"""

from __future__ import annotations

from itertools import permutations

from repro.graph.property_graph import PropertyGraph


def _node_invariant(graph: PropertyGraph, node_id: str) -> tuple:
    node = graph.node(node_id)
    return (node.label, graph.in_degree(node_id), graph.out_degree(node_id))


def _edge_multiset(graph: PropertyGraph, mapping: dict[str, str],
                   other: PropertyGraph) -> bool:
    """Check that every edge of ``graph`` maps to an edge of ``other`` under ``mapping``."""
    for edge in graph.edges():
        mapped_source = mapping[edge.source]
        mapped_target = mapping[edge.target]
        if not other.has_edge_between(mapped_source, mapped_target, edge.label):
            return False
    return True


def are_isomorphic(first: PropertyGraph, second: PropertyGraph,
                   compare_properties: bool = False) -> bool:
    """Exact label-preserving isomorphism between two small graphs.

    Complexity is factorial in the number of nodes per label class; intended
    for graphs with at most ~8 nodes (rule patterns and witness graphs).
    """
    if first.num_nodes != second.num_nodes or first.num_edges != second.num_edges:
        return False

    first_ids = first.node_ids()
    second_ids = second.node_ids()

    first_invariants = sorted(_node_invariant(first, node_id) for node_id in first_ids)
    second_invariants = sorted(_node_invariant(second, node_id) for node_id in second_ids)
    if first_invariants != second_invariants:
        return False

    # Group second's nodes by invariant so we only permute within classes.
    by_invariant: dict[tuple, list[str]] = {}
    for node_id in second_ids:
        by_invariant.setdefault(_node_invariant(second, node_id), []).append(node_id)

    grouped_first: dict[tuple, list[str]] = {}
    for node_id in first_ids:
        grouped_first.setdefault(_node_invariant(first, node_id), []).append(node_id)

    def backtrack(groups: list[tuple[list[str], list[str]]], mapping: dict[str, str]) -> bool:
        if not groups:
            if not _edge_multiset(first, mapping, second):
                return False
            if not _edge_multiset(second, {v: k for k, v in mapping.items()}, first):
                return False
            if compare_properties:
                for source_id, target_id in mapping.items():
                    if first.node(source_id).properties != second.node(target_id).properties:
                        return False
            return True
        (first_group, second_group), *rest = groups
        for permutation in permutations(second_group):
            candidate = dict(mapping)
            candidate.update(zip(first_group, permutation))
            if backtrack(rest, candidate):
                return True
        return False

    groups = [(grouped_first[invariant], by_invariant[invariant])
              for invariant in grouped_first]
    return backtrack(groups, {})


def find_subgraph_embedding(small: PropertyGraph, large: PropertyGraph) -> dict[str, str] | None:
    """Find one injective, label-preserving embedding of ``small`` into ``large``.

    Brute-force backtracking over label-compatible candidates; intended for
    witness-graph reasoning in the analysis layer (both graphs tiny).
    Returns a mapping ``small node id -> large node id`` or ``None``.
    """
    small_ids = small.node_ids()

    def candidates(small_id: str) -> list[str]:
        label = small.node(small_id).label
        return [node.id for node in large.nodes_with_label(label)]

    order = sorted(small_ids, key=lambda node_id: len(candidates(node_id)))

    def consistent(mapping: dict[str, str]) -> bool:
        for edge in small.edges():
            if edge.source in mapping and edge.target in mapping:
                if not large.has_edge_between(mapping[edge.source], mapping[edge.target],
                                              edge.label):
                    return False
        return True

    def backtrack(index: int, mapping: dict[str, str], used: set[str]) -> dict[str, str] | None:
        if index == len(order):
            return dict(mapping)
        small_id = order[index]
        for large_id in candidates(small_id):
            if large_id in used:
                continue
            mapping[small_id] = large_id
            used.add(large_id)
            if consistent(mapping):
                found = backtrack(index + 1, mapping, used)
                if found is not None:
                    return found
            del mapping[small_id]
            used.discard(large_id)
        return None

    return backtrack(0, {}, set())


def contains_subgraph(small: PropertyGraph, large: PropertyGraph) -> bool:
    """True if ``small`` embeds injectively (label-preserving) into ``large``."""
    return find_subgraph_embedding(small, large) is not None
