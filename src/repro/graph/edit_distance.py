"""Graph edit distance between property graphs.

The ICDE paper evaluates repairs by how *close* the repaired graph stays to
the original ("minimal change" principle); the repair planner also uses edit
cost to rank alternative repairs.  Exact graph edit distance is NP-hard, so
two flavours are provided:

* :func:`labeled_edit_distance` — an *aligned* edit distance that assumes the
  shared node ids identify corresponding nodes (the natural situation when
  comparing a graph to its repaired version, because repairs preserve ids
  except for added/deleted/merged elements).  Linear time, exact under that
  assumption.
* :func:`approximate_edit_distance` — an unaligned upper-bound distance based
  on greedy label-signature matching, for comparing independently produced
  graphs (e.g. a repaired graph versus the clean ground-truth graph when ids
  diverge).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.property_graph import PropertyGraph


@dataclass(frozen=True)
class EditCosts:
    """Unit costs of elementary edits; defaults follow the usual convention
    that touching a node is at least as expensive as touching an edge."""

    node_insert: float = 1.0
    node_delete: float = 1.0
    node_relabel: float = 1.0
    node_property_change: float = 0.5
    edge_insert: float = 1.0
    edge_delete: float = 1.0
    edge_relabel: float = 1.0
    edge_property_change: float = 0.5


DEFAULT_COSTS = EditCosts()


@dataclass
class EditDistanceResult:
    """Breakdown of an edit-distance computation."""

    distance: float
    node_insertions: int = 0
    node_deletions: int = 0
    node_relabels: int = 0
    node_property_changes: int = 0
    edge_insertions: int = 0
    edge_deletions: int = 0
    edge_relabels: int = 0
    edge_property_changes: int = 0

    def total_operations(self) -> int:
        return (self.node_insertions + self.node_deletions + self.node_relabels
                + self.node_property_changes + self.edge_insertions
                + self.edge_deletions + self.edge_relabels + self.edge_property_changes)


def _edge_key(edge) -> tuple[str, str, str]:
    return (edge.source, edge.target, edge.label)


def labeled_edit_distance(original: PropertyGraph, modified: PropertyGraph,
                          costs: EditCosts = DEFAULT_COSTS) -> EditDistanceResult:
    """Edit distance assuming shared node ids denote the same entity.

    Nodes present in only one graph count as insertions/deletions; nodes
    present in both are compared by label and properties.  Edges are compared
    as (source, target, label) multisets, with property differences charged
    for edges matching on all three.
    """
    result = EditDistanceResult(distance=0.0)

    original_nodes = {node.id: node for node in original.nodes()}
    modified_nodes = {node.id: node for node in modified.nodes()}

    for node_id, node in original_nodes.items():
        if node_id not in modified_nodes:
            result.node_deletions += 1
            result.distance += costs.node_delete
            continue
        other = modified_nodes[node_id]
        if node.label != other.label:
            result.node_relabels += 1
            result.distance += costs.node_relabel
        if node.properties != other.properties:
            differing = _count_property_differences(node.properties, other.properties)
            result.node_property_changes += differing
            result.distance += differing * costs.node_property_change
    for node_id in modified_nodes:
        if node_id not in original_nodes:
            result.node_insertions += 1
            result.distance += costs.node_insert

    original_edges: dict[tuple[str, str, str], list] = {}
    for edge in original.edges():
        original_edges.setdefault(_edge_key(edge), []).append(edge)
    modified_edges: dict[tuple[str, str, str], list] = {}
    for edge in modified.edges():
        modified_edges.setdefault(_edge_key(edge), []).append(edge)

    for key, edges in original_edges.items():
        counterpart = modified_edges.get(key, [])
        surplus = len(edges) - len(counterpart)
        if surplus > 0:
            result.edge_deletions += surplus
            result.distance += surplus * costs.edge_delete
        for mine, theirs in zip(edges, counterpart):
            if mine.properties != theirs.properties:
                differing = _count_property_differences(mine.properties, theirs.properties)
                result.edge_property_changes += differing
                result.distance += differing * costs.edge_property_change
    for key, edges in modified_edges.items():
        counterpart = original_edges.get(key, [])
        surplus = len(edges) - len(counterpart)
        if surplus > 0:
            result.edge_insertions += surplus
            result.distance += surplus * costs.edge_insert

    return result


def _count_property_differences(first: dict, second: dict) -> int:
    keys = set(first) | set(second)
    return sum(1 for key in keys if first.get(key) != second.get(key))


def approximate_edit_distance(first: PropertyGraph, second: PropertyGraph,
                              costs: EditCosts = DEFAULT_COSTS) -> float:
    """Greedy unaligned upper bound on the edit distance.

    Nodes are matched greedily by (label, property-signature) buckets; the
    remaining unmatched nodes are charged as insert/delete, and edges are
    compared by (source label, edge label, target label) multisets.  The value
    is an upper bound on the true edit distance and a useful relative measure:
    identical graphs give 0, and distance grows monotonically with injected
    noise (property-based tests rely on these two facts only).
    """
    distance = 0.0

    first_buckets: dict[tuple, int] = {}
    for node in first.nodes():
        first_buckets[node.signature()] = first_buckets.get(node.signature(), 0) + 1
    second_buckets: dict[tuple, int] = {}
    for node in second.nodes():
        second_buckets[node.signature()] = second_buckets.get(node.signature(), 0) + 1

    for signature, count in first_buckets.items():
        other = second_buckets.get(signature, 0)
        if count > other:
            distance += (count - other) * costs.node_delete
    for signature, count in second_buckets.items():
        other = first_buckets.get(signature, 0)
        if count > other:
            distance += (count - other) * costs.node_insert

    def edge_profile(graph: PropertyGraph) -> dict[tuple[str, str, str], int]:
        profile: dict[tuple[str, str, str], int] = {}
        for edge in graph.edges():
            key = (graph.node(edge.source).label, edge.label, graph.node(edge.target).label)
            profile[key] = profile.get(key, 0) + 1
        return profile

    first_profile = edge_profile(first)
    second_profile = edge_profile(second)
    for key, count in first_profile.items():
        other = second_profile.get(key, 0)
        if count > other:
            distance += (count - other) * costs.edge_delete
    for key, count in second_profile.items():
        other = first_profile.get(key, 0)
        if count > other:
            distance += (count - other) * costs.edge_insert

    return distance
