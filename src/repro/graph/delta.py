"""Change tracking for property graphs.

Every mutation of a :class:`~repro.graph.property_graph.PropertyGraph` emits a
:class:`GraphChange` record.  Consumers (the candidate index, the incremental
matcher, the provenance log) subscribe to a graph's change feed, or collect
changes into a :class:`GraphDelta` covering a span of mutations.

The delta abstraction is what makes the *fast* repair algorithm fast: after a
repair is applied, only the graph region named by the delta needs to be
re-examined for new or destroyed pattern matches.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.graph.elements import EdgeId, NodeId


class ChangeKind(enum.Enum):
    """The kind of elementary mutation applied to a graph."""

    ADD_NODE = "add_node"
    REMOVE_NODE = "remove_node"
    ADD_EDGE = "add_edge"
    REMOVE_EDGE = "remove_edge"
    UPDATE_NODE = "update_node"
    UPDATE_EDGE = "update_edge"
    RELABEL_NODE = "relabel_node"
    RELABEL_EDGE = "relabel_edge"
    MERGE_NODES = "merge_nodes"


# Changes that can create new pattern matches (additive effects).
ADDITIVE_KINDS = frozenset(
    {
        ChangeKind.ADD_NODE,
        ChangeKind.ADD_EDGE,
        ChangeKind.UPDATE_NODE,
        ChangeKind.UPDATE_EDGE,
        ChangeKind.RELABEL_NODE,
        ChangeKind.RELABEL_EDGE,
        ChangeKind.MERGE_NODES,
    }
)

# Changes that can destroy existing pattern matches (subtractive effects).
SUBTRACTIVE_KINDS = frozenset(
    {
        ChangeKind.REMOVE_NODE,
        ChangeKind.REMOVE_EDGE,
        ChangeKind.UPDATE_NODE,
        ChangeKind.UPDATE_EDGE,
        ChangeKind.RELABEL_NODE,
        ChangeKind.RELABEL_EDGE,
        ChangeKind.MERGE_NODES,
    }
)


@dataclass(frozen=True)
class GraphChange:
    """One elementary mutation.

    ``node_id`` / ``edge_id`` name the element affected; for ``MERGE_NODES``
    the ``node_id`` is the surviving node and ``details["merged"]`` the node
    that was folded into it.  ``touched_nodes`` lists every node whose
    incident structure may have changed (endpoints of added/removed edges,
    neighbours of removed nodes) — this is the set the incremental matcher
    seeds its re-matching from.
    """

    kind: ChangeKind
    node_id: NodeId | None = None
    edge_id: EdgeId | None = None
    touched_nodes: tuple[NodeId, ...] = ()
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def is_additive(self) -> bool:
        return self.kind in ADDITIVE_KINDS

    @property
    def is_subtractive(self) -> bool:
        return self.kind in SUBTRACTIVE_KINDS

    # ------------------------------------------------------------------
    # codec hooks
    # ------------------------------------------------------------------

    def to_payload(self, encode: Callable[[Any], Any]) -> dict[str, Any]:
        """The change as a plain document, ready for a wire format.

        The *structure* of a change (kind, element ids, touched nodes, the
        detail keys) is owned here; the *values* inside ``details`` — labels,
        property maps with arbitrary Python values, edge-spec tuples — are
        passed through ``encode``, so the wire codec
        (:mod:`repro.durability.codec`) decides how non-JSON-safe values
        travel without this module depending on it.
        """
        payload: dict[str, Any] = {"kind": self.kind.value}
        if self.node_id is not None:
            payload["node"] = self.node_id
        if self.edge_id is not None:
            payload["edge"] = self.edge_id
        if self.touched_nodes:
            payload["touched"] = list(self.touched_nodes)
        if self.details:
            payload["details"] = {key: encode(value)
                                  for key, value in self.details.items()}
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any],
                     decode: Callable[[Any], Any]) -> "GraphChange":
        """Rebuild a change from :meth:`to_payload` output.

        Raises ``ValueError`` on an unknown change kind — the signal a codec
        turns into a versioning error.
        """
        kind = ChangeKind(payload["kind"])
        return cls(kind=kind,
                   node_id=payload.get("node"),
                   edge_id=payload.get("edge"),
                   touched_nodes=tuple(payload.get("touched", ())),
                   details={key: decode(value)
                            for key, value in payload.get("details", {}).items()})


ChangeListener = Callable[[GraphChange], None]


@dataclass
class GraphDelta:
    """An ordered collection of :class:`GraphChange` records.

    Provides the aggregate views the incremental machinery needs: all nodes
    whose neighbourhood may have changed, all removed element ids, and whether
    the delta has any additive effect at all.
    """

    changes: list[GraphChange] = field(default_factory=list)

    def record(self, change: GraphChange) -> None:
        self.changes.append(change)

    def extend(self, changes: Iterable[GraphChange]) -> None:
        self.changes.extend(changes)

    def __len__(self) -> int:
        return len(self.changes)

    def __iter__(self) -> Iterator[GraphChange]:
        return iter(self.changes)

    def __bool__(self) -> bool:
        return bool(self.changes)

    @property
    def touched_nodes(self) -> set[NodeId]:
        """Every node id whose label, properties, or incident edges may have changed."""
        touched: set[NodeId] = set()
        for change in self.changes:
            touched.update(change.touched_nodes)
            if change.node_id is not None:
                touched.add(change.node_id)
        return touched

    @property
    def removed_node_ids(self) -> set[NodeId]:
        removed: set[NodeId] = set()
        for change in self.changes:
            if change.kind is ChangeKind.REMOVE_NODE and change.node_id is not None:
                removed.add(change.node_id)
            if change.kind is ChangeKind.MERGE_NODES:
                merged = change.details.get("merged")
                if merged is not None:
                    removed.add(merged)
        return removed

    @property
    def removed_edge_ids(self) -> set[EdgeId]:
        removed: set[EdgeId] = set()
        for change in self.changes:
            if change.kind is ChangeKind.REMOVE_EDGE and change.edge_id is not None:
                removed.add(change.edge_id)
            removed.update(change.details.get("removed_edges", ()))
        return removed

    @property
    def added_node_ids(self) -> set[NodeId]:
        return {
            change.node_id
            for change in self.changes
            if change.kind is ChangeKind.ADD_NODE and change.node_id is not None
        }

    @property
    def added_edge_ids(self) -> set[EdgeId]:
        added: set[EdgeId] = set()
        for change in self.changes:
            if change.kind is ChangeKind.ADD_EDGE and change.edge_id is not None:
                added.add(change.edge_id)
            added.update(change.details.get("added_edges", ()))
        return added

    @property
    def has_additive_effect(self) -> bool:
        return any(change.is_additive for change in self.changes)

    @property
    def has_subtractive_effect(self) -> bool:
        return any(change.is_subtractive for change in self.changes)

    @property
    def created_node_ids(self) -> list[NodeId]:
        """Node ids this delta brings into existence, in creation order.

        Unlike :attr:`added_node_ids` this is an ordered list (the order the
        reservation scheme pairs fresh ids against) and it includes ids that
        a later change of the same delta removes again.
        """
        return [change.node_id for change in self.changes
                if change.kind is ChangeKind.ADD_NODE and change.node_id is not None]

    @property
    def created_edge_ids(self) -> list[EdgeId]:
        """Edge ids this delta brings into existence, in creation order
        (``ADD_EDGE`` edges plus the replacement edges of ``MERGE_NODES``)."""
        created: list[EdgeId] = []
        for change in self.changes:
            if change.kind is ChangeKind.ADD_EDGE and change.edge_id is not None:
                created.append(change.edge_id)
            elif change.kind is ChangeKind.MERGE_NODES:
                created.extend(change.details.get("added_edges", ()))
        return created

    def remap_ids(self, node_ids: Mapping[NodeId, NodeId] | None = None,
                  edge_ids: Mapping[EdgeId, EdgeId] | None = None) -> "GraphDelta":
        """A copy of the delta with element ids consistently rewritten.

        Every occurrence of a mapped id — the change's own ``node_id`` /
        ``edge_id``, ``touched_nodes``, and the id-bearing detail snapshots
        (``source`` / ``target`` / ``merged`` / ``added_edges`` /
        ``removed_edges`` / ``removed_edge_specs``) — is replaced; unmapped
        ids pass through untouched.  This is how a delta recorded in one id
        space (a shard's namespaced working copy, a replica's log) is rebased
        onto another graph's reserved ids before being replayed there.
        """
        node_map = dict(node_ids or {})
        edge_map = dict(edge_ids or {})
        if not node_map and not edge_map:
            return GraphDelta(list(self.changes))

        def n(value):
            return node_map.get(value, value)

        def e(value):
            return edge_map.get(value, value)

        def rewrite_details(details: dict[str, Any]) -> dict[str, Any]:
            rewritten = dict(details)
            for key, mapper in (("source", n), ("target", n), ("merged", n)):
                if key in rewritten:
                    rewritten[key] = mapper(rewritten[key])
            for key in ("added_edges", "removed_edges"):
                if key in rewritten:
                    rewritten[key] = tuple(e(eid) for eid in rewritten[key])
            for key in ("removed_edge_specs", "added_edge_specs"):
                if key in rewritten:
                    rewritten[key] = tuple(
                        {**spec, "id": e(spec["id"]), "source": n(spec["source"]),
                         "target": n(spec["target"])}
                        for spec in rewritten[key])
            return rewritten

        remapped = GraphDelta()
        for change in self.changes:
            remapped.record(GraphChange(
                kind=change.kind,
                node_id=n(change.node_id) if change.node_id is not None else None,
                edge_id=e(change.edge_id) if change.edge_id is not None else None,
                touched_nodes=tuple(n(node_id) for node_id in change.touched_nodes),
                details=rewrite_details(change.details)))
        return remapped

    def to_payload(self, encode: Callable[[Any], Any]) -> list[dict[str, Any]]:
        """Every change as a payload document, in order (see
        :meth:`GraphChange.to_payload`)."""
        return [change.to_payload(encode) for change in self.changes]

    @classmethod
    def from_payload(cls, payload: Iterable[Mapping[str, Any]],
                     decode: Callable[[Any], Any]) -> "GraphDelta":
        return cls([GraphChange.from_payload(doc, decode) for doc in payload])

    def merged_with(self, other: "GraphDelta") -> "GraphDelta":
        merged = GraphDelta(list(self.changes))
        merged.extend(other.changes)
        return merged

    def summary(self) -> dict[str, int]:
        """Count of changes per kind — handy for reports and tests."""
        counts: dict[str, int] = {}
        for change in self.changes:
            counts[change.kind.value] = counts.get(change.kind.value, 0) + 1
        return counts


@contextmanager
def recording(graph) -> Iterator["ChangeRecorder"]:
    """Attach a :class:`ChangeRecorder` to ``graph`` for the block's duration.

    The one listener-lifecycle implementation shared by delta inversion,
    delta replay, and ad-hoc mutation capture::

        with recording(graph) as recorder:
            ... mutate graph ...
        delta = recorder.drain()
    """
    recorder = ChangeRecorder()
    graph.add_listener(recorder)
    try:
        yield recorder
    finally:
        graph.remove_listener(recorder)


def _restore_properties(update, element_id: str, before: dict, after: dict) -> None:
    """Drive one element's properties from ``after`` back to ``before`` using
    the graph's own update mutation (so listeners stay in sync)."""
    update(element_id, properties=before,
           remove_keys=[key for key in after if key not in before])


def _invert_change(graph, change: GraphChange) -> None:
    """Apply the inverse of one elementary change to ``graph``.

    Relies on the state snapshots the graph embeds in change details
    (labels, properties, removed-edge specs); a change constructed by hand
    without them cannot be inverted.
    """
    kind = change.kind
    details = change.details
    try:
        if kind is ChangeKind.ADD_NODE:
            graph.remove_node(change.node_id)
        elif kind is ChangeKind.ADD_EDGE:
            graph.remove_edge(change.edge_id)
        elif kind is ChangeKind.REMOVE_EDGE:
            graph.add_edge(details["source"], details["target"], details["label"],
                           details["properties"], edge_id=change.edge_id)
        elif kind is ChangeKind.REMOVE_NODE:
            graph.add_node(details["label"], details["properties"],
                           node_id=change.node_id)
            for spec in details["removed_edge_specs"]:
                graph.add_edge(spec["source"], spec["target"], spec["label"],
                               spec["properties"], edge_id=spec["id"])
        elif kind is ChangeKind.UPDATE_NODE:
            _restore_properties(graph.update_node, change.node_id,
                                details["before"], details["after"])
        elif kind is ChangeKind.UPDATE_EDGE:
            _restore_properties(graph.update_edge, change.edge_id,
                                details["before"], details["after"])
        elif kind is ChangeKind.RELABEL_NODE:
            graph.relabel_node(change.node_id, details["before"])
        elif kind is ChangeKind.RELABEL_EDGE:
            graph.relabel_edge(change.edge_id, details["before"])
        elif kind is ChangeKind.MERGE_NODES:
            for edge_id in details["added_edges"]:
                graph.remove_edge(edge_id)
            keep = graph.node(change.node_id)
            _restore_properties(graph.update_node, change.node_id,
                                details["keep_properties_before"],
                                dict(keep.properties))
            graph.add_node(details["merged_label"], details["merged_properties"],
                           node_id=details["merged"])
            for spec in details["removed_edge_specs"]:
                graph.add_edge(spec["source"], spec["target"], spec["label"],
                               spec["properties"], edge_id=spec["id"])
        else:  # pragma: no cover - exhaustive over ChangeKind
            raise ValueError(f"unknown change kind {kind!r}")
    except KeyError as exc:
        if type(exc) is not KeyError:
            raise  # a graph error (NodeNotFound etc.), not a missing snapshot
        raise ValueError(
            f"change {kind.value!r} lacks the detail snapshot {exc} needed to "
            "invert it (was it recorded by a PropertyGraph mutation?)") from None


def apply_inverse(graph, delta: GraphDelta) -> GraphDelta:
    """Undo every change of ``delta`` on ``graph``, newest first.

    The inverse mutations run through the graph's ordinary mutation API, so
    change listeners (candidate index, recorders) observe them like any other
    edit.  Returns the delta of the inverse mutations.  After this call the
    graph is element-for-element identical (same ids, labels, properties) to
    its state before ``delta`` was applied — the machinery behind
    :meth:`repro.api.RepairSession.rollback`.
    """
    with recording(graph) as recorder:
        for change in reversed(delta.changes):
            _invert_change(graph, change)
    return recorder.drain()


def _replay_merge_exactly(graph, change: GraphChange) -> None:
    """Replay one ``MERGE_NODES`` change element-for-element.

    The recorded outcome — which edges were removed, which replacement edges
    were created (and with which ids), and the kept node's merged property
    map — is re-executed directly instead of re-running ``merge_nodes``.
    Exactness is what lets a changefeed subscriber reconstruct a replica that
    is id-identical to the publisher, and what lets a later change of the
    same log refer to a replacement edge by id.
    """
    details = change.details
    graph.remove_node(details["merged"])  # removes its incident edges too
    # edges incident to the *kept* node were detached by the merge as well;
    # remove any the node removal did not already take with it
    for spec in details["removed_edge_specs"]:
        if graph.has_edge(spec["id"]):
            graph.remove_edge(spec["id"])
    for spec in details["added_edge_specs"]:
        graph.add_edge(spec["source"], spec["target"], spec["label"],
                       spec["properties"], edge_id=spec["id"])
    _restore_properties(graph.update_node, change.node_id,
                        details["keep_properties_after"],
                        details["keep_properties_before"])


def replay_delta(graph, delta: GraphDelta) -> GraphDelta:
    """Re-apply a recorded ``delta`` to ``graph`` (oldest change first).

    Additions, removals, updates, and relabels replay exactly (ids included).
    ``MERGE_NODES`` also replays exactly — removed edges, replacement-edge
    ids, and the merged property map are re-executed from the recorded
    outcome — when the change carries the full outcome snapshots
    (``added_edge_specs`` / ``keep_properties_after``); a change recorded
    without them (e.g. built by hand) falls back to *semantic* replay, where
    the merge re-executes and redirected-edge ids may differ from the
    original run.  Returns the delta recorded while replaying.
    """
    with recording(graph) as recorder:
        for change in delta.changes:
            kind = change.kind
            details = change.details
            try:
                if kind is ChangeKind.ADD_NODE:
                    graph.add_node(details["label"], details["properties"],
                                   node_id=change.node_id)
                elif kind is ChangeKind.ADD_EDGE:
                    graph.add_edge(details["source"], details["target"],
                                   details["label"], details["properties"],
                                   edge_id=change.edge_id)
                elif kind is ChangeKind.REMOVE_NODE:
                    graph.remove_node(change.node_id)
                elif kind is ChangeKind.REMOVE_EDGE:
                    graph.remove_edge(change.edge_id)
                elif kind is ChangeKind.UPDATE_NODE:
                    _restore_properties(graph.update_node, change.node_id,
                                        details["after"], details["before"])
                elif kind is ChangeKind.UPDATE_EDGE:
                    _restore_properties(graph.update_edge, change.edge_id,
                                        details["after"], details["before"])
                elif kind is ChangeKind.RELABEL_NODE:
                    graph.relabel_node(change.node_id, details["after"])
                elif kind is ChangeKind.RELABEL_EDGE:
                    graph.relabel_edge(change.edge_id, details["after"])
                elif kind is ChangeKind.MERGE_NODES:
                    if "added_edge_specs" in details \
                            and "keep_properties_after" in details:
                        _replay_merge_exactly(graph, change)
                    else:
                        graph.merge_nodes(
                            change.node_id, details["merged"],
                            prefer_kept_properties=details.get(
                                "prefer_kept_properties", True),
                            drop_duplicate_edges=details.get(
                                "drop_duplicate_edges", True))
                else:  # pragma: no cover - exhaustive over ChangeKind
                    raise ValueError(f"unknown change kind {kind!r}")
            except KeyError as exc:
                if type(exc) is not KeyError:
                    raise  # a graph error, not a missing snapshot
                raise ValueError(
                    f"change {kind.value!r} lacks the detail snapshot {exc} "
                    "needed to replay it") from None
    return recorder.drain()


def rebase_delta(delta: GraphDelta, graph,
                 node_allocator: Callable[[int], list[str]] | None = None,
                 edge_allocator: Callable[[int], list[str]] | None = None,
                 ) -> tuple[GraphDelta, dict[str, str], dict[str, str]]:
    """Rewrite a foreign delta's created ids onto ids reserved from ``graph``.

    The id-space reservation scheme behind delta shipping: every node/edge id
    the delta *creates* is paired, in creation order, with a fresh id reserved
    from the target graph's generators (or from the given allocator hooks —
    any ``allocator(count) -> ids`` callable, e.g. a replicated id service).
    Reserved ids can never be handed out by the target graph again, so
    replaying the rebased delta cannot collide with primary-graph ids however
    many other deltas land in between.

    Returns ``(rebased delta, node id map, edge id map)``; the maps translate
    original created ids to their reserved replacements so a coordinator can
    chain references across a sequence of deltas.
    """
    node_allocator = node_allocator or graph.reserve_node_ids
    edge_allocator = edge_allocator or graph.reserve_edge_ids
    created_nodes = delta.created_node_ids
    created_edges = delta.created_edge_ids
    node_map = dict(zip(created_nodes, node_allocator(len(created_nodes)))) \
        if created_nodes else {}
    edge_map = dict(zip(created_edges, edge_allocator(len(created_edges)))) \
        if created_edges else {}
    return delta.remap_ids(node_ids=node_map, edge_ids=edge_map), node_map, edge_map


class ChangeRecorder:
    """A change listener that accumulates changes into a :class:`GraphDelta`.

    Usage::

        recorder = ChangeRecorder()
        graph.add_listener(recorder)
        ... mutate graph ...
        delta = recorder.delta
        graph.remove_listener(recorder)
    """

    def __init__(self) -> None:
        self.delta = GraphDelta()

    def __call__(self, change: GraphChange) -> None:
        self.delta.record(change)

    def drain(self) -> GraphDelta:
        """Return the collected delta and start a fresh one."""
        collected, self.delta = self.delta, GraphDelta()
        return collected
