"""Property-graph substrate: data model, change tracking, I/O, statistics,
generators, isomorphism, and edit distance (system S1 in DESIGN.md)."""

from repro.graph.delta import (
    ChangeKind,
    ChangeRecorder,
    GraphChange,
    GraphDelta,
    apply_inverse,
    rebase_delta,
    recording,
    replay_delta,
)
from repro.graph.edit_distance import (
    EditCosts,
    EditDistanceResult,
    approximate_edit_distance,
    labeled_edit_distance,
)
from repro.graph.elements import Edge, Node
from repro.graph.generators import (
    community_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    preferential_attachment_graph,
    star_graph,
)
from repro.graph.io import (
    Triple,
    dump_json,
    dumps_json,
    graph_from_dict,
    graph_to_dict,
    graph_to_triples,
    load_json,
    loads_json,
    read_edge_list,
    triples_to_graph,
    write_edge_list,
)
from repro.graph.isomorphism import are_isomorphic, contains_subgraph, find_subgraph_embedding
from repro.graph.property_graph import PropertyGraph
from repro.graph.statistics import (
    GraphStatistics,
    compute_statistics,
    degree_histogram,
    functional_predicate_candidates,
    label_pair_histogram,
)

__all__ = [
    "PropertyGraph",
    "Node",
    "Edge",
    "GraphChange",
    "GraphDelta",
    "ChangeKind",
    "ChangeRecorder",
    "apply_inverse",
    "replay_delta",
    "rebase_delta",
    "recording",
    "EditCosts",
    "EditDistanceResult",
    "labeled_edit_distance",
    "approximate_edit_distance",
    "Triple",
    "graph_to_dict",
    "graph_from_dict",
    "dump_json",
    "load_json",
    "dumps_json",
    "loads_json",
    "graph_to_triples",
    "triples_to_graph",
    "write_edge_list",
    "read_edge_list",
    "are_isomorphic",
    "contains_subgraph",
    "find_subgraph_embedding",
    "GraphStatistics",
    "compute_statistics",
    "degree_histogram",
    "label_pair_histogram",
    "functional_predicate_candidates",
    "erdos_renyi_graph",
    "preferential_attachment_graph",
    "community_graph",
    "path_graph",
    "star_graph",
    "cycle_graph",
]
