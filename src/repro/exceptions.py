"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so that
callers embedding the repair engine can catch a single base class.  More
specific subclasses distinguish graph-level problems (missing nodes, invalid
mutations), pattern/rule definition problems, analysis failures, and repair
execution failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Graph layer
# ---------------------------------------------------------------------------


class GraphError(ReproError):
    """Base class for property-graph errors."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id was referenced that does not exist in the graph."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"node {node_id!r} does not exist")
        self.node_id = node_id


class EdgeNotFoundError(GraphError, KeyError):
    """An edge id was referenced that does not exist in the graph."""

    def __init__(self, edge_id: object) -> None:
        super().__init__(f"edge {edge_id!r} does not exist")
        self.edge_id = edge_id


class DuplicateElementError(GraphError, ValueError):
    """A node or edge with an already-used id was added to the graph."""


class GraphMutationError(GraphError):
    """A graph mutation could not be performed (e.g. merging a node into itself)."""


class SerializationError(GraphError):
    """Raised when a graph cannot be (de)serialised."""


# ---------------------------------------------------------------------------
# Pattern / matching layer
# ---------------------------------------------------------------------------


class PatternError(ReproError):
    """Base class for pattern-definition errors."""


class InvalidPatternError(PatternError, ValueError):
    """The pattern is structurally invalid (empty, disconnected, bad variable refs)."""


class MatchingError(ReproError):
    """Base class for errors raised while matching a pattern against a graph."""


class MatchLimitExceeded(MatchingError):
    """The matcher found more matches than the configured hard limit."""

    def __init__(self, limit: int) -> None:
        super().__init__(f"match enumeration exceeded the limit of {limit} matches")
        self.limit = limit


class MatchTimeout(MatchingError):
    """The matcher exceeded its time budget."""

    def __init__(self, budget_seconds: float) -> None:
        super().__init__(f"matching exceeded the time budget of {budget_seconds}s")
        self.budget_seconds = budget_seconds


# ---------------------------------------------------------------------------
# Rule layer
# ---------------------------------------------------------------------------


class RuleError(ReproError):
    """Base class for rule-definition errors."""


class InvalidRuleError(RuleError, ValueError):
    """The rule definition is invalid (unknown variables, illegal operation mix)."""


class RuleParseError(RuleError, ValueError):
    """The textual GRR DSL could not be parsed."""

    def __init__(self, message: str, line: int | None = None) -> None:
        location = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line


# ---------------------------------------------------------------------------
# Analysis layer
# ---------------------------------------------------------------------------


class AnalysisError(ReproError):
    """Base class for rule-set static-analysis errors."""


class InconsistentRuleSetError(AnalysisError):
    """Raised when an operation requires a consistent rule set but analysis says no."""

    def __init__(self, message: str, evidence: object = None) -> None:
        super().__init__(message)
        self.evidence = evidence


# ---------------------------------------------------------------------------
# Repair layer
# ---------------------------------------------------------------------------


class RepairError(ReproError):
    """Base class for errors raised during repair planning or execution."""


class RepairExecutionError(RepairError):
    """A repair operation failed to apply to the graph."""


class RepairBudgetExceeded(RepairError):
    """The repair loop hit its iteration or time budget before reaching a fixpoint."""

    def __init__(self, message: str, iterations: int | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations


class SessionStateError(RepairError):
    """A :class:`~repro.api.RepairSession` operation is illegal in the
    session's current state (e.g. repairing with uncommitted staged edits,
    or using a closed session)."""


# ---------------------------------------------------------------------------
# Parallel / service layer
# ---------------------------------------------------------------------------


class WorkerPoolError(RepairError):
    """A persistent worker pool failed beyond what supervision could heal.

    :class:`repro.parallel.pool.WorkerPool` supervises its workers — a
    crashed or hung worker is respawned and the in-flight shard command is
    retried once — so this error only escapes when recovery itself failed
    (a worker died twice in one barrier, a retry errored again, or no
    rebinder was available).  It is raised after the pool has been shut
    down: a pool that produced this error holds no live worker processes,
    and the caller's circuit breaker should count it as one failure before
    degrading to the sequential backend."""


class ServiceError(RepairError):
    """A :class:`repro.service.GraphRepairService` /
    :class:`repro.service.SessionManager` operation failed (unknown or
    duplicate session name, unroutable edit, closed service)."""


# ---------------------------------------------------------------------------
# Ingestion layer
# ---------------------------------------------------------------------------


class IngestError(RepairError):
    """An :mod:`repro.ingest` operation failed (unknown tenant, stopped
    scheduler, submission to a closed front)."""


class AdmissionError(IngestError):
    """A submission was refused by admission control.

    Raised (or used to resolve the submission's ack) when a tenant's edit
    queue is full under the ``"reject"`` policy, when a ``"block"``-policy
    submit timed out, when a queued edit was shed under ``"shed-oldest"``,
    or when the front shut down with the edit still queued.  ``reason`` is
    one of ``"full"``, ``"timeout"``, ``"shed"``, ``"shutdown"``.
    """

    def __init__(self, message: str, tenant: str = "", reason: str = "full") -> None:
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason


# ---------------------------------------------------------------------------
# Durability layer
# ---------------------------------------------------------------------------


class DurabilityError(ReproError):
    """A durable-log operation failed: undecodable wire payload, corrupt WAL
    record or snapshot, unknown format version, an I/O failure during an
    append/fsync (e.g. ENOSPC), or a recovery that cannot proceed (no
    snapshot and no log).

    ``tenant`` and ``sequence`` carry the failing commit's context when
    known: a WAL append that dies under a committing call names the tenant
    and the global sequence whose acknowledgement it prevented."""

    def __init__(self, message: str, tenant: str = "", sequence: int = 0) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.sequence = sequence


class ReplicationError(DurabilityError):
    """A changefeed-replication operation failed (protocol violation, the
    primary went away mid-stream, or a replica fell irrecoverably behind)."""


# ---------------------------------------------------------------------------
# Experiment / dataset layer
# ---------------------------------------------------------------------------


class DatasetError(ReproError):
    """Base class for dataset-generation errors."""


class ExperimentError(ReproError):
    """Base class for experiment-harness errors."""
