"""Deterministic testing utilities for the repro stack.

`repro.testing` is part of the library proper (not the test suite): it
holds the fault-injection harness that production modules accept as an
optional collaborator.  Chaos tests and the ``chaos-kg`` benchmark
scenario build :class:`~repro.testing.faults.FaultPlan` objects and hand
them to :class:`~repro.parallel.pool.WorkerPool` /
:class:`~repro.durability.wal.WriteAheadLog`; with no plan supplied the
injection points are inert.
"""
from __future__ import annotations

from repro.testing.faults import Fault, FaultPlan, InjectedFault

__all__ = ["Fault", "FaultPlan", "InjectedFault"]
