"""Deterministic fault injection for chaos tests and benchmarks.

A :class:`FaultPlan` is a picklable script of failures.  Production code
exposes named *injection sites* — a spot where it asks the plan "does a
fault fire here?" — and the plan decides based on declaration-order
matching with per-fault hit counters.  Sites currently wired in:

``worker.command``
    :func:`repro.parallel.pool._pool_worker_main` (and the inline
    dispatcher) fires this before handling each protocol command, with
    ``worker`` (index), ``command`` (``bind``/``ship``/``repair``) and
    ``key`` (shard key) context.
``worker.stop``
    Fired when a pool worker receives its stop sentinel — the ``wedge``
    kind here reproduces a worker that ignores SIGTERM during
    :meth:`WorkerPool.close`.
``wal.append`` / ``wal.fsync``
    :meth:`repro.durability.wal.WriteAheadLog.append` fires these around
    the frame write and the fsync — ``enospc`` and ``torn`` simulate a
    full disk and a power cut mid-frame.

Every :class:`Fault` fires exactly once: its ``at`` field counts *matching*
calls to the site (1-based), so ``Fault("worker.command", "crash", at=3,
command="repair")`` kills the worker on its third repair command.  Plans
are pickled into spawned pool workers; each process therefore counts its
own hits, which makes ``worker=`` filters and per-process ``at`` counting
deterministic under the spawn start method.

Fault kinds and their effects (see :func:`perform`):

========  ============================================================
``crash``   ``SIGKILL`` the current process (spawn workers only).
``hang``    Sleep ``seconds`` (default: effectively forever) — drives
            the coordinator's reply-deadline path.
``wedge``   Ignore ``SIGTERM`` *then* hang — defeats the polite half of
            ``close()`` so only the kill escalation can reap the worker.
``slow``    Sleep ``seconds`` then continue normally.
``error``   Raise :class:`InjectedFault` from the site.
``enospc``  Raise ``OSError(ENOSPC)`` — a full disk during a WAL write.
``torn``    Handled by the WAL itself: write a partial frame, then raise
            ``OSError`` — a torn tail for recovery to truncate.
========  ============================================================
"""
from __future__ import annotations

import errno
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Fault", "FaultPlan", "InjectedFault", "FAULT_KINDS", "perform"]

FAULT_KINDS = ("crash", "hang", "wedge", "slow", "error", "enospc", "torn")

#: Sleep used by ``hang``/``wedge`` when no explicit duration is given —
#: long enough that only an external deadline or kill ends it.
_FOREVER_SECONDS = 3600.0


class InjectedFault(RuntimeError):
    """Raised from an injection site by a fault of kind ``error``."""


@dataclass(frozen=True)
class Fault:
    """One scripted failure.

    ``site`` names the injection point; ``kind`` the effect.  ``at`` is the
    1-based index of the *matching* site hit that triggers the fault
    (counted per process).  ``worker``/``command``/``key`` narrow which
    hits match — a ``None`` filter matches everything.  ``seconds``
    parameterises ``hang``/``slow``/``wedge``.
    """

    site: str
    kind: str
    at: int = 1
    worker: Optional[int] = None
    command: Optional[str] = None
    key: Optional[str] = None
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.at < 1:
            raise ValueError(f"at must be >= 1, got {self.at}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")

    def matches(self, site: str, worker: Optional[int], command: Optional[str],
                key: Optional[str]) -> bool:
        if self.site != site:
            return False
        if self.worker is not None and self.worker != worker:
            return False
        if self.command is not None and self.command != command:
            return False
        if self.key is not None and self.key != key:
            return False
        return True


@dataclass
class FaultPlan:
    """A deterministic, picklable script of :class:`Fault` declarations.

    :meth:`take` returns the fault (if any) that fires for a site hit and
    marks it spent; :meth:`fire` additionally performs its effect.  Each
    fault keeps its own hit counter, so several faults can arm on the
    same site at different depths (``at=1..N`` fires on hits ``1..N``).
    When two armed faults would fire on the same hit, declaration order
    wins.  Counters live on the plan instance: a plan pickled into a
    spawned worker counts that worker's hits independently.
    """

    faults: tuple = ()
    _counts: list = field(default_factory=list, repr=False)
    _fired: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self.faults = tuple(self.faults)
        if not self._counts:
            self._counts = [0] * len(self.faults)
            self._fired = [False] * len(self.faults)

    def take(self, site: str, *, worker: Optional[int] = None,
             command: Optional[str] = None,
             key: Optional[str] = None) -> Optional[Fault]:
        """Advance matching hit counters; return the first fault that fires."""
        fired: Optional[Fault] = None
        for index, fault in enumerate(self.faults):
            if self._fired[index] or not fault.matches(site, worker, command, key):
                continue
            self._counts[index] += 1
            if fired is None and self._counts[index] >= fault.at:
                self._fired[index] = True
                fired = fault
        return fired

    def fire(self, site: str, *, worker: Optional[int] = None,
             command: Optional[str] = None,
             key: Optional[str] = None) -> Optional[Fault]:
        """Like :meth:`take`, but also :func:`perform` the fault's effect."""
        fault = self.take(site, worker=worker, command=command, key=key)
        if fault is not None:
            perform(fault)
        return fault

    @property
    def exhausted(self) -> bool:
        """True once every declared fault has fired (in this process)."""
        return all(self._fired)


def perform(fault: Fault) -> None:
    """Execute ``fault``'s effect in the current process.

    ``torn`` is intentionally not handled here — only the WAL knows how to
    write a partial frame — so sites that cannot honour it treat it as a
    generic injected ``OSError``.
    """
    if fault.kind == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(_FOREVER_SECONDS)  # unreachable; SIGKILL is not deliverable
    elif fault.kind == "wedge":
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(fault.seconds or _FOREVER_SECONDS)
    elif fault.kind == "hang":
        time.sleep(fault.seconds or _FOREVER_SECONDS)
    elif fault.kind == "slow":
        time.sleep(fault.seconds)
    elif fault.kind == "error":
        raise InjectedFault(
            f"injected fault at {fault.site!r} (command={fault.command!r}, "
            f"key={fault.key!r})")
    elif fault.kind in ("enospc", "torn"):
        code = errno.ENOSPC if fault.kind == "enospc" else errno.EIO
        raise OSError(code, f"injected fault at {fault.site!r}: {fault.kind}")
    else:  # pragma: no cover - __post_init__ validates kinds
        raise ValueError(f"unknown fault kind {fault.kind!r}")
