"""The ``"sharded"`` repair backend: fan-out / fan-in over shard workers.

:class:`ShardedRepairer` implements the :class:`repro.api.Repairer`
plan/apply/maintain protocol around a persistent primary
:class:`~repro.repair.fast.FastRepairCore` (exactly like the fast backend),
but its ``run()`` turns one repair pass into a pipeline:

1. **partition** — cut the primary graph into rule-radius-aware shards
   (:mod:`repro.parallel.partition`);
2. **fan-out** — serialize each shard's working copy and repair all of them
   in a ``multiprocessing`` spawn pool (:mod:`repro.parallel.worker`), each
   worker applying only the violations its core owns;
3. **fan-in** — merge the per-shard deltas onto the primary graph with
   reserved ids and cross-shard conflict detection
   (:mod:`repro.parallel.merge`), then fold the whole merged delta into the
   primary core's matcher state under **one** incremental-maintenance pass;
4. **settle** — drain the primary core sequentially for whatever the fan-out
   could not own: frontier violations (matches spanning shard cores),
   conflict-rejected repairs, and cascades discovered by the merge pass.

Determinism: partitioning, shard-local repair, fan-in order, and the settle
drain are all deterministic for a fixed input, so two runs over the same
graph produce identical graphs — whatever the pool's scheduling order was.
On conflict-free partitions the result is also equivalent to the sequential
fast backend's (the parallel equivalence suite pins this across all three
dataset generators).

Degradation is graceful and explicit: ``workers <= 1``, a graph smaller than
``min_partition_nodes``, or a partition that collapses to one shard all skip
the fan-out entirely and behave exactly like the fast backend.  The warm
path additionally degrades *per call* on failures (docs/RESILIENCE.md): a
pool failure that supervision could not heal records one strike on the
pool's circuit breaker and this call settles through the sequential drain
(workers propose-then-revert, so a failed fan-out left the primary graph
untouched and the drain owns the whole workload); an **open** breaker skips
the fan-out up front until its half-open probe succeeds.  Correctness under
fallback is exactly the sharded==sequential equivalence the parallel suite
pins.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro import telemetry
from repro.exceptions import WorkerPoolError
from repro.graph.delta import GraphDelta, recording
from repro.graph.property_graph import PropertyGraph
from repro.matching.vf2 import MatchingStats
from repro.parallel.merge import DeltaMerger, MergeOutcome
from repro.parallel.partition import ShardPlan, partition_graph, rule_radius
from repro.parallel.replica import project_delta
from repro.parallel.worker import (
    ShardResult,
    ShardTask,
    execute_tasks,
    shard_payload,
)
from repro.repair.events import MaintenanceEvent
from repro.repair.executor import ExecutionOutcome
from repro.repair.fast import FastRepairCore
from repro.repair.report import RepairReport
from repro.repair.violation import Violation, ViolationStatus
from repro.rules.grr import RuleSet
from repro.telemetry.log import get_logger, log_event

_log = get_logger("parallel.backend")


@dataclass
class FanoutReport:
    """Diagnostics of the last fan-out (exposed as ``last_fanout`` and
    surfaced by the parallel example / benchmark)."""

    shards: int = 0
    radius: int = 0
    workers: int = 0
    used_processes: bool = False
    cut_edges: int = 0
    halo_fraction: float = 0.0
    shard_repairs: int = 0
    accepted: int = 0
    rejected: int = 0
    conflicts: list[str] = field(default_factory=list)
    shard_violations_detected: int = 0
    shard_elapsed_seconds: float = 0.0
    # summed worker-side search effort: nodes the shard matchers tried, and
    # how many candidates their value buckets scanned (predicate pushdown at
    # work inside the workers — the shards rebuild the same candidate index
    # from their payloads, so the pushdown travels with them)
    shard_nodes_tried: int = 0
    shard_value_bucket_candidates: int = 0
    shard_range_bucket_candidates: int = 0
    # summed worker-side cost-planner activity (the shards run the same
    # planner as the sequential core, so these mirror planner_plans /
    # planner_replans in the coordinator's MatchingStats)
    shard_planner_plans: int = 0
    shard_planner_replans: int = 0
    # -- warm-pool diagnostics (all zero on the cold path) --------------
    #: this fan-out went through the persistent pool
    warm: bool = False
    #: worker processes spawned during this run (0 after warm-up)
    pool_spawns: int = 0
    #: full shard payloads shipped this run (cold binds + staleness rebinds)
    pool_binds: int = 0
    #: incremental delta shipments this run
    pool_ships: int = 0
    #: shards rebound because a committed delta was not expressible on their
    #: standing replica
    stale_rebinds: int = 0
    #: fraction of the primary graph's nodes owned by a shard core at this
    #: fan-out (1 - coverage settles at the coordinator) — the trigger
    #: signal online repartitioning will watch (ROADMAP item 2)
    ownership_coverage: float = 0.0
    #: smallest-to-largest owned-core ratio across shards (1.0 = balanced)
    shard_balance: float = 0.0
    #: workers respawned by pool supervision during this run
    pool_respawns: int = 0
    #: shard commands re-driven (rebind + retry) by supervision this run
    pool_retries: int = 0
    #: this run degraded to the sequential drain (pool failure beyond
    #: supervision, or the circuit breaker refusing the fan-out)
    fallback: bool = False
    #: why: ``"pool-failure"`` or ``"breaker-open"`` ("" when no fallback)
    fallback_reason: str = ""

    @property
    def ran(self) -> bool:
        return self.shards > 0


#: distinguishes pool shard keys of coexisting warm backends (a service
#: shares one pool between many tenants' backends)
_BACKEND_SEQUENCE = itertools.count()


@dataclass
class _ReplicaTracker:
    """Coordinator-side bookkeeping for one standing shard replica."""

    index: int
    namespace: str
    key: str
    core: set[str]
    #: the replica's current node set (extraction membership + adoptions)
    nodes: set[str] = field(default_factory=set)
    bound: bool = False
    stale: bool = True          # an unbound replica is stale by definition
    stale_reason: str = "never bound"


class ShardedRepairer:
    """Sharded multi-process repair behind the session's backend seam.

    Two fan-out modes share the merge/settle machinery:

    * **cold** (default): every ``run()`` spawns a fresh spawn-pool, ships
      full shard payloads, and throws the workers away — stateless and
      simple, but spawn + per-shard re-detection dominate repeated calls;
    * **warm** (``config.warm_pool``): a persistent
      :class:`~repro.parallel.pool.WorkerPool` holds standing shard replicas
      across calls; committed deltas (session commits, merged repairs,
      settle repairs) are projected per shard and shipped
      (:mod:`repro.parallel.replica`), so worker detection is incremental
      and nothing is spawned after warm-up.  A shard whose replica cannot
      express a committed delta is rebound from a fresh extraction.

    The pool may be supplied (a service sharing one pool across tenants) or
    is created lazily and owned — an owned pool is closed with the backend,
    so a session ``close()`` never leaks worker processes.
    """

    name = "sharded"
    cumulative_report = True

    def __init__(self, config, events=None, pool=None) -> None:
        self.config = config
        self.events = events
        self.core: FastRepairCore | None = None
        self.last_fanout = FanoutReport()
        self.pool = pool
        self._owns_pool = False
        self._graph: PropertyGraph | None = None
        self._rules: RuleSet | None = None
        self._key_prefix = f"b{next(_BACKEND_SEQUENCE)}"
        self._warm_plan: ShardPlan | None = None
        self._warm_degraded = False
        self._replicas: dict[int, _ReplicaTracker] = {}
        self._unshipped: list[GraphDelta] = []
        #: pool generation the replicas were bound under; a mismatch means
        #: the pool restarted (failure recovery) and every replica is gone
        self._pool_generation = -1

    # ------------------------------------------------------------------
    # Repairer protocol
    # ------------------------------------------------------------------

    def bind(self, graph: PropertyGraph, rules: RuleSet) -> None:
        self._graph = graph
        self._rules = rules
        self.core = FastRepairCore(graph, rules,
                                   config=self.config.to_fast_config(),
                                   events=self.events)

    def plan(self) -> list[Violation]:
        return self.core.pending()

    def apply(self, violation: Violation) -> ExecutionOutcome:
        if not self.core.validate(violation):
            return ExecutionOutcome(applied=False, error="violation is obsolete")
        return self.core.execute(violation)

    def _track_unshipped(self, delta: GraphDelta) -> None:
        """Queue a committed primary delta for the standing replicas.

        Only once replicas actually stand (a warm plan exists) and the
        backend has not permanently degraded — before the first fan-out the
        binds extract the then-current graph anyway, and a degraded backend
        will never ship, so accumulating would leak without bound.
        """
        if delta and self._warm_plan is not None and not self._warm_degraded:
            self._unshipped.append(delta)

    def maintain(self, delta: GraphDelta, source: str = "commit") -> MaintenanceEvent:
        if self.config.warm_pool:
            # committed external edits must reach the standing replicas too;
            # shipped (projected per shard) before the next warm fan-out
            self._track_unshipped(delta)
        return self.core.maintain(delta, source=source)

    def stats(self) -> MatchingStats:
        return self.core.stats

    def ownership_coverage(self) -> tuple[float, float]:
        """``(coverage, balance)`` of the standing warm partition.

        *Coverage* is the fraction of the primary graph's current nodes that
        some shard core owns; nodes created since partitioning are adopted
        as unowned context and settle at the coordinator, so a long-lived
        growing tenant's coverage decays toward 0 — the trigger signal for
        online repartitioning.  *Balance* is the smallest owned core divided
        by the largest (1.0 = perfectly even shards).  ``(0.0, 0.0)`` before
        the first warm fan-out or on a degraded/cold backend.
        """
        if not self._replicas or self._graph is None:
            return 0.0, 0.0
        total = self._graph.num_nodes
        if total == 0:
            return 0.0, 0.0
        core_sizes = []
        owned = 0
        for tracker in self._replicas.values():
            alive = sum(1 for node_id in tracker.core
                        if self._graph.has_node(node_id))
            core_sizes.append(alive)
            owned += alive
        largest = max(core_sizes)
        balance = (min(core_sizes) / largest) if largest else 0.0
        return owned / total, balance

    def close(self) -> None:
        if self.core is not None:
            self.core.close()
        if self._owns_pool and self.pool is not None:
            self.pool.close()
            self.pool = None

    # ------------------------------------------------------------------
    # the fan-out / fan-in run
    # ------------------------------------------------------------------

    def run(self) -> RepairReport:
        self.last_fanout = FanoutReport()
        if self.config.warm_pool:
            return self._run_warm()
        if self._should_fan_out():
            self._fan_out()
        # settle: frontier violations, conflict-rejected repairs, and
        # anything the merge pass discovered — or the entire workload when
        # the fan-out was skipped (graceful single-worker degradation)
        self.core.drain()
        return self.core.finalize()

    def _run_warm(self) -> RepairReport:
        """One warm repair pass: ship → fan out → merge → settle.

        Every primary mutation of this run — merge replays and settle
        repairs — is recorded and queued for the replicas, so the *next*
        call's shard detection starts from exactly this call's outcome.

        Failure is degraded, not raised: the fan-out is guarded by the
        pool's circuit breaker, and a :class:`WorkerPoolError` that escaped
        supervision falls back to the sequential drain for this call —
        workers propose-then-revert, so a failed fan-out never left partial
        mutations on the primary graph, and the drain repairs everything
        the fan-out would have.
        """
        with recording(self._graph) as recorder:
            if self._should_fan_out_warm():
                pool = self._ensure_pool()
                if not pool.breaker.allow():
                    self._note_fallback("breaker-open",
                                        f"circuit breaker {pool.breaker.state}"
                                        ": warm fan-out refused")
                else:
                    try:
                        self._fan_out_warm()
                    except WorkerPoolError as exc:
                        pool.breaker.record_failure()
                        # the pool shut itself down; the standing replicas
                        # are gone and queued deltas have nothing to feed —
                        # the post-failure rebinds extract fresh working
                        # copies from the then-current graph
                        self._unshipped.clear()
                        self._note_fallback("pool-failure", str(exc))
                    else:
                        pool.breaker.record_success()
            self.core.drain()
        self._track_unshipped(recorder.drain())
        return self.core.finalize()

    def _note_fallback(self, reason: str, detail: str) -> None:
        fanout = self.last_fanout
        fanout.fallback = True
        fanout.fallback_reason = reason
        if self.pool is not None:
            self.pool.stats.fallback_repairs += 1
        log_event(_log, "warning", "warm-fanout-fallback",
                  tenant=self._graph.name, reason=reason, detail=detail)
        if telemetry.TELEMETRY.enabled:
            telemetry.inc("repro_repair_fallbacks_total",
                          tenant=self._graph.name, reason=reason)

    def _should_fan_out(self) -> bool:
        config = self.config
        if config.workers <= 1 or (config.shard_count or config.workers) <= 1:
            return False
        if config.max_repairs is not None:
            # max_repairs caps the repairs of one run() call; fanning out
            # would hand every worker (and the settle drain) an independent
            # budget and silently multiply the cap — degrade to the single
            # sequential drain, whose budget accounting is exact
            return False
        if self._graph.num_nodes < config.min_partition_nodes:
            return False
        return self.core.has_pending()

    # ------------------------------------------------------------------
    # the warm path
    # ------------------------------------------------------------------

    def _should_fan_out_warm(self) -> bool:
        if self._warm_degraded:
            return False
        config = self.config
        if config.workers <= 1 or (config.shard_count or config.workers) <= 1 \
                or config.max_repairs is not None:
            # same viability rules as the cold path (see _should_fan_out),
            # but permanent: the config cannot change over a backend's life
            self._warm_degraded = True
            return False
        if self._warm_plan is None \
                and self._graph.num_nodes < config.min_partition_nodes:
            # too small to be worth partitioning; once replicas stand, they
            # keep serving even if the graph later shrinks below the floor
            self._warm_degraded = True
            return False
        return self.core.has_pending()

    def _ensure_pool(self):
        if self.pool is None:
            from repro.parallel.pool import WorkerPool

            self.pool = WorkerPool(self.config.workers,
                                   inline=self.config.parallel_inline)
            self._owns_pool = True
        return self.pool

    def _ensure_warm_plan(self) -> ShardPlan | None:
        if self._warm_plan is not None:
            return self._warm_plan
        config = self.config
        shard_count = config.shard_count or config.workers
        radius = config.shard_radius if config.shard_radius is not None \
            else rule_radius(self._rules)
        plan = partition_graph(self._graph, shard_count, radius)
        if len(plan) <= 1:
            # one shard would just serialise through a worker; stay on the
            # plain drain for the backend's lifetime
            self._warm_degraded = True
            return None
        self._warm_plan = plan
        for shard in plan.shards:
            self._replicas[shard.index] = _ReplicaTracker(
                index=shard.index, namespace=shard.namespace,
                key=f"{self._key_prefix}:{shard.index}",
                core=set(shard.core))
        return plan

    def _halo_intact(self, tracker: _ReplicaTracker, radius: int,
                     projection) -> bool:
        """Whether the replica's node set still covers the core's full
        ``radius``-neighbourhood on the *current* primary graph.

        Edge additions between two replica members can shorten primary
        distances, pulling nodes that were beyond the radius at extraction
        time inside it; such nodes are absent from the replica, so shard
        decisions about core-bound matches could silently diverge.  Checked
        against the candidate membership *after* the projection (adoptions
        and removals applied).
        """
        members = (set(tracker.nodes) | projection.adopted_nodes) \
            - projection.removed_nodes
        core = {node_id for node_id in tracker.core
                if self._graph.has_node(node_id)}
        return self._graph.neighborhood(core, hops=radius) <= members

    def _rebind_payload(self, tracker: _ReplicaTracker,
                        radius: int) -> tuple[dict, frozenset[str]]:
        """A fresh working-copy payload for one replica, against the *current*
        graph: surviving core nodes plus a freshly computed radius halo."""
        graph = self._graph
        core = {node_id for node_id in tracker.core if graph.has_node(node_id)}
        tracker.core = core
        halo = graph.neighborhood(core, hops=radius) - core
        tracker.nodes = core | halo
        working = graph.subgraph(tracker.nodes,
                                 name=f"{graph.name}-{tracker.namespace}",
                                 id_namespace=tracker.namespace)
        return shard_payload(working), frozenset(core)

    def _recovery_rebinder(self, key: str) -> tuple:
        """Fresh bind arguments for ``key`` — the pool's mid-barrier recovery
        hook: when a worker dies (or errors) holding an in-flight shard
        repair, its respawned replacement needs the shard's standing replica
        rebuilt before the one retry.  Runs on the coordinator thread (which
        already holds the session lock for this repair call), so reading the
        primary graph is safe; workers propose-then-revert, so the primary
        is exactly as it was when the barrier started.
        """
        tracker = next(t for t in self._replicas.values() if t.key == key)
        payload, core = self._rebind_payload(tracker, self._warm_plan.radius)
        return (payload, tracker.namespace, core, self._rules,
                self.config.to_fast_config())

    def _fan_out_warm(self) -> None:
        config = self.config
        pool = self._ensure_pool()
        plan = self._ensure_warm_plan()
        if plan is None:
            return

        fanout = self.last_fanout
        fanout.warm = True
        fanout.shards = len(plan)
        fanout.radius = plan.radius
        fanout.workers = config.workers
        fanout.used_processes = not config.parallel_inline
        fanout.cut_edges = plan.cut_edges
        fanout.halo_fraction = plan.halo_fraction
        stats_before = pool.stats.as_dict()

        # 0. a pool restart (failure recovery, or a shared pool another
        #    tenant's error shut down) discards every standing replica; a
        #    mid-barrier worker respawn discards only that worker's
        #    replicas, which the pool reports per shard key
        generation = pool.start()
        if generation != self._pool_generation:
            if self._pool_generation >= 0:
                for tracker in self._replicas.values():
                    tracker.stale = True
                    tracker.stale_reason = "pool restarted"
            self._pool_generation = generation
        lost = pool.take_lost([tracker.key
                               for tracker in self._replicas.values()])
        if lost:
            for tracker in self._replicas.values():
                if tracker.key in lost and not tracker.stale:
                    tracker.stale = True
                    tracker.stale_reason = ("worker respawned: standing "
                                            "replica lost")

        # 1. bring every standing replica up to the committed state: project
        #    the accumulated primary deltas per shard, ship the expressible
        #    ones (one barrier, parallel across workers), rebind the stale
        #    ones from a fresh extraction
        pending = GraphDelta()
        for delta in self._unshipped:
            pending.extend(delta.changes)
        self._unshipped.clear()
        worker_config = self.config.to_fast_config()
        ships: list[tuple[str, GraphDelta]] = []
        shipped_by_key: dict[str, "_ReplicaTracker"] = {}
        with self.core.report.timings.measure("shard-ship"):
            for tracker in self._replicas.values():
                if not (tracker.bound and not tracker.stale and pending):
                    continue
                projection = project_delta(pending, tracker.nodes)
                if projection.stale:
                    tracker.stale = True
                    tracker.stale_reason = projection.reason
                    continue
                if not projection.shipped:
                    continue
                if projection.shipped.added_edge_ids \
                        and not self._halo_intact(tracker, plan.radius,
                                                  projection):
                    # new member-member edges can shorten distances and pull
                    # previously-outside structure inside the rule radius —
                    # the replica would silently miss it, so rebind instead
                    tracker.stale = True
                    tracker.stale_reason = ("added edge shrank distances: "
                                            "halo no longer covers the "
                                            "core's radius-neighbourhood")
                    continue
                ships.append((tracker.key, projection.shipped))
                shipped_by_key[tracker.key] = tracker
                projection.apply_membership(tracker.nodes)
            for key, applied in pool.ship_all(ships).items():
                if not applied:  # the worker dropped a diverged replica
                    tracker = shipped_by_key[key]
                    tracker.stale = True
                    tracker.stale_reason = "worker reported divergence"
        binds: list[tuple] = []
        for tracker in self._replicas.values():
            if tracker.stale:
                if tracker.bound:
                    fanout.stale_rebinds += 1
                    log_event(_log, "warning", "replica-stale-rebind",
                              tenant=self._graph.name, shard=tracker.key,
                              reason=tracker.stale_reason)
                    if telemetry.TELEMETRY.enabled:
                        telemetry.inc("repro_pool_stale_rebinds_total",
                                      shard=tracker.key)
                payload, core = self._rebind_payload(tracker, plan.radius)
                binds.append((tracker.key, payload, tracker.namespace,
                              core, self._rules, worker_config))
        with self.core.report.timings.measure("shard-bind"):
            pool.bind_all(binds)
        for tracker in self._replicas.values():
            tracker.bound = True
            tracker.stale = False
            tracker.stale_reason = ""

        # 2. one repair barrier over every shard (propose-then-revert on the
        #    workers), then the shared fan-in commits the survivors here.
        #    The fan-out span stays open through the fan-in so the workers'
        #    shipped spans re-parent under it.
        trackers = sorted(self._replicas.values(), key=lambda t: t.index)
        with telemetry.span("repair.fanout", tenant=self._graph.name,
                            mode="warm", shards=len(trackers)):
            context = telemetry.current_context()
            with self.core.report.timings.measure("shard-fanout"):
                results = pool.repair([tracker.key for tracker in trackers],
                                      context=context,
                                      rebinder=self._recovery_rebinder)
            for tracker, result in zip(trackers, results):
                result.shard_index = tracker.index
            stats_after = pool.stats.as_dict()
            fanout.pool_spawns = stats_after["spawns"] - stats_before["spawns"]
            fanout.pool_binds = stats_after["binds"] - stats_before["binds"]
            fanout.pool_ships = stats_after["deltas_shipped"] \
                - stats_before["deltas_shipped"]
            fanout.pool_respawns = stats_after["respawns"] \
                - stats_before["respawns"]
            fanout.pool_retries = stats_after["retries"] \
                - stats_before["retries"]
            self._fan_in(results)
        # measured after fan-in so adoption/settlement of this run's created
        # elements is reflected: coverage decays as repairs/commits grow the
        # graph past the standing partition
        coverage, balance = self.ownership_coverage()
        fanout.ownership_coverage = coverage
        fanout.shard_balance = balance
        if telemetry.TELEMETRY.enabled:
            telemetry.gauge_set("repro_pool_ownership_coverage", coverage,
                                tenant=self._graph.name)
            telemetry.gauge_set("repro_pool_shard_balance", balance,
                                tenant=self._graph.name)

    def _fan_out(self) -> None:
        config = self.config
        shard_count = config.shard_count or config.workers
        radius = config.shard_radius if config.shard_radius is not None \
            else rule_radius(self._rules)
        plan = partition_graph(self._graph, shard_count, radius)
        if len(plan) <= 1:
            return

        fanout = self.last_fanout
        fanout.shards = len(plan)
        fanout.radius = plan.radius
        fanout.workers = config.workers
        fanout.used_processes = not config.parallel_inline
        fanout.cut_edges = plan.cut_edges
        fanout.halo_fraction = plan.halo_fraction

        with telemetry.span("repair.fanout", tenant=self._graph.name,
                            mode="cold", shards=len(plan)):
            context = telemetry.current_context()
            with self.core.report.timings.measure("shard-extraction"):
                worker_config = self.config.to_fast_config()
                tasks = [
                    ShardTask(shard_index=shard.index,
                              graph_payload=shard_payload(shard.extract(self._graph)),
                              core=frozenset(shard.core),
                              namespace=shard.namespace,
                              rules=self._rules,
                              config=worker_config,
                              telemetry_ctx=context)
                    for shard in plan.shards
                ]
            with self.core.report.timings.measure("shard-fanout"):
                results = execute_tasks(tasks, workers=config.workers,
                                        use_processes=not config.parallel_inline)
            self._fan_in(results)

    def _fan_in(self, results: list[ShardResult]) -> None:
        fanout = self.last_fanout
        if telemetry.TELEMETRY.enabled:
            # fold each worker's shipped registry into the coordinator's
            # (associative merge — arrival order cannot matter) and re-parent
            # its span trees under the still-open fan-out span
            for result in results:
                if result.telemetry is not None:
                    telemetry.TELEMETRY.registry.absorb(result.telemetry)
                if result.spans:
                    telemetry.TELEMETRY.tracer.attach_remote(
                        result.spans, process=f"shard-{result.shard_index}")
        for result in results:
            fanout.shard_repairs += result.repairs_applied
            fanout.shard_violations_detected += result.violations_detected
            fanout.shard_elapsed_seconds += result.elapsed_seconds
            fanout.shard_nodes_tried += result.nodes_tried
            fanout.shard_value_bucket_candidates += result.value_bucket_candidates
            fanout.shard_range_bucket_candidates += result.range_bucket_candidates
            fanout.shard_planner_plans += result.planner_plans
            fanout.shard_planner_replans += result.planner_replans

        with self.core.report.timings.measure("shard-merge"):
            outcome: MergeOutcome = DeltaMerger(self._graph).merge(results)
        fanout.accepted = outcome.accepted
        fanout.rejected = outcome.rejected
        fanout.conflicts = outcome.conflicts

        # the accepted repairs were applied to the primary graph above; count
        # them in the cumulative report (they are real repairs of this run,
        # executed by workers instead of the primary executor), retire their
        # identities so the settle drain skips them instead of miscounting
        # them as obsolete, and stream them through the session's event hooks
        on_repair_applied = getattr(self.events, "on_repair_applied", None)
        for accepted in outcome.accepted_repairs:
            self.core.report.repairs_applied += 1
            match = accepted.match
            if match is None:
                continue
            violation = Violation(rule=self._rules.get(accepted.repair.rule_name),
                                  match=match, status=ViolationStatus.REPAIRED)
            self.core.mark_handled(violation.key())
            if on_repair_applied is not None:
                on_repair_applied(violation,
                                  ExecutionOutcome(applied=True,
                                                   delta=accepted.replayed))
        if outcome.applied_delta:
            # ONE incremental-maintenance pass over everything the fan-out
            # changed; "shard-merge" never requeues already-handled
            # identities (same termination contract as repair-driven
            # maintenance)
            self.core.maintain(outcome.applied_delta, source="shard-merge")
