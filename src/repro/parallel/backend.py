"""The ``"sharded"`` repair backend: fan-out / fan-in over shard workers.

:class:`ShardedRepairer` implements the :class:`repro.api.Repairer`
plan/apply/maintain protocol around a persistent primary
:class:`~repro.repair.fast.FastRepairCore` (exactly like the fast backend),
but its ``run()`` turns one repair pass into a pipeline:

1. **partition** — cut the primary graph into rule-radius-aware shards
   (:mod:`repro.parallel.partition`);
2. **fan-out** — serialize each shard's working copy and repair all of them
   in a ``multiprocessing`` spawn pool (:mod:`repro.parallel.worker`), each
   worker applying only the violations its core owns;
3. **fan-in** — merge the per-shard deltas onto the primary graph with
   reserved ids and cross-shard conflict detection
   (:mod:`repro.parallel.merge`), then fold the whole merged delta into the
   primary core's matcher state under **one** incremental-maintenance pass;
4. **settle** — drain the primary core sequentially for whatever the fan-out
   could not own: frontier violations (matches spanning shard cores),
   conflict-rejected repairs, and cascades discovered by the merge pass.

Determinism: partitioning, shard-local repair, fan-in order, and the settle
drain are all deterministic for a fixed input, so two runs over the same
graph produce identical graphs — whatever the pool's scheduling order was.
On conflict-free partitions the result is also equivalent to the sequential
fast backend's (the parallel equivalence suite pins this across all three
dataset generators).

Degradation is graceful and explicit: ``workers <= 1``, a graph smaller than
``min_partition_nodes``, or a partition that collapses to one shard all skip
the fan-out entirely and behave exactly like the fast backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.delta import GraphDelta
from repro.graph.property_graph import PropertyGraph
from repro.matching.vf2 import MatchingStats
from repro.parallel.merge import DeltaMerger, MergeOutcome
from repro.parallel.partition import ShardPlan, partition_graph, rule_radius
from repro.parallel.worker import (
    ShardResult,
    ShardTask,
    execute_tasks,
    shard_payload,
)
from repro.repair.events import MaintenanceEvent
from repro.repair.executor import ExecutionOutcome
from repro.repair.fast import FastRepairCore
from repro.repair.report import RepairReport
from repro.repair.violation import Violation, ViolationStatus
from repro.rules.grr import RuleSet


@dataclass
class FanoutReport:
    """Diagnostics of the last fan-out (exposed as ``last_fanout`` and
    surfaced by the parallel example / benchmark)."""

    shards: int = 0
    radius: int = 0
    workers: int = 0
    used_processes: bool = False
    cut_edges: int = 0
    halo_fraction: float = 0.0
    shard_repairs: int = 0
    accepted: int = 0
    rejected: int = 0
    conflicts: list[str] = field(default_factory=list)
    shard_violations_detected: int = 0
    shard_elapsed_seconds: float = 0.0

    @property
    def ran(self) -> bool:
        return self.shards > 0


class ShardedRepairer:
    """Sharded multi-process repair behind the session's backend seam."""

    name = "sharded"
    cumulative_report = True

    def __init__(self, config, events=None) -> None:
        self.config = config
        self.events = events
        self.core: FastRepairCore | None = None
        self.last_fanout = FanoutReport()
        self._graph: PropertyGraph | None = None
        self._rules: RuleSet | None = None

    # ------------------------------------------------------------------
    # Repairer protocol
    # ------------------------------------------------------------------

    def bind(self, graph: PropertyGraph, rules: RuleSet) -> None:
        self._graph = graph
        self._rules = rules
        self.core = FastRepairCore(graph, rules,
                                   config=self.config.to_fast_config(),
                                   events=self.events)

    def plan(self) -> list[Violation]:
        return self.core.pending()

    def apply(self, violation: Violation) -> ExecutionOutcome:
        if not self.core.validate(violation):
            return ExecutionOutcome(applied=False, error="violation is obsolete")
        return self.core.execute(violation)

    def maintain(self, delta: GraphDelta, source: str = "commit") -> MaintenanceEvent:
        return self.core.maintain(delta, source=source)

    def stats(self) -> MatchingStats:
        return self.core.stats

    def close(self) -> None:
        if self.core is not None:
            self.core.close()

    # ------------------------------------------------------------------
    # the fan-out / fan-in run
    # ------------------------------------------------------------------

    def run(self) -> RepairReport:
        self.last_fanout = FanoutReport()
        if self._should_fan_out():
            self._fan_out()
        # settle: frontier violations, conflict-rejected repairs, and
        # anything the merge pass discovered — or the entire workload when
        # the fan-out was skipped (graceful single-worker degradation)
        self.core.drain()
        return self.core.finalize()

    def _should_fan_out(self) -> bool:
        config = self.config
        if config.workers <= 1 or (config.shard_count or config.workers) <= 1:
            return False
        if config.max_repairs is not None:
            # max_repairs caps the repairs of one run() call; fanning out
            # would hand every worker (and the settle drain) an independent
            # budget and silently multiply the cap — degrade to the single
            # sequential drain, whose budget accounting is exact
            return False
        if self._graph.num_nodes < config.min_partition_nodes:
            return False
        return self.core.has_pending()

    def _fan_out(self) -> None:
        config = self.config
        shard_count = config.shard_count or config.workers
        radius = config.shard_radius if config.shard_radius is not None \
            else rule_radius(self._rules)
        plan = partition_graph(self._graph, shard_count, radius)
        if len(plan) <= 1:
            return

        fanout = self.last_fanout
        fanout.shards = len(plan)
        fanout.radius = plan.radius
        fanout.workers = config.workers
        fanout.used_processes = not config.parallel_inline
        fanout.cut_edges = plan.cut_edges
        fanout.halo_fraction = plan.halo_fraction

        with self.core.report.timings.measure("shard-extraction"):
            worker_config = self.config.to_fast_config()
            tasks = [
                ShardTask(shard_index=shard.index,
                          graph_payload=shard_payload(shard.extract(self._graph)),
                          core=frozenset(shard.core),
                          namespace=shard.namespace,
                          rules=self._rules,
                          config=worker_config)
                for shard in plan.shards
            ]
        with self.core.report.timings.measure("shard-fanout"):
            results = execute_tasks(tasks, workers=config.workers,
                                    use_processes=not config.parallel_inline)
        self._fan_in(results)

    def _fan_in(self, results: list[ShardResult]) -> None:
        fanout = self.last_fanout
        for result in results:
            fanout.shard_repairs += result.repairs_applied
            fanout.shard_violations_detected += result.violations_detected
            fanout.shard_elapsed_seconds += result.elapsed_seconds

        with self.core.report.timings.measure("shard-merge"):
            outcome: MergeOutcome = DeltaMerger(self._graph).merge(results)
        fanout.accepted = outcome.accepted
        fanout.rejected = outcome.rejected
        fanout.conflicts = outcome.conflicts

        # the accepted repairs were applied to the primary graph above; count
        # them in the cumulative report (they are real repairs of this run,
        # executed by workers instead of the primary executor), retire their
        # identities so the settle drain skips them instead of miscounting
        # them as obsolete, and stream them through the session's event hooks
        on_repair_applied = getattr(self.events, "on_repair_applied", None)
        for accepted in outcome.accepted_repairs:
            self.core.report.repairs_applied += 1
            match = accepted.match
            if match is None:
                continue
            violation = Violation(rule=self._rules.get(accepted.repair.rule_name),
                                  match=match, status=ViolationStatus.REPAIRED)
            self.core.mark_handled(violation.key())
            if on_repair_applied is not None:
                on_repair_applied(violation,
                                  ExecutionOutcome(applied=True,
                                                   delta=accepted.replayed))
        if outcome.applied_delta:
            # ONE incremental-maintenance pass over everything the fan-out
            # changed; "shard-merge" never requeues already-handled
            # identities (same termination contract as repair-driven
            # maintenance)
            self.core.maintain(outcome.applied_delta, source="shard-merge")
