"""``repro.parallel`` — sharded multi-process repair with deterministic
delta merging.

The subsystem turns one repair pass into a fan-out/fan-in pipeline behind
the ``"sharded"`` backend name (select it with
``RepairConfig.sharded(workers=N)``):

* :mod:`repro.parallel.partition` — rule-radius-aware graph partitioning
  into core/halo/frontier shards;
* :mod:`repro.parallel.worker` — the spawn-safe worker protocol (shard
  payloads, the pool, the inline executor);
* :mod:`repro.parallel.merge` — deterministic delta merging with id-space
  reservation and cross-shard conflict detection;
* :mod:`repro.parallel.backend` — the :class:`ShardedRepairer` that plugs
  the pipeline into the :class:`repro.api.RepairSession` seam.

See ``docs/PARALLEL.md`` for the architecture and the determinism /
equivalence guarantees.
"""

from repro.parallel.backend import FanoutReport, ShardedRepairer
from repro.parallel.merge import AcceptedRepair, DeltaMerger, MergeOutcome
from repro.parallel.pool import PoolStats, WorkerPool
from repro.parallel.replica import DeltaProjection, project_delta
from repro.parallel.partition import (
    Shard,
    ShardPlan,
    partition_graph,
    rule_radius,
)
from repro.parallel.worker import (
    ShardResult,
    ShardTask,
    ShardWorkerState,
    execute_tasks,
    run_shard_task,
    shard_from_payload,
    shard_payload,
)

__all__ = [
    "ShardedRepairer",
    "FanoutReport",
    "WorkerPool",
    "PoolStats",
    "DeltaProjection",
    "project_delta",
    "ShardWorkerState",
    "DeltaMerger",
    "MergeOutcome",
    "AcceptedRepair",
    "Shard",
    "ShardPlan",
    "partition_graph",
    "rule_radius",
    "ShardTask",
    "ShardResult",
    "execute_tasks",
    "run_shard_task",
    "shard_payload",
    "shard_from_payload",
]
