"""Fan-in: merge per-shard repair deltas onto the primary graph.

Workers repair *working copies*; the primary graph only changes here.  The
merger walks the shard results in shard order (and each shard's repairs in
application order — both orders are deterministic), and for every repair:

1. **chains** ids: references to elements created by an earlier repair of
   the same shard are rewritten to the ids those elements actually received
   on the primary;
2. **rebases** the ids the repair itself creates onto ids reserved from the
   primary graph's generators (:func:`repro.graph.delta.rebase_delta` — the
   id-space reservation scheme, so replayed ids can never collide with
   primary ids);
3. **detects cross-shard conflicts**: every repair carries a *footprint* —
   the nodes its delta touched plus the nodes its match had bound (the
   bound nodes are the repair's read set: the evidence witnesses and
   comparison operands its validity was decided on).  A repair whose
   footprint intersects the footprint of an accepted repair from a
   *different* shard is rejected, along with the rest of its shard's
   repairs (later repairs of the same shard may depend on the rejected
   one's changes).  Rejected work is not lost — the coordinator's follow-up
   drain revisits those violations against the true post-merge graph.
   (Reads *beyond* the bound nodes — a missing-pattern extension probed
   two or more hops past the evidence variables — are not tracked; see
   docs/PARALLEL.md for the exact guarantee scope.);
4. **replays** the rebased delta through the graph's ordinary mutation API,
   so the candidate index and any other listeners observe the changes like
   any other edit.  ``MERGE_NODES`` replays semantically (the merge
   re-executes), so the actually-created replacement-edge ids are read back
   from the replay recording and patched into the shard's id chain.

The merger only *mutates*; it never tells the matcher.  The coordinator
folds :attr:`MergeOutcome.applied_delta` — the exact changes the primary
observed — into the backend's state under **one** incremental-maintenance
pass, which is what makes the whole fan-out cost a single reconciliation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ReproError
from repro.graph.delta import (
    ChangeKind,
    GraphDelta,
    apply_inverse,
    rebase_delta,
    recording,
    replay_delta,
)
from repro.graph.property_graph import PropertyGraph
from repro.matching.pattern import Match
from repro.parallel.worker import ShardResult
from repro.repair.fast import AppliedRepair


@dataclass
class AcceptedRepair:
    """One worker repair that landed on the primary graph."""

    repair: AppliedRepair
    #: the changes the primary actually recorded while this repair replayed
    #: (ids rebased; MERGE replacement edges re-generated)
    replayed: GraphDelta
    #: the repair's match with its bindings translated into the primary's id
    #: space (a match may bind elements an earlier repair of its shard
    #: created, whose ids were rebased during the merge)
    match: Match | None = None


@dataclass
class MergeOutcome:
    """What the fan-in did to the primary graph."""

    #: every change the primary graph recorded while accepted repairs were
    #: replayed — the delta the coordinator maintains in one pass
    applied_delta: GraphDelta = field(default_factory=GraphDelta)
    #: the accepted repairs in application order, with their replayed deltas
    accepted_repairs: list[AcceptedRepair] = field(default_factory=list)
    rejected: int = 0
    #: one entry per detected conflict (or replay failure), for diagnostics
    conflicts: list[str] = field(default_factory=list)

    @property
    def accepted(self) -> int:
        return len(self.accepted_repairs)

    @property
    def accepted_rules(self) -> list[str]:
        return [accepted.repair.rule_name for accepted in self.accepted_repairs]


class DeltaMerger:
    """Deterministic fan-in of shard results onto one primary graph."""

    def __init__(self, graph: PropertyGraph) -> None:
        self.graph = graph

    def merge(self, results: list[ShardResult]) -> MergeOutcome:
        outcome = MergeOutcome()
        footprint_by_shard: dict[int, set[str]] = {}

        for result in results:
            shard = result.shard_index
            footprint_here = footprint_by_shard.setdefault(shard, set())
            footprint_elsewhere: set[str] = set()
            for other, nodes in footprint_by_shard.items():
                if other != shard:
                    footprint_elsewhere |= nodes
            node_chain: dict[str, str] = {}
            edge_chain: dict[str, str] = {}

            for position, repair in enumerate(result.repairs):
                chained = repair.delta.remap_ids(node_ids=node_chain,
                                                edge_ids=edge_chain)
                rebased, node_map, edge_map = rebase_delta(chained, self.graph)
                # footprint = write set (touched nodes) + read set proxy (the
                # match's bound nodes): rejects both write-write overlap and
                # a repair whose evidence witnesses another shard mutated
                footprint = rebased.touched_nodes | set(repair.region)
                if footprint & footprint_elsewhere:
                    self._reject_rest(outcome, result, position,
                                      reason="cross-shard footprint overlap")
                    break
                # record the replay ourselves so that a mid-delta failure can
                # be rolled back — a half-applied repair must not stay on the
                # graph outside the maintained applied_delta
                error: Exception | None = None
                with recording(self.graph) as recorder:
                    try:
                        replay_delta(self.graph, rebased)
                    except (ReproError, ValueError) as exc:
                        error = exc
                replayed = recorder.drain()
                if error is not None:
                    # a conflict the footprint check could not see (the
                    # repair's preconditions were consumed by another shard):
                    # undo the partial changes and leave the violation to the
                    # follow-up drain
                    if replayed:
                        apply_inverse(self.graph, replayed)
                    self._reject_rest(outcome, result, position,
                                      reason=f"replay failed: {error}")
                    break
                node_chain.update(node_map)
                edge_chain.update(edge_map)
                self._chain_merge_edges(chained, replayed, edge_chain)
                outcome.applied_delta.extend(replayed.changes)
                outcome.accepted_repairs.append(
                    AcceptedRepair(repair=repair, replayed=replayed,
                                   match=self._remap_match(repair.match,
                                                           node_chain,
                                                           edge_chain)))
                footprint_here |= replayed.touched_nodes | set(repair.region)
        return outcome

    @staticmethod
    def _remap_match(match: Match | None, node_chain: dict[str, str],
                     edge_chain: dict[str, str]) -> Match | None:
        """The match with any shard-created element ids it bound translated
        to the ids those elements received on the primary (a match never
        binds its own repair's creations, so the current chains suffice)."""
        if match is None:
            return None
        if not node_chain and not edge_chain:
            return match
        return Match(
            pattern=match.pattern,
            node_bindings={variable: node_chain.get(node_id, node_id)
                           for variable, node_id in match.node_bindings.items()},
            edge_bindings={variable: edge_chain.get(edge_id, edge_id)
                           for variable, edge_id in match.edge_bindings.items()})

    @staticmethod
    def _reject_rest(outcome: MergeOutcome, result: ShardResult,
                     position: int, reason: str) -> None:
        remainder = len(result.repairs) - position
        outcome.rejected += remainder
        outcome.conflicts.append(
            f"shard {result.shard_index} repair #{position} "
            f"({result.repairs[position].rule_name}): {reason}; "
            f"{remainder} repair(s) of this shard deferred to the "
            "coordinator drain")

    @staticmethod
    def _chain_merge_edges(chained: GraphDelta, replayed: GraphDelta,
                           edge_chain: dict[str, str]) -> None:
        """Patch the id chain with the replacement-edge ids ``MERGE_NODES``
        actually produced on the primary.

        With full outcome snapshots (``added_edge_specs``) the replay is
        *exact*: the rebased replacement-edge ids are created verbatim, the
        replayed recording contains no ``MERGE_NODES`` changes (the merge is
        re-executed as its elementary outcome), and there is nothing to patch
        — this loop finds no pairs.  For snapshot-less merges (hand-built
        changes) the replay is semantic and one-to-one, the lists align
        positionally, and the re-generated ids are patched in here.
        """
        for original, actual in zip(chained.changes, replayed.changes):
            if original.kind is not ChangeKind.MERGE_NODES \
                    or actual.kind is not ChangeKind.MERGE_NODES:
                continue
            recorded = original.details.get("added_edges", ())
            produced = actual.details.get("added_edges", ())
            edge_chain.update(zip(recorded, produced))
