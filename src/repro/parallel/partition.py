"""Rule-radius-aware graph partitioning for the sharded repair backend.

The partitioner cuts one :class:`~repro.graph.PropertyGraph` into ``K``
shards a worker process can repair independently:

* **core** — a set of nodes *owned* by the shard.  The cores partition the
  node set: every node is owned by exactly one shard.  A worker only applies
  violations whose matches bind core nodes exclusively, so two workers can
  never repair the same violation.
* **halo** — every node within ``radius`` undirected hops of the core but
  owned by another shard.  The worker's subgraph is the induced graph over
  ``core | halo``; the halo is read-only context that makes shard-local
  decisions agree with global ones: a match bound entirely inside the core
  can only probe structure (missing-pattern extensions, witness edges,
  equivalent-edge checks) within ``radius`` hops of its bound nodes, and all
  of that is present in the subgraph.
* **frontier** — the core nodes with at least one neighbour outside the
  core.  Violations binding frontier nodes may also bind non-core nodes;
  those stay with the coordinator's follow-up drain.

``radius`` comes from the rule set: :func:`rule_radius` measures, per rule,
how far (in variable-graph hops) the evidence-plus-missing pattern reaches
from any evidence variable, and takes the maximum.  That is exactly the
horizon a violation check can inspect around its bound nodes — a safe halo
depth for any rule set, computed instead of guessed.

Cores are grown by deterministic BFS over the graph's insertion-ordered
adjacency (no hashing, no randomness), so the same graph and shard count
always produce the same partition in every process — one of the pillars of
the sharded backend's determinism guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.property_graph import PropertyGraph
from repro.rules.grr import GraphRepairingRule, RuleSet


def _pattern_reach(rule: GraphRepairingRule) -> int:
    """Max hops from any *evidence* variable to any variable of the rule's
    combined evidence+missing pattern graph (undirected BFS)."""
    adjacency: dict[str, list[str]] = {}

    def connect(source: str, target: str) -> None:
        adjacency.setdefault(source, []).append(target)
        adjacency.setdefault(target, []).append(source)

    for edge in rule.pattern.edges:
        connect(edge.source, edge.target)
    for variable in rule.pattern.variables:
        adjacency.setdefault(variable, [])
    if rule.missing is not None:
        for edge in rule.missing.edges:
            connect(edge.source, edge.target)
        for variable in rule.missing.variables:
            adjacency.setdefault(variable, [])

    reach = 0
    for start in rule.pattern.variables:
        distance = {start: 0}
        frontier = [start]
        while frontier:
            next_frontier: list[str] = []
            for variable in frontier:
                for neighbour in adjacency.get(variable, ()):
                    if neighbour not in distance:
                        distance[neighbour] = distance[variable] + 1
                        next_frontier.append(neighbour)
            frontier = next_frontier
        if len(distance) < len(adjacency):
            # a variable unreachable from this evidence variable (possible
            # only for degenerate rule shapes): fall back to the worst case
            return max(len(adjacency) - 1, 1)
        reach = max(reach, max(distance.values(), default=0))
    return reach


def rule_radius(rules: RuleSet) -> int:
    """The halo depth the rule set needs: the widest pattern reach of any
    rule, and at least 1 (repairs touch the 1-hop structure of bound nodes —
    a node merge redirects edges to immediate neighbours)."""
    return max([_pattern_reach(rule) for rule in rules] + [1])


@dataclass
class Shard:
    """One partition cell: owned core, read-only halo, and the frontier."""

    index: int
    core: set[str]
    halo: set[str]
    frontier: set[str]

    @property
    def namespace(self) -> str:
        """The id namespace of this shard's working copies (``"s<index>"``)."""
        return f"s{self.index}"

    def node_ids(self) -> set[str]:
        return self.core | self.halo

    def extract(self, graph: PropertyGraph) -> PropertyGraph:
        """The shard's working copy: the induced subgraph over core + halo,
        with id generation namespaced so shard-created ids never collide."""
        return graph.subgraph(self.node_ids(),
                              name=f"{graph.name}-{self.namespace}",
                              id_namespace=self.namespace)


@dataclass
class ShardPlan:
    """The result of partitioning one graph for one rule set."""

    shards: list[Shard]
    radius: int
    cut_edges: int = 0
    #: total halo nodes across shards / graph nodes — the replication factor
    #: the halo costs; >1.0 means every node is (on average) copied into more
    #: than one extra shard, a sign the radius is large relative to the graph
    halo_fraction: float = 0.0
    diagnostics: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.shards)


def _adjacent_in_order(graph: PropertyGraph, node_id: str):
    """Neighbours of ``node_id`` in adjacency insertion order (out-edges
    before in-edges) — the deterministic iteration the BFS growth relies on."""
    for edge in graph.iter_out_edges(node_id):
        yield edge.target
    for edge in graph.iter_in_edges(node_id):
        yield edge.source


def partition_graph(graph: PropertyGraph, shard_count: int,
                    radius: int) -> ShardPlan:
    """Cut ``graph`` into ``shard_count`` radius-aware shards.

    Cores are grown one at a time by BFS from the first unassigned node (in
    node insertion order) over insertion-ordered adjacency, up to
    ``ceil(n / shard_count)`` nodes per core — connected, deterministic, and
    locality-preserving (BFS growth keeps most edges inside one core, which
    is what keeps frontiers and halos small).  Disconnected remainders seed
    new BFS waves until every node is assigned.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    node_order = graph.node_ids()
    total = len(node_order)
    shard_count = min(shard_count, total) if total else 1
    target = -(-total // shard_count) if total else 0  # ceil division

    assigned: dict[str, int] = {}
    cores: list[set[str]] = []
    cursor = 0
    while len(assigned) < total:
        if len(cores) == shard_count:
            # rounding left unassigned nodes: fold them into the last core
            core = cores[-1]
            shard_index = len(cores) - 1
            capacity = total  # unbounded
        else:
            core = set()
            shard_index = len(cores)
            cores.append(core)
            capacity = target
        # BFS waves from insertion-ordered seeds until this core is full
        while len(core) < capacity and len(assigned) < total:
            while cursor < total and node_order[cursor] in assigned:
                cursor += 1
            if cursor >= total:
                break
            frontier = [node_order[cursor]]
            assigned[node_order[cursor]] = shard_index
            core.add(node_order[cursor])
            while frontier and len(core) < capacity:
                next_frontier: list[str] = []
                for node_id in frontier:
                    for neighbour in _adjacent_in_order(graph, node_id):
                        if neighbour not in assigned:
                            assigned[neighbour] = shard_index
                            core.add(neighbour)
                            next_frontier.append(neighbour)
                            if len(core) >= capacity:
                                break
                    if len(core) >= capacity:
                        break
                frontier = next_frontier

    shards: list[Shard] = []
    cut_edges = 0
    halo_total = 0
    for index, core in enumerate(cores):
        frontier = set()
        for node_id in core:
            for edge in graph.iter_out_edges(node_id):
                if edge.target not in core:
                    frontier.add(node_id)
                    cut_edges += 1
            for edge in graph.iter_in_edges(node_id):
                if edge.source not in core:
                    frontier.add(node_id)
        halo = graph.neighborhood(core, hops=radius) - core
        halo_total += len(halo)
        shards.append(Shard(index=index, core=core, halo=halo,
                            frontier=frontier))

    return ShardPlan(
        shards=shards,
        radius=radius,
        cut_edges=cut_edges,
        halo_fraction=(halo_total / total) if total else 0.0,
        diagnostics={"nodes": total, "target_core_size": target,
                     "core_sizes": [len(core) for core in cores]},
    )
