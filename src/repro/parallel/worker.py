"""The sharded backend's worker protocol: task/result shapes and executors.

One :class:`ShardTask` is everything a worker process needs to repair one
shard with no access to the coordinator's memory:

* the shard's working copy as a **plain-dict payload**
  (:func:`repro.graph.io.graph_to_dict`) rather than a live
  :class:`~repro.graph.PropertyGraph` — no listeners, no shared indexes,
  nothing process-specific, safe for the ``spawn`` start method on every
  platform;
* the pickled rule set and :class:`~repro.repair.fast.FastRepairConfig`
  (both are declarative object trees — patterns, predicate dataclasses,
  cost models — with no callables, by design);
* the shard's **core** node ids (ownership filter) and id **namespace**.

:func:`run_shard_task` is the importable top-level entry point the pool maps
over tasks; it rebuilds the graph, runs
:func:`repro.repair.fast.repair_shard`, and ships back a :class:`ShardResult`
whose deltas still live in the shard's namespaced id space — translating them
into the primary graph's id space is the merger's job.

Two executors run the tasks:

* :func:`execute_tasks` with ``use_processes=True`` fans out over a
  ``multiprocessing`` *spawn* pool (spawn, not fork: deterministic, no
  inherited locks/listeners, identical semantics on Linux/macOS/Windows);
* ``use_processes=False`` runs the same serialization round-trip inline —
  bit-identical results without process startup, used for 1-worker
  degradation and by the equivalence tests.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field

from repro.graph.delta import GraphDelta, apply_inverse, recording, replay_delta
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.graph.property_graph import PropertyGraph
from repro.repair.fast import (
    AppliedRepair,
    FastRepairConfig,
    FastRepairCore,
    make_ownership_filter,
    repair_shard,
)
from repro.rules.grr import RuleSet


@dataclass
class ShardTask:
    """One shard's work order (fully self-contained and spawn-safe)."""

    shard_index: int
    graph_payload: dict
    core: frozenset[str]
    namespace: str
    rules: RuleSet
    config: FastRepairConfig
    #: coordinator trace context (``{"trace_id", "span_id"}``) when telemetry
    #: is collecting; ``None`` keeps the worker's telemetry path allocation-free
    telemetry_ctx: dict | None = None


@dataclass
class ShardResult:
    """What one worker ships back to the coordinator.

    ``repairs`` are in shard application order with deltas in the shard's
    namespaced id space.  The counters summarise the shard-local run (its
    full :class:`~repro.repair.report.RepairReport` never leaves the worker —
    logs and timing breakdowns would dominate the result pickle).
    """

    shard_index: int
    repairs: list[AppliedRepair] = field(default_factory=list)
    violations_detected: int = 0
    repairs_applied: int = 0
    repairs_failed: int = 0
    nodes_tried: int = 0
    # candidates the shard's value buckets scanned in place of label buckets
    # (the predicate-pushdown layer, rebuilt worker-side with the index)
    value_bucket_candidates: int = 0
    # candidates the shard's range/membership probes offered
    range_bucket_candidates: int = 0
    # cost-planner activity inside the shard (plans built / drift replans)
    planner_plans: int = 0
    planner_replans: int = 0
    elapsed_seconds: float = 0.0
    #: worker-side :class:`~repro.telemetry.RegistrySnapshot` (None when
    #: telemetry was not collecting) — the coordinator absorbs it, so shard
    #: metrics merge deterministically into the dispatching registry
    telemetry: object = None
    #: worker-side finished span trees (plain dicts) — the coordinator
    #: re-parents them under its open fan-out span
    spans: list = field(default_factory=list)


def shard_payload(graph: PropertyGraph) -> dict:
    """Serialise a shard working copy into its spawn-safe payload."""
    return graph_to_dict(graph)


def shard_from_payload(payload: dict, namespace: str) -> PropertyGraph:
    """Rebuild a worker-side graph from a payload, with namespaced ids."""
    return graph_from_dict(payload, id_namespace=namespace)


def run_shard_task(task: ShardTask) -> ShardResult:
    """Repair one shard end to end (the pool's map function)."""
    from repro import telemetry

    started = time.perf_counter()
    with telemetry.worker_collection(
            task.telemetry_ctx,
            process=f"shard-{task.shard_index}") as telemetry_box:
        with telemetry.span("shard.repair", shard=task.shard_index,
                            mode="cold"):
            graph = shard_from_payload(task.graph_payload, task.namespace)
            repairs, report = repair_shard(graph, task.rules,
                                           config=task.config,
                                           owned_nodes=task.core)
    return ShardResult(
        telemetry=telemetry_box["telemetry"],
        spans=telemetry_box["spans"],
        shard_index=task.shard_index,
        repairs=repairs,
        violations_detected=report.violations_detected,
        repairs_applied=report.repairs_applied,
        repairs_failed=report.repairs_failed,
        nodes_tried=report.matching_stats.nodes_tried,
        value_bucket_candidates=report.matching_stats.value_bucket_candidates,
        range_bucket_candidates=report.matching_stats.range_bucket_candidates,
        planner_plans=report.matching_stats.planner_plans,
        planner_replans=report.matching_stats.planner_replans,
        elapsed_seconds=time.perf_counter() - started,
    )


class ShardWorkerState:
    """One standing shard replica inside a warm pool worker.

    Holds the shard's working copy and a persistent
    :class:`~repro.repair.fast.FastRepairCore` across repair calls — the
    expensive bind (graph rebuild, index construction, full initial
    detection) happens once; afterwards the coordinator ships committed
    primary deltas (:meth:`ship`) and detection stays incremental.

    :meth:`repair` follows a *propose-then-revert* protocol: the worker
    drains its owned violations, collects the applied repairs, then rolls
    every local mutation back so the replica returns to the last state the
    coordinator synced.  Only the coordinator commits: whatever subset of the
    proposed repairs survives the cross-shard merge comes back — in primary
    id space — through the next :meth:`ship`, exactly like any other
    committed change.  The replica therefore never diverges from the
    primary's slice, whatever the merge rejected.
    """

    def __init__(self, payload: dict, namespace: str, core: frozenset[str],
                 rules: RuleSet, config: FastRepairConfig) -> None:
        self.graph = shard_from_payload(payload, namespace)
        self.namespace = namespace
        self.owned = frozenset(core)
        self.core_state = FastRepairCore(self.graph, rules, config=config)

    def ship(self, delta: GraphDelta) -> int:
        """Replay one projected primary delta and fold it into the matcher
        state (one incremental pass).  Returns the number of changes applied.

        ``source="commit"`` maintenance semantics apply: a committed edit may
        legitimately re-create a violation identity an earlier call handled,
        and it must become repairable again.
        """
        replayed = replay_delta(self.graph, delta)
        self.core_state.maintain(replayed, source="commit")
        return len(replayed)

    def repair(self) -> ShardResult:
        """One propose-then-revert repair pass over the standing replica."""
        started = time.perf_counter()
        report = self.core_state.report
        stats = self.core_state.stats
        baseline = (report.violations_detected, report.repairs_applied,
                    report.repairs_failed, stats.nodes_tried,
                    stats.value_bucket_candidates,
                    stats.range_bucket_candidates,
                    stats.planner_plans, stats.planner_replans)
        collected: list[AppliedRepair] = []
        with recording(self.graph) as recorder:
            self.core_state.drain(
                accept=make_ownership_filter(self.graph, self.owned),
                collector=collected)
        mutations = recorder.drain()
        if mutations:
            # revert *everything* the drain changed — applied repairs and
            # partial mutations of failed ones alike — and tell the matcher,
            # requeuing the violations whose repairs were just undone
            inverse = apply_inverse(self.graph, mutations)
            self.core_state.maintain(inverse, source="commit")
        finalized = self.core_state.finalize()
        return ShardResult(
            shard_index=-1,
            repairs=collected,
            violations_detected=finalized.violations_detected - baseline[0],
            repairs_applied=finalized.repairs_applied - baseline[1],
            repairs_failed=finalized.repairs_failed - baseline[2],
            nodes_tried=finalized.matching_stats.nodes_tried - baseline[3],
            value_bucket_candidates=(
                finalized.matching_stats.value_bucket_candidates - baseline[4]),
            range_bucket_candidates=(
                finalized.matching_stats.range_bucket_candidates - baseline[5]),
            planner_plans=finalized.matching_stats.planner_plans - baseline[6],
            planner_replans=(
                finalized.matching_stats.planner_replans - baseline[7]),
            elapsed_seconds=time.perf_counter() - started,
        )

    def close(self) -> None:
        self.core_state.close()


def execute_tasks(tasks: list[ShardTask], workers: int,
                  use_processes: bool = True) -> list[ShardResult]:
    """Run every task and return results in task order (deterministic fan-in).

    ``pool.map`` preserves input order regardless of completion order, so the
    merger always sees shard 0's repairs before shard 1's — scheduling jitter
    cannot change the outcome.  With ``use_processes=False`` (or a single
    task) the tasks run inline in task order, exercising the identical
    serialized path without process startup cost.
    """
    if not tasks:
        return []
    if not use_processes or workers <= 1 or len(tasks) == 1:
        return [run_shard_task(task) for task in tasks]
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=min(workers, len(tasks))) as pool:
        return pool.map(run_shard_task, tasks, chunksize=1)
