"""The sharded backend's worker protocol: task/result shapes and executors.

One :class:`ShardTask` is everything a worker process needs to repair one
shard with no access to the coordinator's memory:

* the shard's working copy as a **plain-dict payload**
  (:func:`repro.graph.io.graph_to_dict`) rather than a live
  :class:`~repro.graph.PropertyGraph` — no listeners, no shared indexes,
  nothing process-specific, safe for the ``spawn`` start method on every
  platform;
* the pickled rule set and :class:`~repro.repair.fast.FastRepairConfig`
  (both are declarative object trees — patterns, predicate dataclasses,
  cost models — with no callables, by design);
* the shard's **core** node ids (ownership filter) and id **namespace**.

:func:`run_shard_task` is the importable top-level entry point the pool maps
over tasks; it rebuilds the graph, runs
:func:`repro.repair.fast.repair_shard`, and ships back a :class:`ShardResult`
whose deltas still live in the shard's namespaced id space — translating them
into the primary graph's id space is the merger's job.

Two executors run the tasks:

* :func:`execute_tasks` with ``use_processes=True`` fans out over a
  ``multiprocessing`` *spawn* pool (spawn, not fork: deterministic, no
  inherited locks/listeners, identical semantics on Linux/macOS/Windows);
* ``use_processes=False`` runs the same serialization round-trip inline —
  bit-identical results without process startup, used for 1-worker
  degradation and by the equivalence tests.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field

from repro.graph.io import graph_from_dict, graph_to_dict
from repro.graph.property_graph import PropertyGraph
from repro.repair.fast import AppliedRepair, FastRepairConfig, repair_shard
from repro.rules.grr import RuleSet


@dataclass
class ShardTask:
    """One shard's work order (fully self-contained and spawn-safe)."""

    shard_index: int
    graph_payload: dict
    core: frozenset[str]
    namespace: str
    rules: RuleSet
    config: FastRepairConfig


@dataclass
class ShardResult:
    """What one worker ships back to the coordinator.

    ``repairs`` are in shard application order with deltas in the shard's
    namespaced id space.  The counters summarise the shard-local run (its
    full :class:`~repro.repair.report.RepairReport` never leaves the worker —
    logs and timing breakdowns would dominate the result pickle).
    """

    shard_index: int
    repairs: list[AppliedRepair] = field(default_factory=list)
    violations_detected: int = 0
    repairs_applied: int = 0
    repairs_failed: int = 0
    nodes_tried: int = 0
    elapsed_seconds: float = 0.0


def shard_payload(graph: PropertyGraph) -> dict:
    """Serialise a shard working copy into its spawn-safe payload."""
    return graph_to_dict(graph)


def shard_from_payload(payload: dict, namespace: str) -> PropertyGraph:
    """Rebuild a worker-side graph from a payload, with namespaced ids."""
    return graph_from_dict(payload, id_namespace=namespace)


def run_shard_task(task: ShardTask) -> ShardResult:
    """Repair one shard end to end (the pool's map function)."""
    started = time.perf_counter()
    graph = shard_from_payload(task.graph_payload, task.namespace)
    repairs, report = repair_shard(graph, task.rules, config=task.config,
                                   owned_nodes=task.core)
    return ShardResult(
        shard_index=task.shard_index,
        repairs=repairs,
        violations_detected=report.violations_detected,
        repairs_applied=report.repairs_applied,
        repairs_failed=report.repairs_failed,
        nodes_tried=report.matching_stats.nodes_tried,
        elapsed_seconds=time.perf_counter() - started,
    )


def execute_tasks(tasks: list[ShardTask], workers: int,
                  use_processes: bool = True) -> list[ShardResult]:
    """Run every task and return results in task order (deterministic fan-in).

    ``pool.map`` preserves input order regardless of completion order, so the
    merger always sees shard 0's repairs before shard 1's — scheduling jitter
    cannot change the outcome.  With ``use_processes=False`` (or a single
    task) the tasks run inline in task order, exercising the identical
    serialized path without process startup cost.
    """
    if not tasks:
        return []
    if not use_processes or workers <= 1 or len(tasks) == 1:
        return [run_shard_task(task) for task in tasks]
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=min(workers, len(tasks))) as pool:
        return pool.map(run_shard_task, tasks, chunksize=1)
