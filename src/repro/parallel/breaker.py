"""Circuit breaker guarding the warm fan-out path.

The breaker sits on a :class:`~repro.parallel.pool.WorkerPool` (one per
pool, so a service-shared pool shares one breaker across tenants) and is
consulted by :class:`~repro.parallel.backend.ShardedRepairer` before each
warm fan-out:

* **closed** — normal operation; every fan-out is allowed.
* **open** — entered after ``failure_threshold`` consecutive pool
  failures; fan-outs are refused (the repairer falls back to the
  sequential drain, whose correctness the equivalence suite pins) until
  ``reset_seconds`` have elapsed.
* **half_open** — after the cool-down, exactly one probe fan-out is let
  through.  Success closes the breaker; failure reopens it and restarts
  the cool-down.

The clock is injectable so tests can step through the state machine
deterministically.  All methods are thread-safe: several sessions can
share a pool (and therefore a breaker) across threads.
"""
from __future__ import annotations

import threading
import time
from typing import Callable, Dict

from repro import telemetry

__all__ = ["CircuitBreaker", "BREAKER_STATE_VALUES"]

#: Gauge encoding for ``repro_pool_breaker_state``.
BREAKER_STATE_VALUES: Dict[str, float] = {
    "closed": 0.0,
    "half_open": 1.0,
    "open": 2.0,
}


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe."""

    def __init__(self, failure_threshold: int = 3, reset_seconds: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_seconds < 0:
            raise ValueError(f"reset_seconds must be >= 0, got {reset_seconds}")
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.transitions = 0

    # ------------------------------------------------------------------
    # state machine (all _locked helpers assume self._lock is held)
    # ------------------------------------------------------------------

    def _state_locked(self) -> str:
        if (self._state == "open"
                and self._clock() - self._opened_at >= self.reset_seconds):
            self._transition_locked("half_open")
        return self._state

    def _transition_locked(self, to: str) -> None:
        if self._state == to:
            return
        self._state = to
        self.transitions += 1
        if to != "half_open":
            self._probing = False
        if telemetry.TELEMETRY.enabled:
            telemetry.inc("repro_pool_breaker_transitions_total", state=to)
            telemetry.gauge_set("repro_pool_breaker_state",
                                BREAKER_STATE_VALUES[to])

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state — ``closed`` / ``open`` / ``half_open``.

        Reading the state applies the cool-down transition, so an expired
        ``open`` reports (and becomes) ``half_open``.
        """
        with self._lock:
            return self._state_locked()

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def allow(self) -> bool:
        """May a fan-out proceed right now?

        In ``half_open`` only the first caller gets the probe slot; others
        are refused until the probe reports back.
        """
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "half_open" and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probing = False
            self._transition_locked("closed")

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            state = self._state_locked()
            if (state == "half_open"
                    or self._consecutive_failures >= self.failure_threshold):
                self._opened_at = self._clock()
                self._transition_locked("open")
            elif state == "open":
                # a failure while already open just restarts the cool-down
                self._opened_at = self._clock()

    def snapshot(self) -> Dict[str, object]:
        """State summary for ``service.health()``."""
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "reset_seconds": self.reset_seconds,
                "transitions": self.transitions,
            }
