"""The persistent worker pool: warm shard workers across repair calls.

The cold fan-out (:func:`repro.parallel.worker.execute_tasks`) spawns a
fresh process pool per ``run()`` and ships every shard's full working copy
each time — spawn cost plus a complete per-shard re-detection dominate the
fan-out on anything but huge graphs (measured in the ``sharded-kg``
scenario).  A :class:`WorkerPool` amortises both:

* worker **processes** are spawned once (lazily, at the first bind) and stay
  alive until :meth:`close` — after warm-up a repair call spawns nothing;
* each worker holds **standing shard replicas**
  (:class:`~repro.parallel.worker.ShardWorkerState`): graph, candidate
  index, match stores, and violation queue survive between calls, and the
  coordinator ships *committed deltas* instead of full payloads, so shard
  detection is incremental.

The protocol has three commands, each acknowledged by the worker:

* ``bind(key, ...)`` — build (or rebuild) one standing replica from a full
  payload; the expensive path, paid once per shard plus once per staleness;
* ``ship(key, delta)`` — replay one projected committed delta into the
  replica and its matcher state (one incremental pass).  A worker that
  cannot replay the delta (replica divergence) drops the replica and
  answers *stale* instead of failing the pool: the coordinator rebinds;
* ``repair(key)`` — one propose-then-revert repair pass (see
  :class:`ShardWorkerState`); returns the proposed repairs.

Shards are pinned to workers round-robin at first bind, so a shard's
replica state always lives where its commands are routed.  Commands to
different workers run concurrently; the coordinator dispatches a batch and
then collects every acknowledgement, so a batch is a deterministic barrier.

**Supervision** (docs/RESILIENCE.md): the coordinator polls worker
liveness while it waits for replies and enforces a per-command reply
deadline.  A worker that dies (crash, SIGKILL) or stops replying (hang —
the deadline expires and the worker is terminated) is *respawned* in
place: a fresh process takes over its index and task queue, and every
command the dead worker still owed is re-driven —

* an owed ``bind`` is simply resent (the payload is in the message);
* an owed ``ship`` is answered *stale* on the worker's behalf, so the
  coordinator rebinds that replica instead of replaying a delta into a
  process that no longer exists;
* an owed ``repair`` is retried **once**: the caller-supplied ``rebinder``
  callback produces fresh bind arguments for the shard (the coordinator's
  projected-payload machinery), a rebind plus the original repair are
  queued to the respawned worker, and the barrier continues.  A worker
  SIGKILL'd mid-repair therefore heals transparently.

Standing replicas that lived on the dead worker but were *not* part of the
running barrier are recorded and reported through :meth:`take_lost`, so
coordinators mark just those shards stale instead of rebinding the world.

Only when recovery itself fails — the same shard loses its worker twice in
one barrier, a retried repair errors again, or no rebinder is available —
does the pool fall back to the strict legacy behaviour: shut everything
down and raise :class:`~repro.exceptions.WorkerPoolError` (no orphaned
processes outlive a failure; :meth:`close` escalates join → terminate →
kill).  The pool is then **reopenable**: the next command starts a fresh
*generation* of workers and coordinators rebind.  Callers that can serve
the request another way (the sharded backend's sequential drain) consult
the pool's :class:`~repro.parallel.breaker.CircuitBreaker` before fanning
out.

``inline=True`` runs the identical state machine in-process (no spawn,
same replicas, same replies) for tests and single-CPU hosts; a
:class:`~repro.testing.faults.FaultPlan` can script crashes, hangs and
errors in either mode, and inline death/respawn is *simulated* so chaos
scenarios stay deterministic.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
import traceback
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro import telemetry
from repro.exceptions import WorkerPoolError
from repro.graph.delta import GraphDelta
from repro.parallel.breaker import CircuitBreaker
from repro.parallel.worker import ShardResult, ShardWorkerState
from repro.telemetry.log import get_logger, log_event, warn_swallowed
from repro.testing import faults as _faults

_log = get_logger("parallel.pool")

#: how long the coordinator waits for one reply poll before re-checking
#: worker liveness (seconds)
_POLL_INTERVAL = 0.25
#: default per-command reply deadline with live workers (seconds); the
#: deadline restarts on every reply and after every recovery pass.
#: Generous — a bind does a full shard detection
_REPLY_TIMEOUT = 600.0
#: default grace period for each step of the close() escalation
#: (join → terminate → kill), seconds
_STOP_GRACE = 2.0

#: a rebinder maps a shard key to fresh bind arguments
#: ``(payload, namespace, core, rules, config)`` — the tail of a bind command
Rebinder = Callable[[str], tuple]


@dataclass
class PoolStats:
    """Warm-pool overhead counters (deterministic; asserted by the
    ``service-kg`` benchmark: ``spawns`` must stop growing after warm-up —
    and by ``chaos-kg``: respawns/retries must match the fault plan)."""

    #: worker processes spawned over the pool's lifetime (respawns included)
    spawns: int = 0
    #: full shard payloads shipped (cold binds + staleness rebinds)
    binds: int = 0
    #: incremental committed-delta shipments
    deltas_shipped: int = 0
    #: individual shard repair commands executed
    shard_repairs: int = 0
    #: pool-level repair barriers (one per coordinator fan-out)
    repair_calls: int = 0
    #: fair time-slice leases granted (see :meth:`WorkerPool.lease`)
    leases: int = 0
    #: total seconds lease holders spent queued behind earlier arrivals
    lease_wait_seconds: float = 0.0
    #: workers observed dead or hung by the supervisor
    worker_deaths: int = 0
    #: dead workers replaced in place (inline deaths are simulated)
    respawns: int = 0
    #: commands abandoned because their reply deadline expired
    command_timeouts: int = 0
    #: shard commands re-driven after a death or a failed repair
    retries: int = 0
    #: warm repairs the owning backend degraded to the sequential drain
    #: (incremented by the backend, surfaced here so service health and
    #: benchmarks read one stats object)
    fallback_repairs: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"spawns": self.spawns, "binds": self.binds,
                "deltas_shipped": self.deltas_shipped,
                "shard_repairs": self.shard_repairs,
                "repair_calls": self.repair_calls,
                "leases": self.leases,
                "lease_wait_seconds": round(self.lease_wait_seconds, 6),
                "worker_deaths": self.worker_deaths,
                "respawns": self.respawns,
                "command_timeouts": self.command_timeouts,
                "retries": self.retries,
                "fallback_repairs": self.fallback_repairs}


def _handle_command(states: dict, message: tuple) -> tuple[str, object]:
    """Execute one coordinator command against a worker's replica states.

    The one implementation shared by the spawned worker loop and the inline
    executor — both modes run byte-identical shard logic.  Returns the reply
    ``(status, payload)``.
    """
    command, key = message[0], message[1]
    if command == "bind":
        payload, namespace, core, rules, config = message[2:]
        previous = states.pop(key, None)
        if previous is not None:
            previous.close()
        states[key] = ShardWorkerState(payload, namespace, core, rules, config)
        return "ok", None
    if command == "ship":
        delta = message[2]
        state = states[key]
        try:
            return "ok", state.ship(delta)
        except Exception as exc:  # divergence: drop the replica, ask to rebind
            states.pop(key, None)
            state.close()
            warn_swallowed(_log, "replica-ship-diverged", exc=exc, shard=key,
                           changes=len(delta.changes))
            return "stale", f"{type(exc).__name__}: {exc}"
    if command == "repair":
        context = message[2] if len(message) > 2 else None
        if context is None:
            return "ok", states[key].repair()
        with telemetry.worker_collection(context, process=f"shard-{key}") \
                as telemetry_box:
            with telemetry.span("shard.repair", shard=key, mode="warm"):
                result = states[key].repair()
        result.telemetry = telemetry_box["telemetry"]
        result.spans = telemetry_box["spans"]
        return "ok", result
    raise ValueError(f"unknown pool command {command!r}")


def _pool_worker_main(task_queue, result_queue, worker_index: int = 0,
                      fault_plan=None) -> None:
    """Entry point of one spawned pool worker (top-level: spawn-picklable).

    ``fault_plan`` is the pickled chaos script (or ``None``): each command
    fires the ``worker.command`` site with this worker's index before it is
    handled, and the stop sentinel fires ``worker.stop`` — see
    :mod:`repro.testing.faults`.  Respawned workers are started without a
    plan: the scripted fault already happened.
    """
    states: dict[str, ShardWorkerState] = {}
    while True:
        message = task_queue.get()
        if message[0] == "stop":
            if fault_plan is not None:
                fault_plan.fire("worker.stop", worker=worker_index)
            break
        key = message[1]
        try:
            if fault_plan is not None:
                fault_plan.fire("worker.command", worker=worker_index,
                                command=message[0], key=key)
            status, payload = _handle_command(states, message)
            result_queue.put((key, status, payload))
        except BaseException:
            result_queue.put((key, "error", traceback.format_exc()))
    for state in states.values():
        state.close()


class WorkerPool:
    """A persistent, supervised pool of warm shard workers (see module
    docstring).

    Thread safety: every public command serialises on the pool's internal
    lock, so coordinators on different threads (a service's tenants
    repairing concurrently) interleave whole *barriers*, never individual
    replies.  Shard state stays correct because each shard key is pinned to
    one worker and one owning backend.

    Failure and recovery: a dead or hung worker is respawned mid-barrier
    and its in-flight commands are re-driven (repairs retried once via the
    caller's ``rebinder``).  Unhealable failures shut the pool down and
    raise :class:`WorkerPoolError` to the command that observed them.  The
    pool is **reopenable**: the next command after a close starts a fresh
    *generation* of workers (``generation`` increments; all standing
    replicas are gone, so coordinators that cached binds must rebind when
    they see the generation change).  A transient worker death therefore
    costs one recovery pass — not the repair call, and never the pool's
    owner for good.

    ``breaker`` is the pool's :class:`~repro.parallel.breaker.CircuitBreaker`
    — the pool itself never consults it (barriers either heal or raise);
    it lives here so every backend sharing the pool shares one failure
    budget.
    """

    def __init__(self, workers: int, inline: bool = False, *,
                 reply_timeout: float = _REPLY_TIMEOUT,
                 stop_grace: float = _STOP_GRACE,
                 fault_plan: Optional["_faults.FaultPlan"] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if reply_timeout <= 0:
            raise ValueError(f"reply_timeout must be > 0, got {reply_timeout}")
        if stop_grace <= 0:
            raise ValueError(f"stop_grace must be > 0, got {stop_grace}")
        self.workers = workers
        self.inline = inline
        self.reply_timeout = reply_timeout
        self.stop_grace = stop_grace
        self.stats = PoolStats()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        #: bumped at every (re)start; replicas bound under an older
        #: generation no longer exist
        self.generation = 0
        self._fault_plan = fault_plan
        self._lock = threading.RLock()
        self._context = multiprocessing.get_context("spawn")
        self._processes: list = []
        self._task_queues: list = []
        self._result_queue = None
        self._assignment: dict[str, int] = {}
        self._next_worker = 0
        self._inline_states: dict[str, ShardWorkerState] = {}
        #: shard keys whose standing replica vanished with a respawned
        #: worker while no barrier covered them (drained by take_lost())
        self._lost: set[str] = set()
        self._closed = False
        self._generation_open = False
        # fair FIFO lease queue (see lease()): tickets are granted strictly
        # in arrival order, independent of the command lock's scheduling
        self._lease_condition = threading.Condition()
        self._lease_next_ticket = 0
        self._lease_serving = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._generation_open

    def start(self) -> int:
        """Ensure the pool is running (reopening it if closed) and return
        the current generation — coordinators compare it against the
        generation their replicas were bound under."""
        with self._lock:
            self._ensure_started()
            return self.generation

    def _ensure_started(self) -> None:
        if self._closed:
            # reopen: a fresh generation, no replicas carried over
            self._closed = False
        if not self._generation_open:
            self.generation += 1
            self._generation_open = True
        if self.inline or self._processes:
            return
        self._result_queue = self._context.Queue()
        for index in range(self.workers):
            task_queue = self._context.Queue()
            self._task_queues.append(task_queue)
            self._processes.append(self._spawn_worker(index, self._fault_plan))

    def _spawn_worker(self, index: int, fault_plan):
        process = self._context.Process(
            target=_pool_worker_main,
            args=(self._task_queues[index], self._result_queue, index,
                  fault_plan),
            daemon=True,
            name=f"repro-pool-worker-{index}")
        process.start()
        self.stats.spawns += 1
        if telemetry.TELEMETRY.enabled:
            telemetry.inc("repro_pool_spawns_total")
        return process

    def close(self) -> None:
        """Shut the pool down: stop (or terminate, or kill) every worker.

        Idempotent, and unconditional — called from error paths too, so it
        never assumes the workers are still responsive.  The shutdown
        escalates per process: wait ``stop_grace`` for a graceful exit,
        SIGTERM and wait again, then SIGKILL — a worker that ignores
        SIGTERM (wedged in uninterruptible work) is reaped rather than
        leaked as an orphan.  A later command *reopens* the pool with
        fresh workers (see the class docstring).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for index, task_queue in enumerate(self._task_queues):
                try:
                    task_queue.put(("stop",))
                except Exception as exc:
                    # the worker will be terminated below regardless; a
                    # failed stop-enqueue only means the graceful path is
                    # gone, which is worth a breadcrumb, not a raise
                    warn_swallowed(_log, "stop-enqueue-failed", exc=exc,
                                   worker=index,
                                   generation=self.generation)
            for process in self._processes:
                process.join(timeout=self.stop_grace)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=self.stop_grace)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=self.stop_grace)
            self._processes.clear()
            self._task_queues.clear()
            self._result_queue = None
            for state in self._inline_states.values():
                state.close()
            self._inline_states.clear()
            self._assignment.clear()
            self._lost.clear()
            self._generation_open = False

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # fair time slicing
    # ------------------------------------------------------------------

    @contextmanager
    def lease(self, owner: str = ""):
        """Hold one fair FIFO time slice of the pool.

        The pool's command lock alone serialises barriers but lets the OS
        scheduler pick who goes next — a tenant issuing many barriers can
        barge ahead of one that arrived earlier.  A *lease* is the
        scheduler-owned slicing layer above it: holders are admitted
        strictly in arrival order, so wrapping each tenant's repair in
        ``with pool.lease(tenant):`` guarantees a flooding tenant cannot
        re-acquire the pool before every earlier-arrived tenant has had its
        slice.  Purely advisory — commands from non-lease callers still
        interleave at barrier granularity — and reentrant-free: do not nest
        leases on one thread.  ``owner`` labels the wait-time histogram.
        """
        with self._lease_condition:
            ticket = self._lease_next_ticket
            self._lease_next_ticket += 1
            waited_from = time.monotonic()
            while self._lease_serving != ticket:
                self._lease_condition.wait()
            waited = time.monotonic() - waited_from
            self.stats.leases += 1
            self.stats.lease_wait_seconds += waited
        if telemetry.TELEMETRY.enabled:
            telemetry.observe("repro_pool_lease_wait_seconds", waited,
                              tenant=owner)
        try:
            yield self
        finally:
            with self._lease_condition:
                self._lease_serving += 1
                self._lease_condition.notify_all()

    # ------------------------------------------------------------------
    # command dispatch
    # ------------------------------------------------------------------

    def _worker_for(self, key: str) -> int:
        worker = self._assignment.get(key)
        if worker is None:
            worker = self._next_worker % self.workers
            self._assignment[key] = worker
            self._next_worker += 1
        return worker

    def _fail(self, message: str) -> "WorkerPoolError":
        self.close()
        return WorkerPoolError(message)

    def take_lost(self, keys: Iterable[str]) -> set[str]:
        """Drain (and return) the subset of ``keys`` whose standing replica
        vanished with a respawned worker since the last call.

        Coordinators call this at the start of a warm fan-out: unlike a
        generation bump (pool closed and reopened — *everything* gone), a
        mid-barrier respawn only destroys the dead worker's replicas, so
        only those shards need a rebind.
        """
        with self._lock:
            taken = self._lost.intersection(keys)
            self._lost -= taken
            return taken

    def _dispatch(self, commands: list[tuple],
                  rebinder: Optional[Rebinder] = None) -> dict[str, tuple[str, object]]:
        """Send a batch of commands and collect every reply (a barrier).

        Replies are keyed by shard key.  Worker deaths, hangs and errored
        repairs are healed in place when possible (see the module
        docstring); an unhealable failure shuts the pool down and raises.
        ``rebinder`` supplies fresh bind arguments for a shard whose repair
        must be retried — without it, a death mid-repair is unhealable.
        """
        if not commands:
            return {}
        if len({message[1] for message in commands}) != len(commands):
            raise ValueError("one batch may carry at most one command per "
                             "shard key (replies are keyed by shard)")
        # a batch is atomic with respect to other coordinator threads: the
        # shared result queue must only ever carry one batch's replies
        with self._lock:
            return self._dispatch_locked(commands, rebinder)

    def _dispatch_locked(self, commands: list[tuple],
                         rebinder: Optional[Rebinder]) -> dict[str, tuple[str, object]]:
        self._ensure_started()
        if self.inline:
            return self._dispatch_inline(commands, rebinder)
        # per-key FIFO of commands still owed a reply; recovery can grow a
        # key's queue (rebind + retried repair), so replies must pop in
        # order.  The bool marks whether the reply is recorded for the
        # caller (recovery rebinds are internal).
        outstanding: dict[str, deque] = {
            message[1]: deque([(message, True)]) for message in commands}
        for message in commands:
            self._task_queues[self._worker_for(message[1])].put(message)
        replies: dict[str, tuple[str, object]] = {}
        retried: set[str] = set()
        deadline = time.monotonic() + self.reply_timeout
        while outstanding:
            try:
                reply = self._result_queue.get(timeout=_POLL_INTERVAL)
            except Exception as exc:
                if not isinstance(exc, queue.Empty):
                    # a broken result queue shows up here; the liveness and
                    # deadline checks below decide whether it is fatal
                    warn_swallowed(_log, "result-queue-poll-failed", exc=exc,
                                   pending=len(outstanding))
                dead = [index for index, process in enumerate(self._processes)
                        if not process.is_alive()]
                if dead:
                    self._recover_workers(dead, "crash", outstanding, replies,
                                          retried, rebinder)
                elif time.monotonic() > deadline:
                    owing = sorted({self._worker_for(key)
                                    for key in outstanding})
                    self.stats.command_timeouts += len(outstanding)
                    self._recover_workers(owing, "timeout", outstanding,
                                          replies, retried, rebinder)
                else:
                    continue
                deadline = time.monotonic() + self.reply_timeout
                continue
            self._absorb_reply(reply, outstanding, replies, retried, rebinder)
            deadline = time.monotonic() + self.reply_timeout
        return replies

    def _absorb_reply(self, reply: tuple, outstanding: dict,
                      replies: dict, retried: set,
                      rebinder: Optional[Rebinder]) -> None:
        key, status, payload = reply
        entries = outstanding.get(key)
        if not entries:
            # a killed-for-hanging worker that squeezed a reply out before
            # the SIGKILL landed, after recovery already settled this key
            warn_swallowed(_log, "unexpected-pool-reply", shard=key,
                           status=status)
            return
        message, record = entries.popleft()
        if not entries:
            del outstanding[key]
        command = message[0]
        if status == "error":
            if command == "repair" and rebinder is not None \
                    and key not in retried:
                log_event(_log, "warning", "shard-repair-errored-retrying",
                          shard=key, generation=self.generation)
                self._queue_retry(key, message, record, outstanding, retried,
                                  rebinder)
                return
            raise self._fail(
                f"worker failed for shard {key!r} on {command!r}:\n{payload}")
        if record:
            replies[key] = (status, payload)
        elif command == "bind":
            # a recovery rebind outside bind_all: keep the counters honest
            self.stats.binds += 1
            if telemetry.TELEMETRY.enabled:
                telemetry.inc("repro_pool_binds_total", shard=key)

    def _queue_retry(self, key: str, message: tuple, record: bool,
                     outstanding: dict, retried: set,
                     rebinder: Rebinder) -> None:
        """Queue a rebind plus the original repair for one more attempt."""
        retried.add(key)
        self.stats.retries += 1
        if telemetry.TELEMETRY.enabled:
            telemetry.inc("repro_pool_retries_total", shard=key)
        bind_message = ("bind", key) + tuple(rebinder(key))
        entries = outstanding.setdefault(key, deque())
        entries.append((bind_message, False))
        entries.append((message, record))
        worker_queue = self._task_queues[self._worker_for(key)]
        worker_queue.put(bind_message)
        worker_queue.put(message)

    def _terminate_worker(self, index: int) -> None:
        process = self._processes[index]
        if process.is_alive():
            process.terminate()
            process.join(timeout=self.stop_grace)
        if process.is_alive():
            process.kill()
        process.join(timeout=self.stop_grace)

    def _recover_workers(self, indices: list, reason: str, outstanding: dict,
                         replies: dict, retried: set,
                         rebinder: Optional[Rebinder]) -> None:
        """Respawn dead/hung workers and re-drive what they still owed."""
        started = time.perf_counter()
        names = [self._processes[index].name for index in indices]
        # 1) make death certain: the timeout path arrives here with hung
        #    (not dead) workers, and even a crashed one needs reaping
        for index in indices:
            self._terminate_worker(index)
        self.stats.worker_deaths += len(indices)
        if telemetry.TELEMETRY.enabled:
            telemetry.inc("repro_pool_worker_deaths_total", len(indices),
                          reason=reason)
        # 2) absorb replies that landed before the death — a key answered
        #    just before the crash must not be re-driven
        while True:
            try:
                reply = self._result_queue.get_nowait()
            except queue.Empty:
                break
            self._absorb_reply(reply, outstanding, replies, retried, rebinder)
        # 3) record standing replicas that died outside this barrier, then
        #    respawn each worker on a fresh task queue (the old queue may
        #    hold undelivered commands for re-driven keys); no fault plan —
        #    the scripted chaos already fired
        dead_set = set(indices)
        lost = {key for key, worker in self._assignment.items()
                if worker in dead_set and key not in outstanding}
        self._lost.update(lost)
        for index in indices:
            old_queue = self._task_queues[index]
            try:
                old_queue.close()
                old_queue.cancel_join_thread()
            except Exception as exc:
                warn_swallowed(_log, "dead-task-queue-close-failed", exc=exc,
                               worker=index)
            self._task_queues[index] = self._context.Queue()
            self._processes[index] = self._spawn_worker(index, None)
            self.stats.respawns += 1
            if telemetry.TELEMETRY.enabled:
                telemetry.inc("repro_pool_respawns_total")
        # 4) re-drive every command the dead workers still owed
        redriven = 0
        for key in sorted(outstanding):
            if self._worker_for(key) not in dead_set:
                continue
            if key in retried:
                raise self._fail(
                    f"shard {key!r} lost its worker twice in one barrier "
                    f"({reason}); giving up")
            entries = outstanding.pop(key)
            resend: deque = deque()
            for message, record in entries:
                command = message[0]
                if command == "bind":
                    resend.append((message, record))
                elif command == "ship":
                    # the replica died with its worker: answer stale on its
                    # behalf so the coordinator rebinds
                    if record:
                        replies[key] = ("stale",
                                        f"worker died mid-ship ({reason})")
                elif command == "repair":
                    if rebinder is None:
                        raise self._fail(
                            f"worker running shard {key!r} died mid-repair "
                            f"({reason}) with no rebinder available")
                    resend.append((("bind", key) + tuple(rebinder(key)),
                                   False))
                    resend.append((message, record))
                else:
                    raise self._fail(
                        f"unrecoverable command {command!r} owed for shard "
                        f"{key!r} by a dead worker ({reason})")
            if resend:
                retried.add(key)
                self.stats.retries += 1
                redriven += 1
                if telemetry.TELEMETRY.enabled:
                    telemetry.inc("repro_pool_retries_total", shard=key)
                outstanding[key] = deque(resend)
                worker_queue = self._task_queues[self._worker_for(key)]
                for message, _record in resend:
                    worker_queue.put(message)
        elapsed = time.perf_counter() - started
        if telemetry.TELEMETRY.enabled:
            telemetry.observe("repro_pool_recovery_seconds", elapsed)
        log_event(_log, "warning", "pool-workers-respawned", workers=names,
                  reason=reason, redriven=redriven, lost_replicas=len(lost),
                  generation=self.generation,
                  recovery_seconds=round(elapsed, 4))

    # ------------------------------------------------------------------
    # inline dispatch (same protocol, simulated supervision)
    # ------------------------------------------------------------------

    def _dispatch_inline(self, commands: list[tuple],
                         rebinder: Optional[Rebinder]) -> dict[str, tuple[str, object]]:
        replies: dict[str, tuple[str, object]] = {}
        retried: set[str] = set()
        pending = deque((message, True) for message in commands)
        barrier_keys = {message[1] for message in commands}
        while pending:
            message, record = pending.popleft()
            command, key = message[0], message[1]
            fault = None
            if self._fault_plan is not None:
                fault = self._fault_plan.take("worker.command", worker=0,
                                              command=command, key=key)
            if fault is not None and fault.kind == "slow":
                time.sleep(fault.seconds)
                fault = None
            if fault is not None and fault.kind in ("crash", "hang", "wedge"):
                # simulate the process death + respawn: every inline replica
                # dies, and the interrupted command is re-driven once
                self._simulate_inline_death(fault, barrier_keys)
                if command == "ship":
                    if record:
                        replies[key] = ("stale",
                                        "worker died mid-ship (simulated)")
                    continue
                if key not in retried and (command == "bind"
                                           or rebinder is not None):
                    retried.add(key)
                    self.stats.retries += 1
                    if telemetry.TELEMETRY.enabled:
                        telemetry.inc("repro_pool_retries_total", shard=key)
                    pending.appendleft((message, record))
                    if command == "repair":
                        pending.appendleft(
                            (("bind", key) + tuple(rebinder(key)), False))
                    continue
                raise self._fail(
                    f"inline worker died on {command!r} for shard {key!r} "
                    f"beyond what one retry can heal")
            try:
                if fault is not None:
                    _faults.perform(fault)
                result = _handle_command(self._inline_states, message)
            except WorkerPoolError:
                raise
            except Exception as exc:
                if command == "repair" and rebinder is not None \
                        and key not in retried:
                    state = self._inline_states.pop(key, None)
                    if state is not None:
                        state.close()
                    retried.add(key)
                    self.stats.retries += 1
                    if telemetry.TELEMETRY.enabled:
                        telemetry.inc("repro_pool_retries_total", shard=key)
                    log_event(_log, "warning",
                              "shard-repair-errored-retrying", shard=key,
                              error=f"{type(exc).__name__}: {exc}")
                    pending.appendleft((message, record))
                    pending.appendleft(
                        (("bind", key) + tuple(rebinder(key)), False))
                    continue
                raise self._fail(
                    f"inline worker failed on {command!r} for shard "
                    f"{key!r}: {exc}") from exc
            if record:
                replies[key] = result
            elif command == "bind":
                self.stats.binds += 1
                if telemetry.TELEMETRY.enabled:
                    telemetry.inc("repro_pool_binds_total", shard=key)
        return replies

    def _simulate_inline_death(self, fault, barrier_keys: set) -> None:
        lost = set(self._inline_states) - barrier_keys
        for state in self._inline_states.values():
            state.close()
        self._inline_states.clear()
        self._lost.update(lost)
        reason = "timeout" if fault.kind in ("hang", "wedge") else "simulated"
        self.stats.worker_deaths += 1
        self.stats.respawns += 1
        if fault.kind in ("hang", "wedge"):
            self.stats.command_timeouts += 1
        if telemetry.TELEMETRY.enabled:
            telemetry.inc("repro_pool_worker_deaths_total", reason=reason)
            telemetry.inc("repro_pool_respawns_total")
        log_event(_log, "warning", "pool-workers-respawned",
                  workers=["inline"], reason=reason,
                  lost_replicas=len(lost), generation=self.generation)

    # ------------------------------------------------------------------
    # the warm protocol
    # ------------------------------------------------------------------

    def bind(self, key: str, payload: dict, namespace: str,
             core: frozenset[str], rules, config) -> None:
        """Build (or rebuild) the standing replica for ``key`` (barrier)."""
        self.bind_all([(key, payload, namespace, core, rules, config)])

    def bind_all(self, binds: list[tuple]) -> None:
        """Bind several shards in one barrier (parallel across workers)."""
        if not binds:
            return
        with self._lock:
            self._dispatch([("bind",) + tuple(bind) for bind in binds])
            self.stats.binds += len(binds)
            if telemetry.TELEMETRY.enabled:
                for bind in binds:
                    telemetry.inc("repro_pool_binds_total", shard=bind[0])

    def ship(self, key: str, delta: GraphDelta) -> bool:
        """Ship one projected committed delta to ``key``'s replica.

        Returns ``True`` when the replica applied it, ``False`` when the
        worker reported the replica stale (dropped) — rebind before the next
        repair.
        """
        return self.ship_all([(key, delta)])[key]

    def ship_all(self, ships: list[tuple[str, GraphDelta]]) -> dict[str, bool]:
        """Ship several shards' deltas in one barrier (parallel across
        workers); returns per-key ``True`` (applied) / ``False`` (replica
        reported stale — rebind before the next repair)."""
        if not ships:
            return {}
        with self._lock:
            replies = self._dispatch([("ship", key, delta)
                                      for key, delta in ships])
            self.stats.deltas_shipped += len(ships)
            if telemetry.TELEMETRY.enabled:
                for key, _delta in ships:
                    telemetry.inc("repro_pool_ships_total", shard=key)
        return {key: replies[key][0] == "ok" for key, _delta in ships}

    def repair(self, keys: list[str], context: dict | None = None,
               rebinder: Optional[Rebinder] = None) -> list[ShardResult]:
        """One repair barrier over ``keys``; results in ``keys`` order.

        ``context`` is the coordinator's trace context: when given, each
        worker collects telemetry for its command and ships the registry
        snapshot and finished spans back on the :class:`ShardResult`.

        ``rebinder`` maps a shard key to fresh bind arguments and arms the
        one-retry recovery path: a worker that dies (or errors) mid-repair
        is respawned, the shard rebound, and the repair retried once.
        Without it, such failures shut the pool down and raise.
        """
        with self._lock:
            if context is None:
                commands = [("repair", key) for key in keys]
            else:
                commands = [("repair", key, context) for key in keys]
            replies = self._dispatch(commands, rebinder)
            self.stats.repair_calls += 1
            self.stats.shard_repairs += len(keys)
            if telemetry.TELEMETRY.enabled:
                for key in keys:
                    telemetry.inc("repro_pool_shard_repairs_total", shard=key)
        results = []
        for key in keys:
            status, payload = replies[key]
            if status != "ok":  # pragma: no cover - repair never replies stale
                raise self._fail(f"unexpected {status!r} reply for {key!r}")
            if telemetry.TELEMETRY.enabled:
                telemetry.observe("repro_pool_shard_repair_seconds",
                                  payload.elapsed_seconds, shard=key)
            results.append(payload)
        return results
