"""The persistent worker pool: warm shard workers across repair calls.

The cold fan-out (:func:`repro.parallel.worker.execute_tasks`) spawns a
fresh process pool per ``run()`` and ships every shard's full working copy
each time — spawn cost plus a complete per-shard re-detection dominate the
fan-out on anything but huge graphs (measured in the ``sharded-kg``
scenario).  A :class:`WorkerPool` amortises both:

* worker **processes** are spawned once (lazily, at the first bind) and stay
  alive until :meth:`close` — after warm-up a repair call spawns nothing;
* each worker holds **standing shard replicas**
  (:class:`~repro.parallel.worker.ShardWorkerState`): graph, candidate
  index, match stores, and violation queue survive between calls, and the
  coordinator ships *committed deltas* instead of full payloads, so shard
  detection is incremental.

The protocol has three commands, each acknowledged by the worker:

* ``bind(key, ...)`` — build (or rebuild) one standing replica from a full
  payload; the expensive path, paid once per shard plus once per staleness;
* ``ship(key, delta)`` — replay one projected committed delta into the
  replica and its matcher state (one incremental pass).  A worker that
  cannot replay the delta (replica divergence) drops the replica and
  answers *stale* instead of failing the pool: the coordinator rebinds;
* ``repair(key)`` — one propose-then-revert repair pass (see
  :class:`ShardWorkerState`); returns the proposed repairs.

Shards are pinned to workers round-robin at first bind, so a shard's
replica state always lives where its commands are routed.  Commands to
different workers run concurrently; the coordinator dispatches a batch and
then collects every acknowledgement, so a batch is a deterministic barrier.

Failure behaviour is strict: a worker error (raised exception, dead
process, reply timeout) raises :class:`~repro.exceptions.WorkerPoolError`
**after the pool has been shut down** — no orphaned processes outlive a
failure, which is what lets callers context-manage repairs without leak
tracking.  ``inline=True`` runs the identical state machine in-process (no
spawn, same replicas, same replies) for tests and single-CPU hosts.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass

from repro import telemetry
from repro.exceptions import WorkerPoolError
from repro.graph.delta import GraphDelta
from repro.parallel.worker import ShardResult, ShardWorkerState
from repro.telemetry.log import get_logger, warn_swallowed

_log = get_logger("parallel.pool")

#: how long the coordinator waits for one reply poll before re-checking
#: worker liveness (seconds)
_POLL_INTERVAL = 0.25
#: hard per-batch reply deadline with live workers (seconds); generous —
#: a bind does a full shard detection
_REPLY_TIMEOUT = 600.0


@dataclass
class PoolStats:
    """Warm-pool overhead counters (deterministic; asserted by the
    ``service-kg`` benchmark: ``spawns`` must stop growing after warm-up)."""

    #: worker processes spawned over the pool's lifetime
    spawns: int = 0
    #: full shard payloads shipped (cold binds + staleness rebinds)
    binds: int = 0
    #: incremental committed-delta shipments
    deltas_shipped: int = 0
    #: individual shard repair commands executed
    shard_repairs: int = 0
    #: pool-level repair barriers (one per coordinator fan-out)
    repair_calls: int = 0
    #: fair time-slice leases granted (see :meth:`WorkerPool.lease`)
    leases: int = 0
    #: total seconds lease holders spent queued behind earlier arrivals
    lease_wait_seconds: float = 0.0

    def as_dict(self) -> dict[str, int]:
        return {"spawns": self.spawns, "binds": self.binds,
                "deltas_shipped": self.deltas_shipped,
                "shard_repairs": self.shard_repairs,
                "repair_calls": self.repair_calls,
                "leases": self.leases,
                "lease_wait_seconds": round(self.lease_wait_seconds, 6)}


def _handle_command(states: dict, message: tuple) -> tuple[str, object]:
    """Execute one coordinator command against a worker's replica states.

    The one implementation shared by the spawned worker loop and the inline
    executor — both modes run byte-identical shard logic.  Returns the reply
    ``(status, payload)``.
    """
    command, key = message[0], message[1]
    if command == "bind":
        payload, namespace, core, rules, config = message[2:]
        previous = states.pop(key, None)
        if previous is not None:
            previous.close()
        states[key] = ShardWorkerState(payload, namespace, core, rules, config)
        return "ok", None
    if command == "ship":
        delta = message[2]
        state = states[key]
        try:
            return "ok", state.ship(delta)
        except Exception as exc:  # divergence: drop the replica, ask to rebind
            states.pop(key, None)
            state.close()
            warn_swallowed(_log, "replica-ship-diverged", exc=exc, shard=key,
                           changes=len(delta.changes))
            return "stale", f"{type(exc).__name__}: {exc}"
    if command == "repair":
        context = message[2] if len(message) > 2 else None
        if context is None:
            return "ok", states[key].repair()
        with telemetry.worker_collection(context, process=f"shard-{key}") \
                as telemetry_box:
            with telemetry.span("shard.repair", shard=key, mode="warm"):
                result = states[key].repair()
        result.telemetry = telemetry_box["telemetry"]
        result.spans = telemetry_box["spans"]
        return "ok", result
    raise ValueError(f"unknown pool command {command!r}")


def _pool_worker_main(task_queue, result_queue) -> None:
    """Entry point of one spawned pool worker (top-level: spawn-picklable)."""
    states: dict[str, ShardWorkerState] = {}
    while True:
        message = task_queue.get()
        if message[0] == "stop":
            break
        key = message[1]
        try:
            status, payload = _handle_command(states, message)
            result_queue.put((key, status, payload))
        except BaseException:
            result_queue.put((key, "error", traceback.format_exc()))
    for state in states.values():
        state.close()


class WorkerPool:
    """A persistent pool of warm shard workers (see module docstring).

    Thread safety: every public command serialises on the pool's internal
    lock, so coordinators on different threads (a service's tenants
    repairing concurrently) interleave whole *barriers*, never individual
    replies.  Shard state stays correct because each shard key is pinned to
    one worker and one owning backend.

    Failure and recovery: a worker error shuts the pool down and raises
    :class:`WorkerPoolError` to the command that observed it.  The pool is
    **reopenable**: the next command after a close starts a fresh
    *generation* of workers (``generation`` increments; all standing
    replicas are gone, so coordinators that cached binds must rebind when
    they see the generation change).  A transient worker death therefore
    fails one repair call, not the pool's owner for good.
    """

    def __init__(self, workers: int, inline: bool = False) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.inline = inline
        self.stats = PoolStats()
        #: bumped at every (re)start; replicas bound under an older
        #: generation no longer exist
        self.generation = 0
        self._lock = threading.RLock()
        self._context = multiprocessing.get_context("spawn")
        self._processes: list = []
        self._task_queues: list = []
        self._result_queue = None
        self._assignment: dict[str, int] = {}
        self._next_worker = 0
        self._inline_states: dict[str, ShardWorkerState] = {}
        self._closed = False
        self._generation_open = False
        # fair FIFO lease queue (see lease()): tickets are granted strictly
        # in arrival order, independent of the command lock's scheduling
        self._lease_condition = threading.Condition()
        self._lease_next_ticket = 0
        self._lease_serving = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._generation_open

    def start(self) -> int:
        """Ensure the pool is running (reopening it if closed) and return
        the current generation — coordinators compare it against the
        generation their replicas were bound under."""
        with self._lock:
            self._ensure_started()
            return self.generation

    def _ensure_started(self) -> None:
        if self._closed:
            # reopen: a fresh generation, no replicas carried over
            self._closed = False
        if not self._generation_open:
            self.generation += 1
            self._generation_open = True
        if self.inline or self._processes:
            return
        self._result_queue = self._context.Queue()
        for index in range(self.workers):
            task_queue = self._context.Queue()
            process = self._context.Process(
                target=_pool_worker_main,
                args=(task_queue, self._result_queue),
                daemon=True,
                name=f"repro-pool-worker-{index}")
            process.start()
            self._task_queues.append(task_queue)
            self._processes.append(process)
            self.stats.spawns += 1
            if telemetry.TELEMETRY.enabled:
                telemetry.inc("repro_pool_spawns_total")

    def close(self) -> None:
        """Shut the pool down: stop (or terminate) every worker process.

        Idempotent, and unconditional — called from error paths too, so it
        never assumes the workers are still responsive: a worker that does
        not exit within the grace period is terminated.  A later command
        *reopens* the pool with fresh workers (see the class docstring).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for index, task_queue in enumerate(self._task_queues):
                try:
                    task_queue.put(("stop",))
                except Exception as exc:
                    # the worker will be terminated below regardless; a
                    # failed stop-enqueue only means the graceful path is
                    # gone, which is worth a breadcrumb, not a raise
                    warn_swallowed(_log, "stop-enqueue-failed", exc=exc,
                                   worker=index,
                                   generation=self.generation)
            for process in self._processes:
                process.join(timeout=2.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=2.0)
            self._processes.clear()
            self._task_queues.clear()
            self._result_queue = None
            for state in self._inline_states.values():
                state.close()
            self._inline_states.clear()
            self._assignment.clear()
            self._generation_open = False

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # fair time slicing
    # ------------------------------------------------------------------

    @contextmanager
    def lease(self, owner: str = ""):
        """Hold one fair FIFO time slice of the pool.

        The pool's command lock alone serialises barriers but lets the OS
        scheduler pick who goes next — a tenant issuing many barriers can
        barge ahead of one that arrived earlier.  A *lease* is the
        scheduler-owned slicing layer above it: holders are admitted
        strictly in arrival order, so wrapping each tenant's repair in
        ``with pool.lease(tenant):`` guarantees a flooding tenant cannot
        re-acquire the pool before every earlier-arrived tenant has had its
        slice.  Purely advisory — commands from non-lease callers still
        interleave at barrier granularity — and reentrant-free: do not nest
        leases on one thread.  ``owner`` labels the wait-time histogram.
        """
        with self._lease_condition:
            ticket = self._lease_next_ticket
            self._lease_next_ticket += 1
            waited_from = time.monotonic()
            while self._lease_serving != ticket:
                self._lease_condition.wait()
            waited = time.monotonic() - waited_from
            self.stats.leases += 1
            self.stats.lease_wait_seconds += waited
        if telemetry.TELEMETRY.enabled:
            telemetry.observe("repro_pool_lease_wait_seconds", waited,
                              tenant=owner)
        try:
            yield self
        finally:
            with self._lease_condition:
                self._lease_serving += 1
                self._lease_condition.notify_all()

    # ------------------------------------------------------------------
    # command dispatch
    # ------------------------------------------------------------------

    def _worker_for(self, key: str) -> int:
        worker = self._assignment.get(key)
        if worker is None:
            worker = self._next_worker % self.workers
            self._assignment[key] = worker
            self._next_worker += 1
        return worker

    def _fail(self, message: str) -> "WorkerPoolError":
        self.close()
        return WorkerPoolError(message)

    def _dispatch(self, commands: list[tuple]) -> dict[str, tuple[str, object]]:
        """Send a batch of commands and collect every reply (a barrier).

        Replies are keyed by shard key; an ``error`` reply — or a worker
        dying / timing out before replying — shuts the pool down and raises.
        """
        if not commands:
            return {}
        if len({message[1] for message in commands}) != len(commands):
            raise ValueError("one batch may carry at most one command per "
                             "shard key (replies are keyed by shard)")
        # a batch is atomic with respect to other coordinator threads: the
        # shared result queue must only ever carry one batch's replies
        with self._lock:
            return self._dispatch_locked(commands)

    def _dispatch_locked(self, commands: list[tuple]) -> dict[str, tuple[str, object]]:
        self._ensure_started()
        if self.inline:
            replies: dict[str, tuple[str, object]] = {}
            for message in commands:
                try:
                    replies[message[1]] = _handle_command(self._inline_states,
                                                          message)
                except WorkerPoolError:
                    raise
                except Exception as exc:
                    raise self._fail(
                        f"inline worker failed on {message[0]!r} for shard "
                        f"{message[1]!r}: {exc}") from exc
            return replies
        for message in commands:
            self._task_queues[self._worker_for(message[1])].put(message)
        replies = {}
        deadline = time.monotonic() + _REPLY_TIMEOUT
        while len(replies) < len(commands):
            try:
                key, status, payload = self._result_queue.get(
                    timeout=_POLL_INTERVAL)
            except Exception as exc:
                if not isinstance(exc, queue.Empty):
                    # a broken result queue shows up here; the liveness and
                    # deadline checks below decide whether it is fatal
                    warn_swallowed(_log, "result-queue-poll-failed", exc=exc,
                                   pending=len(commands) - len(replies))
                dead = [process.name for process in self._processes
                        if not process.is_alive()]
                if dead:
                    raise self._fail(
                        f"worker(s) {dead} died without replying") from None
                if time.monotonic() > deadline:
                    raise self._fail(
                        f"timed out waiting for {len(commands) - len(replies)}"
                        " worker replies") from None
                continue
            if status == "error":
                raise self._fail(
                    f"worker failed for shard {key!r}:\n{payload}")
            replies[key] = (status, payload)
        return replies

    # ------------------------------------------------------------------
    # the warm protocol
    # ------------------------------------------------------------------

    def bind(self, key: str, payload: dict, namespace: str,
             core: frozenset[str], rules, config) -> None:
        """Build (or rebuild) the standing replica for ``key`` (barrier)."""
        self.bind_all([(key, payload, namespace, core, rules, config)])

    def bind_all(self, binds: list[tuple]) -> None:
        """Bind several shards in one barrier (parallel across workers)."""
        if not binds:
            return
        with self._lock:
            self._dispatch([("bind",) + tuple(bind) for bind in binds])
            self.stats.binds += len(binds)
            if telemetry.TELEMETRY.enabled:
                for bind in binds:
                    telemetry.inc("repro_pool_binds_total", shard=bind[0])

    def ship(self, key: str, delta: GraphDelta) -> bool:
        """Ship one projected committed delta to ``key``'s replica.

        Returns ``True`` when the replica applied it, ``False`` when the
        worker reported the replica stale (dropped) — rebind before the next
        repair.
        """
        return self.ship_all([(key, delta)])[key]

    def ship_all(self, ships: list[tuple[str, GraphDelta]]) -> dict[str, bool]:
        """Ship several shards' deltas in one barrier (parallel across
        workers); returns per-key ``True`` (applied) / ``False`` (replica
        reported stale — rebind before the next repair)."""
        if not ships:
            return {}
        with self._lock:
            replies = self._dispatch([("ship", key, delta)
                                      for key, delta in ships])
            self.stats.deltas_shipped += len(ships)
            if telemetry.TELEMETRY.enabled:
                for key, _delta in ships:
                    telemetry.inc("repro_pool_ships_total", shard=key)
        return {key: replies[key][0] == "ok" for key, _delta in ships}

    def repair(self, keys: list[str],
               context: dict | None = None) -> list[ShardResult]:
        """One repair barrier over ``keys``; results in ``keys`` order.

        ``context`` is the coordinator's trace context: when given, each
        worker collects telemetry for its command and ships the registry
        snapshot and finished spans back on the :class:`ShardResult`.
        """
        with self._lock:
            if context is None:
                commands = [("repair", key) for key in keys]
            else:
                commands = [("repair", key, context) for key in keys]
            replies = self._dispatch(commands)
            self.stats.repair_calls += 1
            self.stats.shard_repairs += len(keys)
            if telemetry.TELEMETRY.enabled:
                for key in keys:
                    telemetry.inc("repro_pool_shard_repairs_total", shard=key)
        results = []
        for key in keys:
            status, payload = replies[key]
            if status != "ok":  # pragma: no cover - repair never replies stale
                raise self._fail(f"unexpected {status!r} reply for {key!r}")
            if telemetry.TELEMETRY.enabled:
                telemetry.observe("repro_pool_shard_repair_seconds",
                                  payload.elapsed_seconds, shard=key)
            results.append(payload)
        return results
