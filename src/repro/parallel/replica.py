"""Projecting primary committed deltas onto standing shard replicas.

A warm worker keeps a **standing replica** of its shard — the induced
subgraph over the shard's ``core | halo`` nodes — alive across repair calls,
together with its :class:`~repro.repair.fast.FastRepairCore`.  Between
calls, everything that changed on the primary graph (committed session
transactions, merged worker repairs, coordinator settle repairs) must reach
the replicas so worker detection can stay *incremental* instead of
re-enumerating the shard from scratch.

A primary delta cannot be replayed on a replica verbatim: the replica holds
only a slice of the graph.  :func:`project_delta` filters one primary delta
down to the changes a given shard can express, with three possible fates per
change:

* **included** — every element the change references lives on the replica
  (or is created by an earlier change of the same projection); the change is
  shipped and replays exactly, ids included;
* **skipped** — the change touches no replica node, or it concerns an edge
  whose endpoints straddle the replica boundary and which therefore never
  existed on the replica (induced-subgraph semantics make skipping sound:
  the replica never held the element, and by the rule-radius halo guarantee
  no core-owned match can probe it);
* **stale** — the change is *relevant* to the replica but not expressible on
  it: an edge now crosses the replica boundary (the halo is no longer the
  full ``radius``-neighbourhood of the core) or a node merge straddles it.
  The projection reports the shard stale and ships nothing; the coordinator
  re-extracts a fresh working copy (rebind) instead.

Created elements are **adopted**: a node the delta creates joins the
replica's node set when some change of the same delta connects it to a
replica node (transitively through other created nodes — the pass iterates
to a fixpoint).  Adopted nodes become replica *context*, not owned core
nodes: violations binding them stay with the coordinator's settle drain, so
ownership never overlaps between shards however many elements repairs
create.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.delta import ChangeKind, GraphChange, GraphDelta


@dataclass
class DeltaProjection:
    """The result of projecting one primary delta onto one shard node set."""

    #: the changes the shard replica should replay, in primary order
    shipped: GraphDelta = field(default_factory=GraphDelta)
    #: created nodes that joined the replica's node set
    adopted_nodes: set[str] = field(default_factory=set)
    #: member nodes the delta removed (or merged away)
    removed_nodes: set[str] = field(default_factory=set)
    #: True when a relevant change cannot be expressed on the replica —
    #: ship nothing and rebind the shard from a fresh extraction instead
    stale: bool = False
    reason: str = ""

    def __bool__(self) -> bool:
        return bool(self.shipped) and not self.stale

    def apply_membership(self, node_ids: set[str]) -> None:
        """Fold the projection's membership changes into ``node_ids``."""
        node_ids |= self.adopted_nodes
        node_ids -= self.removed_nodes


def _edge_endpoints(change: GraphChange) -> tuple[str, str]:
    """Both endpoints of an edge-level change (every edge mutation records
    them: ``details`` for add/remove, ``touched_nodes`` for update/relabel)."""
    details = change.details
    if "source" in details and "target" in details:
        return details["source"], details["target"]
    source, target = change.touched_nodes
    return source, target


def _adopted_created_nodes(delta: GraphDelta, members: set[str]) -> set[str]:
    """Created nodes reachable from the member set through the delta's own
    edges (iterated to a fixpoint so chains of created nodes adopt together)."""
    created: set[str] = set(delta.added_node_ids)
    if not created:
        return set()
    adopted: set[str] = set()
    changed = True
    while changed:
        changed = False
        for change in delta.changes:
            if change.kind is not ChangeKind.ADD_EDGE:
                continue
            source, target = _edge_endpoints(change)
            inside = members | adopted
            for candidate, anchor in ((source, target), (target, source)):
                if candidate in created and candidate not in adopted \
                        and anchor in inside:
                    adopted.add(candidate)
                    changed = True
    return adopted


class ReplicaView:
    """Membership bookkeeping for one standing replica of a node subset.

    The stateful wrapper around :func:`project_delta` that every consumer of
    a projected feed repeats: track the current member set, project each
    primary delta against it, fold the membership changes in on success, and
    flag the view **stale** — rebind from a fresh extraction of the primary
    (or, for a remote read replica, a fresh snapshot) — when a change cannot
    be expressed on the slice.  Used by the warm shard coordinator's
    semantics and by scoped cross-process read replicas
    (:class:`repro.durability.replication.ReadReplica`).
    """

    def __init__(self, node_ids: set[str]) -> None:
        self.node_ids = set(node_ids)
        self.stale = False
        self.stale_reason = ""

    def project(self, delta: GraphDelta) -> DeltaProjection:
        """Project one primary delta; membership updates on success.

        Once stale, every further projection reports stale too (the view no
        longer tracks the primary) until :meth:`rebind`.
        """
        if self.stale:
            projection = DeltaProjection(stale=True, reason=self.stale_reason)
            return projection
        projection = project_delta(delta, self.node_ids)
        if projection.stale:
            self.stale = True
            self.stale_reason = projection.reason
        else:
            projection.apply_membership(self.node_ids)
        return projection

    def rebind(self, node_ids: set[str]) -> None:
        """Reset the view onto a freshly extracted member set."""
        self.node_ids = set(node_ids)
        self.stale = False
        self.stale_reason = ""


def project_delta(delta: GraphDelta, node_ids: set[str]) -> DeltaProjection:
    """Project one primary ``delta`` onto the replica whose current node set
    is ``node_ids``.  The input set is not mutated; apply the returned
    projection's membership changes after shipping succeeded."""
    projection = DeltaProjection()
    members = set(node_ids)
    adopted = _adopted_created_nodes(delta, members)

    def stale(change: GraphChange, why: str) -> DeltaProjection:
        projection.stale = True
        projection.reason = f"{change.kind.value}: {why}"
        projection.shipped = GraphDelta()
        return projection

    for change in delta.changes:
        kind = change.kind
        if kind is ChangeKind.ADD_NODE:
            if change.node_id in adopted:
                members.add(change.node_id)
                projection.adopted_nodes.add(change.node_id)
                projection.shipped.record(change)
            continue
        if kind is ChangeKind.REMOVE_NODE:
            if change.node_id in members:
                members.discard(change.node_id)
                projection.removed_nodes.add(change.node_id)
                projection.adopted_nodes.discard(change.node_id)
                projection.shipped.record(change)
            continue
        if kind in (ChangeKind.UPDATE_NODE, ChangeKind.RELABEL_NODE):
            if change.node_id in members:
                projection.shipped.record(change)
            continue
        if kind is ChangeKind.ADD_EDGE:
            source, target = _edge_endpoints(change)
            in_source, in_target = source in members, target in members
            if in_source and in_target:
                projection.shipped.record(change)
            elif in_source or in_target:
                # the halo is no longer the full radius-neighbourhood of the
                # core: structure reachable from a replica node now lives
                # outside the replica, so shard-local decisions could diverge
                return stale(change, "new edge crosses the replica boundary "
                                     f"({source!r} -> {target!r})")
            continue
        if kind in (ChangeKind.REMOVE_EDGE, ChangeKind.UPDATE_EDGE,
                    ChangeKind.RELABEL_EDGE):
            source, target = _edge_endpoints(change)
            # an edge exists on the induced replica iff both endpoints do;
            # boundary-crossing edges were never there, so their mutations
            # are irrelevant to the replica
            if source in members and target in members:
                projection.shipped.record(change)
            continue
        if kind is ChangeKind.MERGE_NODES:
            merged = change.details.get("merged")
            touched = set(change.touched_nodes) | {change.node_id, merged}
            relevant = touched & members
            if not relevant:
                continue
            if touched <= members:
                members.discard(merged)
                projection.removed_nodes.add(merged)
                projection.adopted_nodes.discard(merged)
                projection.shipped.record(change)
                continue
            return stale(change, "node merge straddles the replica boundary")
        # pragma: no cover — exhaustive over ChangeKind
        return stale(change, "unknown change kind")
    return projection
