"""Detection-only baseline.

Error-*detection* systems (GFD-based detection, constraint validation
dashboards) find violations but leave fixing them to a human.  As a repair
method this is the floor: it changes nothing, so its repair precision is
vacuously perfect and its repair recall is zero.  The paper's evaluation uses
such a baseline to quantify how much of the cleaning work the GRR repairs
automate; experiment E1 includes it for the same reason.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.graph.property_graph import PropertyGraph
from repro.repair.detector import detect_violations
from repro.rules.grr import RuleSet


@dataclass
class BaselineReport:
    """Uniform result record shared by all baselines."""

    method: str
    elapsed_seconds: float = 0.0
    violations_detected: int = 0
    changes_applied: int = 0
    details: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "method": self.method,
            "elapsed_seconds": self.elapsed_seconds,
            "violations_detected": self.violations_detected,
            "changes_applied": self.changes_applied,
            **self.details,
        }


class DetectOnlyBaseline:
    """Runs GRR violation detection and applies no repair."""

    name = "detect-only"

    def repair(self, graph: PropertyGraph,
               rules: RuleSet) -> tuple[PropertyGraph, BaselineReport]:
        """Return an untouched copy of ``graph`` plus the detection statistics."""
        started = time.perf_counter()
        detection = detect_violations(graph, rules)
        untouched = graph.copy(name=f"{graph.name}-detect-only")
        report = BaselineReport(
            method=self.name,
            elapsed_seconds=time.perf_counter() - started,
            violations_detected=len(detection),
            changes_applied=0,
            details={"per_semantics": detection.per_semantics()},
        )
        return untouched, report
