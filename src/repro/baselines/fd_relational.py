"""Relational (FD/CFD-style) repair baseline over the triplified graph.

The classical data-repair toolbox works on relations: functional dependencies
say "for this key there must be a single value", and violations are repaired
by keeping the most reliable tuple and dropping the rest; exact duplicate
tuples are eliminated.  To compare against it, this baseline flattens the
property graph into a subject–predicate–object view and applies exactly those
two mechanisms:

* for every *functional predicate* (either given explicitly or mined from the
  data with :func:`repro.graph.statistics.functional_predicate_candidates`),
  a subject with multiple objects keeps only the highest-confidence edge
  (ties: the first by id) and the other edges are deleted;
* exact duplicate triples (parallel edges with the same label and endpoints)
  are collapsed to one.

What it structurally cannot do — and what experiment E1 makes visible — is
add missing facts (incompleteness) or merge duplicate *entities*
(redundancy beyond exact duplicate edges): neither has a relational analogue
without a graph-aware rule language.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.baselines.detect_only import BaselineReport
from repro.graph.property_graph import PropertyGraph
from repro.graph.statistics import functional_predicate_candidates
from repro.rules.grr import RuleSet


class FDRelationalBaseline:
    """FD-style repair on the triple view of the graph."""

    name = "fd-relational"

    def __init__(self, functional_predicates: Iterable[str] | None = None,
                 mine_functional_predicates: bool = True,
                 functional_tolerance: float = 0.1) -> None:
        self.functional_predicates = (tuple(functional_predicates)
                                      if functional_predicates is not None else None)
        self.mine_functional_predicates = mine_functional_predicates
        self.functional_tolerance = functional_tolerance

    # ------------------------------------------------------------------

    def _predicates_for(self, graph: PropertyGraph) -> set[str]:
        if self.functional_predicates is not None:
            return set(self.functional_predicates)
        if self.mine_functional_predicates:
            return functional_predicate_candidates(graph, self.functional_tolerance)
        return set()

    def repair(self, graph: PropertyGraph,
               rules: RuleSet | None = None) -> tuple[PropertyGraph, BaselineReport]:
        """Repair a copy of ``graph``.  ``rules`` is accepted for interface
        uniformity but ignored — this baseline does not understand GRRs."""
        started = time.perf_counter()
        repaired = graph.copy(name=f"{graph.name}-fd-repaired")
        functional = self._predicates_for(graph)

        deleted_conflicts = 0
        deleted_duplicates = 0
        violations = 0

        # 1. Functional-dependency enforcement per predicate and subject.
        for predicate in sorted(functional):
            by_subject: dict[str, list] = {}
            for edge in repaired.edges_with_label(predicate):
                by_subject.setdefault(edge.source, []).append(edge)
            for edges in by_subject.values():
                distinct_objects = {edge.target for edge in edges}
                if len(distinct_objects) <= 1:
                    continue
                violations += 1
                keeper = max(edges, key=lambda edge: (edge.get("confidence", 0.0),
                                                      edge.id), default=None)
                for edge in edges:
                    if keeper is not None and edge.target != keeper.target:
                        if repaired.has_edge(edge.id):
                            repaired.remove_edge(edge.id)
                            deleted_conflicts += 1

        # 2. Exact duplicate-triple elimination.
        seen: set[tuple[str, str, str]] = set()
        for edge in list(repaired.edges()):
            key = (edge.source, edge.label, edge.target)
            if key in seen:
                repaired.remove_edge(edge.id)
                deleted_duplicates += 1
                violations += 1
            else:
                seen.add(key)

        report = BaselineReport(
            method=self.name,
            elapsed_seconds=time.perf_counter() - started,
            violations_detected=violations,
            changes_applied=deleted_conflicts + deleted_duplicates,
            details={
                "functional_predicates": sorted(functional),
                "deleted_conflicting_edges": deleted_conflicts,
                "deleted_duplicate_edges": deleted_duplicates,
            },
        )
        return repaired, report
