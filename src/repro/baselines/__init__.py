"""Comparison baselines: detection-only, relational FD repair, greedy deletion
(system S8 in DESIGN.md)."""

from repro.baselines.detect_only import BaselineReport, DetectOnlyBaseline
from repro.baselines.fd_relational import FDRelationalBaseline
from repro.baselines.greedy import GreedyConfig, GreedyDeleteBaseline

__all__ = [
    "BaselineReport",
    "DetectOnlyBaseline",
    "FDRelationalBaseline",
    "GreedyDeleteBaseline",
    "GreedyConfig",
]
